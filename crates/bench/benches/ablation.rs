//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * optimistic validation cost as a function of read-set size (the price of
//!   serializability under MV/O is re-checking every read);
//! * the cost of a cooperative garbage-collection step;
//! * bucket-lock overhead for serializable pessimistic scans.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::rowbuf;
use mmdb_common::{IndexId, TableSpec};
use mmdb_core::{MvConfig, MvEngine};
use mmdb_workload::Homogeneous;

fn bench_validation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/validation_read_set");
    let engine = MvEngine::optimistic(MvConfig::default());
    let workload = Homogeneous {
        rows: 20_000,
        ..Default::default()
    };
    let table = workload.setup(&engine).unwrap();
    for reads in [10usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::new("serializable_reads", reads),
            &reads,
            |b, &reads| {
                let mut rng = StdRng::seed_from_u64(41);
                b.iter(|| {
                    std::hint::black_box(workload.run_one_with(
                        &engine,
                        table,
                        &mut rng,
                        reads,
                        0,
                        IsolationLevel::Serializable,
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read_committed_reads", reads),
            &reads,
            |b, &reads| {
                let mut rng = StdRng::seed_from_u64(42);
                b.iter(|| {
                    std::hint::black_box(workload.run_one_with(
                        &engine,
                        table,
                        &mut rng,
                        reads,
                        0,
                        IsolationLevel::ReadCommitted,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_gc_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/gc");
    // Cooperative GC disabled so the explicit collection step below is the
    // only thing reclaiming versions; each iteration retires 64 versions and
    // then collects them, measuring the steady-state cost of keeping the
    // version chains short.
    let engine = MvEngine::optimistic(MvConfig::default().with_gc_every(0));
    let table = engine
        .create_table(TableSpec::keyed_u64("gc", 2_048))
        .unwrap();
    engine
        .populate(table, (0..1_024u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
        .unwrap();
    group.bench_function("retire_and_collect_64_versions", |b| {
        let mut round = 0u8;
        b.iter(|| {
            round = round.wrapping_add(1);
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            for key in 0..64u64 {
                txn.update(table, IndexId(0), key, rowbuf::keyed_row(key, 16, round))
                    .unwrap();
            }
            txn.commit().unwrap();
            std::hint::black_box(engine.collect_garbage())
        })
    });
    group.finish();
}

fn bench_bucket_lock_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bucket_locks");
    let workload = Homogeneous {
        rows: 20_000,
        ..Default::default()
    };
    for (label, iso) in [
        ("mvl_rc_scan", IsolationLevel::ReadCommitted),
        ("mvl_serializable_scan", IsolationLevel::Serializable),
    ] {
        group.bench_function(label, |b| {
            let engine = MvEngine::pessimistic(MvConfig::default());
            let table = workload.setup(&engine).unwrap();
            let mut rng = StdRng::seed_from_u64(43);
            b.iter(|| {
                std::hint::black_box(workload.run_one_with(&engine, table, &mut rng, 10, 0, iso))
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_validation_cost, bench_gc_step, bench_bucket_lock_overhead
}
criterion_main!(benches);
