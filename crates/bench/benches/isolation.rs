//! Table 3 companion benchmark: cost of the short update transaction at each
//! isolation level on each scheme. The optimistic scheme pays for validation
//! (repeating reads and scans), the pessimistic scheme for record and bucket
//! locks, the single-version scheme for key locks — this benchmark makes
//! those per-transaction costs visible. `repro table3` produces the full
//! throughput table.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_bench::dispatch_engine;
use mmdb_bench::Scheme;
use mmdb_common::isolation::IsolationLevel;
use mmdb_workload::Homogeneous;

fn bench_isolation_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("isolation/r10w2_txn");
    let levels = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::Serializable,
    ];
    for scheme in Scheme::ALL {
        for level in levels {
            let id = BenchmarkId::new(scheme.label(), level.label());
            group.bench_function(id, |b| {
                let workload = Homogeneous {
                    rows: 20_000,
                    isolation: level,
                    ..Default::default()
                };
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let table = workload.setup(engine).unwrap();
                        let mut rng = StdRng::seed_from_u64(7);
                        b.iter(|| std::hint::black_box(workload.run_one(engine, table, &mut rng)));
                    })
                });
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_isolation_levels
}
criterion_main!(benches);
