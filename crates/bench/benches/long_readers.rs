//! Figure 8/9 companion benchmark.
//!
//! Two effects drive those figures:
//!
//! 1. the cost of the long read-only query itself (thousands of point reads
//!    in one transaction), and
//! 2. whether a concurrently open long reader blocks short updates — it does
//!    on the single-version engine (shared locks held to commit), and does
//!    not on the multiversion engines (snapshot reads).
//!
//! This benchmark measures (1) per scheme and (2) on the multiversion engine
//! (the 1V case would simply measure the lock timeout). The full sweep is
//! produced by `repro fig8` / `repro fig9`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_bench::dispatch_engine;
use mmdb_bench::Scheme;
use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::rowbuf;
use mmdb_common::IndexId;
use mmdb_workload::{Homogeneous, LongReaderMix};

const ROWS: u64 = 20_000;

fn bench_long_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("long_readers/scan_10pct");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let iso = match scheme {
            Scheme::OneV => IsolationLevel::Serializable,
            _ => IsolationLevel::SnapshotIsolation,
        };
        group.bench_with_input(
            BenchmarkId::new("long_read_txn", scheme.label()),
            &scheme,
            |b, &scheme| {
                let mix = LongReaderMix::new(ROWS, 1, iso);
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let table = mix.base.setup(engine).unwrap();
                        let mut rng = StdRng::seed_from_u64(21);
                        b.iter(|| {
                            std::hint::black_box(mix.run_long_reader(engine, table, &mut rng))
                        });
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_update_under_open_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("long_readers/update_with_open_reader");
    for scheme in [Scheme::MvO, Scheme::MvL] {
        group.bench_with_input(
            BenchmarkId::new("update", scheme.label()),
            &scheme,
            |b, &scheme| {
                let workload = Homogeneous {
                    rows: ROWS,
                    ..Default::default()
                };
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let table = workload.setup(engine).unwrap();
                        // An open snapshot reader that has touched part of the table.
                        let mut reader = engine.begin(IsolationLevel::SnapshotIsolation);
                        for key in 0..(ROWS / 10) {
                            reader.read(table, IndexId(0), key).unwrap();
                        }
                        let mut key = 0u64;
                        b.iter(|| {
                            key = (key + 13) % (ROWS / 10);
                            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
                            txn.update(table, IndexId(0), key, rowbuf::keyed_row(key, 16, 5))
                                .unwrap();
                            txn.commit().unwrap()
                        });
                        reader.commit().unwrap();
                    })
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_long_scan, bench_update_under_open_snapshot
}
criterion_main!(benches);
