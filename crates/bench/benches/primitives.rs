//! Micro-benchmarks of the engine primitives: tagged-word encoding, hashing,
//! timestamp allocation, visibility checks and point operations. These are
//! the per-operation costs underlying every figure in the paper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mmdb_common::clock::GlobalClock;
use mmdb_common::hash::{bucket_of, mix64};
use mmdb_common::ids::{Timestamp, TxnId};
use mmdb_common::row::rowbuf;
use mmdb_common::word::{BeginWord, EndWord, LockWord};
use mmdb_core::check_visibility;
use mmdb_storage::txn_table::TxnTable;
use mmdb_storage::version::Version;

fn bench_words(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/words");
    group.bench_function("begin_word_roundtrip", |b| {
        b.iter(|| {
            let w = BeginWord::Timestamp(Timestamp(std::hint::black_box(123456)));
            std::hint::black_box(BeginWord::decode(w.encode()))
        })
    });
    group.bench_function("lock_word_roundtrip", |b| {
        b.iter(|| {
            let lock = LockWord {
                no_more_read_locks: false,
                read_lock_count: 3,
                writer: Some(TxnId(77)),
            };
            std::hint::black_box(EndWord::decode(EndWord::Lock(lock).encode()))
        })
    });
    group.finish();
}

fn bench_hash_and_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/hash_clock");
    group.bench_function("mix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(mix64(x))
        })
    });
    group.bench_function("bucket_of", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(bucket_of(x, 1_000_003))
        })
    });
    group.bench_function("next_timestamp", |b| {
        let clock = GlobalClock::new();
        b.iter(|| std::hint::black_box(clock.next_timestamp()))
    });
    group.finish();
}

fn bench_visibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/visibility");
    let txns = TxnTable::new();
    let committed = Version::new_committed(Timestamp(10), rowbuf::keyed_row(1, 16, 0), &[1]);
    group.bench_function("committed_version", |b| {
        let guard = crossbeam::epoch::pin();
        b.iter(|| {
            std::hint::black_box(check_visibility(
                &committed,
                Timestamp(50),
                TxnId(9),
                &txns,
                &guard,
            ))
        })
    });
    group.finish();
}

fn bench_engine_point_ops(c: &mut Criterion) {
    use mmdb_common::engine::{Engine, EngineTxn};
    use mmdb_common::row::TableSpec;
    use mmdb_common::{IndexId, IsolationLevel};
    use mmdb_core::{MvConfig, MvEngine};

    let engine = MvEngine::optimistic(MvConfig::default());
    let table = engine
        .create_table(TableSpec::keyed_u64("bench", 200_000))
        .unwrap();
    engine
        .populate(table, (0..100_000u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
        .unwrap();

    let mut group = c.benchmark_group("primitives/engine_ops");
    let mut key = 0u64;
    group.bench_function("mvo_point_read_rc", |b| {
        b.iter_batched(
            || {
                key = (key + 7919) % 100_000;
                (engine.begin(IsolationLevel::ReadCommitted), key)
            },
            |(mut txn, key)| {
                std::hint::black_box(txn.read(table, IndexId(0), key).unwrap());
                txn.commit().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    let mut key = 0u64;
    group.bench_function("mvo_point_update_rc", |b| {
        b.iter_batched(
            || {
                key = (key + 7919) % 100_000;
                (engine.begin(IsolationLevel::ReadCommitted), key)
            },
            |(mut txn, key)| {
                txn.update(table, IndexId(0), key, rowbuf::keyed_row(key, 16, 9))
                    .unwrap();
                txn.commit().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_words, bench_hash_and_clock, bench_visibility, bench_engine_point_ops
}
criterion_main!(benches);
