//! Figure 6/7 companion benchmark: cost of a short read-only transaction vs
//! a short update transaction on each scheme. The multiversion engines serve
//! read-only transactions from a snapshot with no locking or validation; the
//! single-version engine still has to take (and release) read locks. The full
//! read-only-ratio sweep is produced by `repro fig6` / `repro fig7`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_bench::dispatch_engine;
use mmdb_bench::Scheme;
use mmdb_common::isolation::IsolationLevel;
use mmdb_workload::Homogeneous;

fn bench_read_only_vs_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_mix");
    for scheme in Scheme::ALL {
        // Read-only transactions: the paper runs them under snapshot
        // isolation on the MV engines (consistent view, no locks); the 1V
        // engine uses read committed short locks.
        let read_only_iso = match scheme {
            Scheme::OneV => IsolationLevel::ReadCommitted,
            _ => IsolationLevel::SnapshotIsolation,
        };
        group.bench_with_input(
            BenchmarkId::new("read_only_r10", scheme.label()),
            &scheme,
            |b, &scheme| {
                let workload = Homogeneous {
                    rows: 20_000,
                    ..Default::default()
                };
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let table = workload.setup(engine).unwrap();
                        let mut rng = StdRng::seed_from_u64(11);
                        b.iter(|| {
                            std::hint::black_box(workload.run_one_with(
                                engine,
                                table,
                                &mut rng,
                                10,
                                0,
                                read_only_iso,
                            ))
                        });
                    })
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("update_r10w2", scheme.label()),
            &scheme,
            |b, &scheme| {
                let workload = Homogeneous {
                    rows: 20_000,
                    ..Default::default()
                };
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let table = workload.setup(engine).unwrap();
                        let mut rng = StdRng::seed_from_u64(12);
                        b.iter(|| std::hint::black_box(workload.run_one(engine, table, &mut rng)));
                    })
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_read_only_vs_update
}
criterion_main!(benches);
