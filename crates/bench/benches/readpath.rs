//! Micro-benchmarks of the hot read path: materializing (`read` /
//! `scan_key`) vs visitor (`read_with` / `scan_key_with`) APIs on a warmed
//! MV engine, and the two transaction-table lookup variants (`get` clones an
//! `Arc`, `get_in` borrows under an epoch guard). Same fixture and strides
//! as the `repro perf` experiment that records `BENCH_readpath.json`
//! (`mmdb_bench::readpath`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_bench::readpath::{
    registered_txn_table, warmed_mv_engine, GROUP_SIZE, GROUP_STRIDE, KEY_STRIDE, TXN_TABLE_ENTRIES,
};
use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::ids::{IndexId, TxnId};
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::rowbuf;

const ROWS: u64 = 65_536;

fn bench_point_reads(c: &mut Criterion) {
    let (engine, table) = warmed_mv_engine(ROWS);
    let mut group = c.benchmark_group("readpath/point_read");
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);

    let mut key = 0u64;
    group.bench_function("materializing_read", |b| {
        b.iter(|| {
            key = (key.wrapping_add(KEY_STRIDE)) % ROWS;
            std::hint::black_box(txn.read(table, IndexId(0), key).unwrap())
        })
    });
    let mut key = 1u64;
    group.bench_function("visitor_read_with", |b| {
        b.iter(|| {
            key = (key.wrapping_add(KEY_STRIDE)) % ROWS;
            txn.read_with(table, IndexId(0), key, &mut |row| {
                std::hint::black_box(rowbuf::key_of(row));
            })
            .unwrap()
        })
    });
    txn.abort();
    group.finish();
}

fn bench_short_scans(c: &mut Criterion) {
    let (engine, table) = warmed_mv_engine(ROWS);
    let mut group = c.benchmark_group("readpath/scan8");
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);

    let mut g = 0u64;
    group.bench_function("materializing_scan_key", |b| {
        b.iter(|| {
            g = (g.wrapping_add(GROUP_STRIDE)) % (ROWS / GROUP_SIZE);
            std::hint::black_box(txn.scan_key(table, IndexId(1), g).unwrap().len())
        })
    });
    let mut g = 1u64;
    group.bench_function("visitor_scan_key_with", |b| {
        b.iter(|| {
            g = (g.wrapping_add(GROUP_STRIDE)) % (ROWS / GROUP_SIZE);
            let mut sum = 0u64;
            txn.scan_key_with(table, IndexId(1), g, &mut |row| sum += rowbuf::key_of(row))
                .unwrap();
            std::hint::black_box(sum)
        })
    });
    txn.abort();
    group.finish();
}

fn bench_txn_table_lookup(c: &mut Criterion) {
    let txns = registered_txn_table();
    let mut group = c.benchmark_group("readpath/txn_table");
    let mut id = 1u64;
    group.bench_function("get_arc_clone", |b| {
        b.iter(|| {
            id = id % TXN_TABLE_ENTRIES + 1;
            std::hint::black_box(txns.get(TxnId(id)).unwrap().id())
        })
    });
    let guard = crossbeam::epoch::pin();
    let mut id = 1u64;
    group.bench_function("get_in_guard_borrow", |b| {
        b.iter(|| {
            id = id % TXN_TABLE_ENTRIES + 1;
            std::hint::black_box(txns.get_in(TxnId(id), &guard).unwrap().id())
        })
    });
    drop(guard);
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_point_reads, bench_short_scans, bench_txn_table_lookup
}
criterion_main!(benches);
