//! Figure 4/5 companion benchmark: per-transaction latency of the paper's
//! short update transaction (R=10, W=2) on each scheme, at low contention
//! (large table) and at a hotspot (1,000-row table). The full multi-threaded
//! sweep is produced by `repro fig4` / `repro fig5`; this benchmark tracks
//! the single-transaction cost that drives those curves.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_bench::dispatch_engine;
use mmdb_bench::Scheme;
use mmdb_workload::Homogeneous;

fn bench_short_update_txn(c: &mut Criterion) {
    for (group_name, rows) in [
        ("scalability/low_contention", 50_000u64),
        ("scalability/hotspot", 1_000u64),
    ] {
        let mut group = c.benchmark_group(group_name);
        let workload = Homogeneous {
            rows,
            ..Default::default()
        };
        for scheme in Scheme::ALL {
            group.bench_with_input(
                BenchmarkId::new("r10w2_txn", scheme.label()),
                &scheme,
                |b, &scheme| {
                    scheme.with_engine(Duration::from_millis(500), |factory| {
                        dispatch_engine!(factory, |engine| {
                            let table = workload.setup(engine).unwrap();
                            let mut rng = StdRng::seed_from_u64(42);
                            b.iter(|| {
                                std::hint::black_box(workload.run_one(engine, table, &mut rng))
                            });
                        })
                    });
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_short_update_txn
}
criterion_main!(benches);
