//! Table 4 companion benchmark: latency of one transaction of the standard
//! TATP mix on each scheme. `repro table4` produces the full multi-threaded
//! throughput table.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mmdb_bench::dispatch_engine;
use mmdb_bench::Scheme;
use mmdb_workload::Tatp;

fn bench_tatp_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("tatp/mix_txn");
    let tatp = Tatp::new(5_000);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("txn", scheme.label()),
            &scheme,
            |b, &scheme| {
                scheme.with_engine(Duration::from_millis(500), |factory| {
                    dispatch_engine!(factory, |engine| {
                        let tables = tatp.setup(engine).unwrap();
                        let mut rng = StdRng::seed_from_u64(31);
                        b.iter(|| std::hint::black_box(tatp.run_one(engine, tables, &mut rng)));
                    })
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tatp_mix
}
criterion_main!(benches);
