//! Micro-benchmarks of the hot write path: whole warmed write transactions
//! (begin → update → commit, and insert-then-delete pairs) on the MV engines
//! in both concurrency modes, plus the 1V update transaction for comparison.
//! Same fixture and strides as the `repro perf` experiment that records
//! `BENCH_writepath.json` (`mmdb_bench::writepath`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_bench::writepath::{grouped_row, warmed_mv_engine_with, warmed_sv_engine, KEY_STRIDE};
use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::ids::IndexId;
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};

const ROWS: u64 = 65_536;

fn bench_update_txns(c: &mut Criterion) {
    let mut group = c.benchmark_group("writepath/update_txn");
    for (label, mode) in [
        ("mvo_si", ConcurrencyMode::Optimistic),
        ("mvl_si", ConcurrencyMode::Pessimistic),
    ] {
        let (engine, table) = warmed_mv_engine_with(mode, ROWS);
        let mut key = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                key = (key.wrapping_add(KEY_STRIDE)) % ROWS;
                let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
                assert!(txn
                    .update(table, IndexId(0), key, grouped_row(key))
                    .unwrap());
                txn.commit().unwrap()
            })
        });
    }
    {
        let (engine, table) = warmed_sv_engine(ROWS, Duration::from_millis(500));
        let mut key = 0u64;
        group.bench_function("onev_rc", |b| {
            b.iter(|| {
                key = (key.wrapping_add(KEY_STRIDE)) % ROWS;
                let mut txn = engine.begin(IsolationLevel::ReadCommitted);
                assert!(txn
                    .update(table, IndexId(0), key, grouped_row(key))
                    .unwrap());
                txn.commit().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_insert_delete(c: &mut Criterion) {
    let (engine, table) = warmed_mv_engine_with(ConcurrencyMode::Optimistic, ROWS);
    let mut group = c.benchmark_group("writepath/insert_delete");
    let mut k = 0u64;
    group.bench_function("mvo_si_pair", |b| {
        b.iter(|| {
            k += 1;
            let key = ROWS + k;
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            txn.insert(table, grouped_row(key)).unwrap();
            txn.commit().unwrap();
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            assert!(txn.delete(table, IndexId(0), key).unwrap());
            txn.commit().unwrap()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_update_txns, bench_insert_delete
}
criterion_main!(benches);
