//! `repro` — regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! cargo run -p mmdb-bench --release --bin repro -- [options] <experiment>...
//!
//! experiments: fig4 fig5 table3 fig6 fig7 fig8 fig9 table4 ablation perf all
//!              perf-read perf-write   (the two perf halves individually)
//!              perf-range   (ordered-index range scans: skip list vs 1V)
//!              perf-commit  (commit durability: group commit vs per-txn flush)
//!              perf-recovery  (restart: checkpoint + tail vs full log replay)
//!              perf-adaptive  (MV/O vs MV/L vs adaptive MV/A along the
//!                              fig4→fig5 contention axis)
//!              perf-smallbank (SmallBank mix per scheme, uniform vs hotspot)
//!              perf-tpcc      (TPC-C-lite new-order/payment/order-status mix)
//!              recover   (crash/replay durability smoke — not part of `all`)
//!
//! options:
//!   --quick              CI-sized run (tiny tables, short intervals)
//!   --rows N             low-contention table size        [default 1000000]
//!   --hot-rows N         hotspot table size               [default 1000]
//!   --mpl N              multiprogramming level           [default 24]
//!   --threads a,b,c      thread counts for fig4/fig5      [default 1,2,4,6,8,12,16,20,24]
//!   --duration-ms MS     measurement interval per point   [default 1000]
//!   --subscribers N      TATP subscribers                 [default 200000]
//!   --json PATH          also write every produced table as machine-readable
//!                        JSON (schema mmdb-bench/series-tables/v1) — the
//!                        format behind the committed BENCH_*.json trajectory
//! ```

use std::time::Duration;

use mmdb_bench::experiments::{self, ExpConfig, SeriesTable};
use mmdb_bench::json;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--rows N] [--hot-rows N] [--mpl N] [--threads a,b,c] \
         [--duration-ms MS] [--subscribers N] [--json PATH] \
         <fig4|fig5|table3|fig6|fig7|fig8|fig9|table4|ablation|perf|perf-read|perf-write\
         |perf-range|perf-commit|perf-recovery|perf-adaptive|perf-smallbank|perf-tpcc\
         |recover|all>..."
    );
    std::process::exit(2);
}

struct Options {
    cfg: ExpConfig,
    experiments: Vec<String>,
    json_path: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut cfg = ExpConfig::standard();
    let mut experiments = Vec::new();
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--rows" => {
                cfg.rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--hot-rows" => {
                cfg.hot_rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--mpl" => {
                cfg.mpl = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                let list = args.next().unwrap_or_else(|| usage());
                cfg.threads = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if cfg.threads.is_empty() {
                    usage();
                }
            }
            "--duration-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.duration = Duration::from_millis(ms);
            }
            "--subscribers" => {
                cfg.subscribers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => {
                json_path = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    usage();
                })))
            }
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            _ => usage(),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    Options {
        cfg,
        experiments,
        json_path,
    }
}

fn main() {
    let Options {
        cfg,
        experiments: requested,
        json_path,
    } = parse_args();
    println!("# mmdb experiment reproduction");
    println!();
    println!(
        "configuration: rows={} hot_rows={} mpl={} duration={:?} subscribers={} threads={:?}",
        cfg.rows, cfg.hot_rows, cfg.mpl, cfg.duration, cfg.subscribers, cfg.threads
    );
    println!();

    let mut produced: Vec<SeriesTable> = Vec::new();
    let emit = |produced: &mut Vec<SeriesTable>, tables: Vec<SeriesTable>| {
        for table in tables {
            print!("{}", table.to_markdown());
            produced.push(table);
        }
    };

    for name in requested {
        match name.as_str() {
            "fig4" => emit(&mut produced, vec![experiments::fig4(&cfg)]),
            "fig5" => emit(&mut produced, vec![experiments::fig5(&cfg)]),
            "table3" => emit(&mut produced, vec![experiments::table3(&cfg)]),
            "fig6" => emit(&mut produced, vec![experiments::fig6(&cfg)]),
            "fig7" => emit(&mut produced, vec![experiments::fig7(&cfg)]),
            "fig8" => emit(&mut produced, vec![experiments::fig8(&cfg)]),
            "fig9" => emit(&mut produced, vec![experiments::fig9(&cfg)]),
            "fig8+9" | "longreaders" => {
                let (f8, f9) = experiments::fig8_and_fig9(&cfg);
                emit(&mut produced, vec![f8, f9]);
            }
            "table4" => emit(&mut produced, vec![experiments::table4(&cfg)]),
            "perf" => emit(
                &mut produced,
                vec![
                    experiments::readpath_perf(&cfg),
                    experiments::writepath_perf(&cfg),
                ],
            ),
            "perf-read" => emit(&mut produced, vec![experiments::readpath_perf(&cfg)]),
            "perf-write" => emit(&mut produced, vec![experiments::writepath_perf(&cfg)]),
            "perf-range" => emit(&mut produced, vec![experiments::rangescan_perf(&cfg)]),
            "perf-commit" => emit(&mut produced, vec![experiments::commitpath_perf(&cfg)]),
            "perf-recovery" => emit(&mut produced, vec![experiments::recovery_perf(&cfg)]),
            "perf-adaptive" => emit(&mut produced, vec![experiments::adaptive_perf(&cfg)]),
            "perf-smallbank" => emit(&mut produced, vec![experiments::smallbank_perf(&cfg)]),
            "perf-tpcc" => emit(&mut produced, vec![experiments::tpcc_perf(&cfg)]),
            "recover" => recover_smoke(&cfg),
            "ablation" => emit(
                &mut produced,
                vec![
                    experiments::ablation_validation_cost(&cfg),
                    experiments::ablation_gc(&cfg),
                ],
            ),
            "all" => emit(&mut produced, experiments::run_all(&cfg)),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }

    if let Some(path) = json_path {
        let document = json::tables_to_json(&cfg, &produced);
        match std::fs::write(&path, document) {
            Ok(()) => println!(
                "wrote {} tables as JSON to {}",
                produced.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write JSON to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `recover` — crash/replay durability smoke: run an update-heavy logged
/// workload on MV/O and 1V, "crash" the redo log at several byte offsets
/// (clean end, mid-log, mid-record), recover each prefix into a fresh
/// engine and verify the rebuilt state against a model replay of the
/// surviving records. Panics on divergence; prints one grep-able
/// `MMDB-RECOVER` line per check.
fn recover_smoke(cfg: &ExpConfig) {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use mmdb_common::engine::{Engine, EngineTxn};
    use mmdb_common::error::Result;
    use mmdb_common::ids::{IndexId, TableId};
    use mmdb_common::isolation::IsolationLevel;
    use mmdb_common::row::{rowbuf, IndexSpec, KeySpec, TableSpec};
    use mmdb_storage::log::{
        read_log_bytes, FileLogger, LogOp, NullLogger, RecoveryReport, RedoLogger,
    };

    const PRIMARY: IndexId = IndexId(0);
    const FILLER: usize = 16;

    fn spec(rows: u64) -> TableSpec {
        TableSpec::keyed_u64("recover", rows as usize * 2).with_index(IndexSpec {
            name: "by_fill".into(),
            key: KeySpec::BytesAt { offset: 8, len: 1 },
            buckets: 64,
            unique: false,
            ordered: false,
        })
    }

    fn smoke<E: Engine>(
        label: &str,
        rows: u64,
        make: &dyn Fn(Arc<dyn RedoLogger>) -> E,
        recover: &dyn Fn(&E, &[u8]) -> Result<RecoveryReport>,
    ) {
        let path = std::env::temp_dir().join(format!(
            "mmdb-repro-recover-{}-{}.log",
            std::process::id(),
            label.replace('/', "_")
        ));
        let logger = Arc::new(FileLogger::create(&path).expect("create log file"));
        let engine = make(logger.clone());
        let table = engine.create_table(spec(rows)).expect("create table");

        // Populate through a logged transaction, then an update/delete/insert
        // mix, one transaction each, so the log carries a realistic history.
        let mut setup = engine.begin(IsolationLevel::ReadCommitted);
        for k in 0..rows {
            setup
                .insert(table, rowbuf::keyed_row(k, FILLER, 1))
                .expect("populate");
        }
        setup.commit().expect("populate commit");
        let mut x = 0x5EEDu64;
        for _ in 0..rows * 4 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % rows;
            let fill = (x % 7 + 1) as u8;
            let mut txn = engine.begin(IsolationLevel::Serializable);
            match x % 8 {
                0 => {
                    let _ = txn.delete(table, PRIMARY, k);
                }
                1 => {
                    if txn.read(table, PRIMARY, k).expect("read").is_none() {
                        txn.insert(table, rowbuf::keyed_row(k, FILLER, fill))
                            .expect("insert");
                    }
                }
                _ => {
                    let _ = txn.update(table, PRIMARY, k, rowbuf::keyed_row(k, FILLER, fill));
                }
            }
            txn.commit().expect("workload commit");
        }
        logger.flush().expect("flush log");
        let bytes = std::fs::read(&path).expect("read log");
        let _ = std::fs::remove_file(&path);

        // Crash offsets: clean end, mid-log, one byte short (mid-record).
        for offset in [bytes.len(), bytes.len() / 2, bytes.len().saturating_sub(1)] {
            let prefix = &bytes[..offset];
            let outcome = read_log_bytes(prefix).expect("truncation is torn, not corrupt");
            // Model replay of the surviving records, end-timestamp order.
            let mut sorted: Vec<_> = outcome.records.iter().collect();
            sorted.sort_by_key(|r| r.end_ts);
            let mut model: BTreeMap<u64, u8> = BTreeMap::new();
            for record in sorted {
                for op in &record.ops {
                    match op {
                        LogOp::Write { row, .. } => {
                            model.insert(rowbuf::key_of(row), rowbuf::fill_of(row));
                        }
                        LogOp::Delete { key, .. } => {
                            model.remove(key);
                        }
                    }
                }
            }

            let fresh: E = make(Arc::new(NullLogger::new()));
            let fresh_table: TableId = fresh.create_table(spec(rows)).expect("create table");
            let report = recover(&fresh, prefix).expect("recovery succeeds");

            let mut txn = fresh.begin(IsolationLevel::ReadCommitted);
            let mut recovered: BTreeMap<u64, u8> = BTreeMap::new();
            for k in 0..rows {
                if let Some(row) = txn.read(fresh_table, PRIMARY, k).expect("read") {
                    recovered.insert(k, rowbuf::fill_of(&row));
                }
            }
            txn.commit().expect("verify commit");
            assert_eq!(
                recovered, model,
                "MMDB-RECOVER engine={label} offset={offset}: recovered state diverges \
                 from the surviving log records"
            );
            println!(
                "MMDB-RECOVER engine={label} offset={offset} records={} torn_bytes={} \
                 rows={} status=ok",
                report.records_applied,
                report.torn_bytes,
                recovered.len()
            );
        }
    }

    let rows = cfg.hot_rows.clamp(64, 500);
    println!("## recover — crash/replay durability smoke ({rows} rows)");
    println!();
    smoke(
        "MV/O",
        rows,
        &|logger| mmdb_core::MvEngine::with_logger(mmdb_core::MvConfig::optimistic(), logger),
        &|engine, bytes| engine.recover_bytes(bytes),
    );
    smoke(
        "1V",
        rows,
        &|logger| mmdb_onev::SvEngine::with_logger(mmdb_onev::SvConfig::default(), logger),
        &|engine, bytes| engine.recover_bytes(bytes),
    );
    println!();
}
