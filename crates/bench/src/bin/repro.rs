//! `repro` — regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! cargo run -p mmdb-bench --release --bin repro -- [options] <experiment>...
//!
//! experiments: fig4 fig5 table3 fig6 fig7 fig8 fig9 table4 ablation all
//!
//! options:
//!   --quick              CI-sized run (tiny tables, short intervals)
//!   --rows N             low-contention table size        [default 1000000]
//!   --hot-rows N         hotspot table size               [default 1000]
//!   --mpl N              multiprogramming level           [default 24]
//!   --threads a,b,c      thread counts for fig4/fig5      [default 1,2,4,6,8,12,16,20,24]
//!   --duration-ms MS     measurement interval per point   [default 1000]
//!   --subscribers N      TATP subscribers                 [default 200000]
//! ```

use std::time::Duration;

use mmdb_bench::experiments::{self, ExpConfig, SeriesTable};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--rows N] [--hot-rows N] [--mpl N] [--threads a,b,c] \
         [--duration-ms MS] [--subscribers N] <fig4|fig5|table3|fig6|fig7|fig8|fig9|table4|ablation|all>..."
    );
    std::process::exit(2);
}

fn parse_args() -> (ExpConfig, Vec<String>) {
    let mut cfg = ExpConfig::standard();
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--rows" => {
                cfg.rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--hot-rows" => {
                cfg.hot_rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--mpl" => {
                cfg.mpl = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                let list = args.next().unwrap_or_else(|| usage());
                cfg.threads = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if cfg.threads.is_empty() {
                    usage();
                }
            }
            "--duration-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.duration = Duration::from_millis(ms);
            }
            "--subscribers" => {
                cfg.subscribers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            _ => usage(),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    (cfg, experiments)
}

fn print_table(table: &SeriesTable) {
    print!("{}", table.to_markdown());
}

fn main() {
    let (cfg, requested) = parse_args();
    println!("# mmdb experiment reproduction");
    println!();
    println!(
        "configuration: rows={} hot_rows={} mpl={} duration={:?} subscribers={} threads={:?}",
        cfg.rows, cfg.hot_rows, cfg.mpl, cfg.duration, cfg.subscribers, cfg.threads
    );
    println!();

    for name in requested {
        match name.as_str() {
            "fig4" => print_table(&experiments::fig4(&cfg)),
            "fig5" => print_table(&experiments::fig5(&cfg)),
            "table3" => print_table(&experiments::table3(&cfg)),
            "fig6" => print_table(&experiments::fig6(&cfg)),
            "fig7" => print_table(&experiments::fig7(&cfg)),
            "fig8" => print_table(&experiments::fig8(&cfg)),
            "fig9" => print_table(&experiments::fig9(&cfg)),
            "fig8+9" | "longreaders" => {
                let (f8, f9) = experiments::fig8_and_fig9(&cfg);
                print_table(&f8);
                print_table(&f9);
            }
            "table4" => print_table(&experiments::table4(&cfg)),
            "ablation" => {
                print_table(&experiments::ablation_validation_cost(&cfg));
                print_table(&experiments::ablation_gc(&cfg));
            }
            "all" => {
                for table in experiments::run_all(&cfg) {
                    print_table(&table);
                }
            }
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }
}
