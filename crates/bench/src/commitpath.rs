//! Shared fixture for the commit-durability measurements: the `repro
//! perf-commit` experiment ([`crate::experiments::commitpath_perf`],
//! recorded into `BENCH_groupcommit.json`).
//!
//! The measured unit is **committed single-row update transactions per
//! second** with a real redo log underneath: `threads` workers update
//! disjoint key ranges of a warmed MV/O table (no concurrency-control
//! conflicts — the log is the only shared resource under test) while every
//! commit runs at the requested [`Durability`]. The logger is the swept
//! variable:
//!
//! * a plain [`FileLogger`](mmdb_storage::log::FileLogger), whose default
//!   `wait_durable` is a full per-transaction `write`+sync — the
//!   conventional synchronous-commit baseline;
//! * a [`GroupCommitLog`](mmdb_storage::group_commit::GroupCommitLog),
//!   tickless (leader-elected inline flush) or with a background tick,
//!   where concurrent Sync committers share one `write`+sync per batch.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mmdb_common::durability::Durability;
use mmdb_common::engine::{Engine as _, EngineTxn as _};
use mmdb_common::ids::IndexId;
use mmdb_common::row::rowbuf::{grouped_row, grouped_spec};
use mmdb_core::{MvConfig, MvEngine};
use mmdb_storage::log::RedoLogger;

/// Transactions each worker commits before the measured window opens:
/// enough to warm the engine pools, the log file and (for the group-commit
/// loggers) the shared batch buffer.
pub const WARMUP_TXNS: u64 = 64;

/// A fresh scratch log path for one measurement.
pub fn scratch_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmdb-perf-commit-{}-{tag}.log", std::process::id()))
}

/// A logger factory the experiment sweeps: builds the redo logger under
/// test at the given scratch path.
pub type MakeLogger<'a> = &'a dyn Fn(&Path) -> Arc<dyn RedoLogger>;

/// Committed-transactions-per-second of `threads` workers updating disjoint
/// key ranges at the given durability, on a fresh MV/O engine wired to the
/// logger `make_logger` builds at a scratch path. The scratch log file is
/// removed afterwards.
pub fn commit_throughput(
    tag: &str,
    rows: u64,
    threads: usize,
    duration: Duration,
    durability: Durability,
    make_logger: MakeLogger<'_>,
) -> f64 {
    let path = scratch_log(tag);
    let logger = make_logger(&path);
    let engine = MvEngine::with_logger(
        MvConfig::optimistic().with_deadlock_detector(false),
        logger.clone(),
    );
    let table = engine
        .create_table(grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");

    let span = rows / threads as u64;
    assert!(span > 0, "need at least one key per worker");
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    // Workers + the timekeeper all release together, after every warmup.
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = engine.clone();
            let (stop, committed, barrier) = (&stop, &committed, &barrier);
            scope.spawn(move || {
                let base = t as u64 * span;
                let mut key = base;
                let commit_one = |key: u64| {
                    let mut txn =
                        engine.begin(mmdb_common::isolation::IsolationLevel::SnapshotIsolation);
                    txn.set_durability(durability);
                    assert!(txn
                        .update(table, IndexId(0), key, grouped_row(key))
                        .expect("update"));
                    txn.commit().expect("commit");
                };
                for _ in 0..WARMUP_TXNS {
                    key = base + (key - base + 31) % span;
                    commit_one(key);
                }
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key = base + (key - base + 31) % span;
                    commit_one(key);
                    n += 1;
                }
                committed.fetch_add(n, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        // Scope join: the elapsed time covers the stragglers' final
        // (possibly syncing) commits, so throughput is never overstated.
        start
    })
    .elapsed();
    // Leave the log clean (drop order: engine still holds the logger, but
    // removal only unlinks the path — the final drop-flush writes into the
    // unlinked file harmlessly).
    let _ = logger.flush();
    let _ = std::fs::remove_file(&path);
    committed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::group_commit::GroupCommitLog;
    use mmdb_storage::log::FileLogger;

    #[test]
    fn throughput_is_positive_for_every_logger_shape() {
        let cases: [(&str, Durability, MakeLogger<'_>); 3] = [
            ("test-file-sync", Durability::Sync, &|p: &Path| -> Arc<
                dyn RedoLogger,
            > {
                Arc::new(FileLogger::create(p).expect("file logger"))
            }),
            ("test-gc-sync", Durability::Sync, &|p: &Path| -> Arc<
                dyn RedoLogger,
            > {
                Arc::new(GroupCommitLog::create(p).expect("gc logger"))
            }),
            ("test-gc-async", Durability::Async, &|p: &Path| -> Arc<
                dyn RedoLogger,
            > {
                Arc::new(
                    GroupCommitLog::with_tick(p, Duration::from_micros(200)).expect("gc logger"),
                )
            }),
        ];
        for (tag, durability, make) in cases {
            let tps = commit_throughput(tag, 512, 2, Duration::from_millis(40), durability, make);
            assert!(tps > 0.0, "{tag}: no transactions committed");
        }
    }
}
