//! The paper's experiments (§5), one function per table/figure.
//!
//! Every function sweeps the relevant parameter, runs the workload against
//! all three schemes through the generic driver, and returns a
//! [`SeriesTable`] whose rows correspond to the series the paper plots.
//! Absolute numbers depend on the host; the *shape* (which scheme wins,
//! roughly by how much, and where the curves cross) is what reproduces the
//! paper — see `EXPERIMENTS.md` for the recorded comparison.

use std::time::Duration;

use mmdb_common::engine::Engine;
use mmdb_common::isolation::IsolationLevel;

use mmdb_workload::driver::{run_for, DriverReport, TxnKind};
use mmdb_workload::heterogeneous::{LongReaderMix, ReadMix};
use mmdb_workload::homogeneous::Homogeneous;
use mmdb_workload::smallbank::SmallBank;
use mmdb_workload::tatp::Tatp;
use mmdb_workload::tpcc_lite::TpccLite;

use crate::dispatch_engine;
use crate::scheme::Scheme;

/// Parameters shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Rows in the low-contention table (the paper uses 10,000,000).
    pub rows: u64,
    /// Rows in the hotspot table (the paper uses 1,000).
    pub hot_rows: u64,
    /// Thread counts swept by the scalability experiments.
    pub threads: Vec<usize>,
    /// Multiprogramming level for the fixed-MPL experiments (paper: 24).
    pub mpl: usize,
    /// Measurement interval per data point.
    pub duration: Duration,
    /// TATP subscriber count (the paper uses 20,000,000).
    pub subscribers: u64,
    /// Lock / wait timeout used to break deadlocks and bound waits.
    pub lock_timeout: Duration,
}

impl ExpConfig {
    /// Laptop-scale defaults: a 1,000,000-row table, 24-thread MPL, one
    /// second per data point, 200,000 TATP subscribers.
    pub fn standard() -> ExpConfig {
        ExpConfig {
            rows: 1_000_000,
            hot_rows: 1_000,
            threads: vec![1, 2, 4, 6, 8, 12, 16, 20, 24],
            mpl: 24,
            duration: Duration::from_secs(1),
            subscribers: 200_000,
            lock_timeout: Duration::from_millis(500),
        }
    }

    /// CI-sized configuration: tiny tables and very short intervals so the
    /// full suite runs in well under a minute.
    pub fn quick() -> ExpConfig {
        ExpConfig {
            rows: 20_000,
            hot_rows: 500,
            threads: vec![1, 2, 4],
            mpl: 4,
            duration: Duration::from_millis(200),
            subscribers: 2_000,
            lock_timeout: Duration::from_millis(100),
        }
    }
}

/// A result table: one row per scheme (or scheme/level), one column per swept
/// parameter value.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    /// Experiment title (e.g. "Figure 4: scalability under low contention").
    pub title: String,
    /// Label of the swept parameter.
    pub x_label: String,
    /// Values of the swept parameter.
    pub xs: Vec<String>,
    /// (series label, value per x) rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Unit of the cell values.
    pub unit: String,
}

impl SeriesTable {
    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("Values are {}.\n\n", self.unit));
        out.push_str(&format!("| {} |", self.x_label));
        for x in &self.xs {
            out.push_str(&format!(" {x} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.xs {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                if *v >= 1000.0 {
                    out.push_str(&format!(" {:.0} |", v));
                } else {
                    out.push_str(&format!(" {:.2} |", v));
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Look a cell up by series label and column index (used by tests and by
    /// the shape checks in `repro --check`).
    pub fn value(&self, series: &str, column: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _)| l == series)
            .and_then(|(_, vs)| vs.get(column))
            .copied()
    }
}

// ---------------------------------------------------------------------
// Generic per-scheme runners
// ---------------------------------------------------------------------

fn run_homogeneous_on<E: Engine>(
    engine: &E,
    workload: &Homogeneous,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let table = workload.setup(engine).expect("setup homogeneous workload");
    run_for(engine, threads, duration, |e, rng, _| {
        workload.run_one(e, table, rng)
    })
}

fn run_read_mix_on<E: Engine>(
    engine: &E,
    mix: &ReadMix,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let table = mix.base.setup(engine).expect("setup read mix");
    run_for(engine, threads, duration, |e, rng, _| {
        mix.run_one(e, table, rng)
    })
}

fn run_long_readers_on<E: Engine>(
    engine: &E,
    mix: &LongReaderMix,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let table = mix.base.setup(engine).expect("setup long-reader mix");
    run_for(engine, threads, duration, |e, rng, worker| {
        mix.run_one(e, table, rng, worker)
    })
}

fn run_smallbank_on<E: Engine>(
    engine: &E,
    sb: &SmallBank,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let tables = sb.setup(engine).expect("setup SmallBank");
    run_for(engine, threads, duration, |e, rng, _| {
        sb.run_one(e, tables, rng)
    })
}

fn run_tpcc_on<E: Engine>(
    engine: &E,
    tpcc: &TpccLite,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let tables = tpcc.setup(engine).expect("setup TPC-C-lite");
    run_for(engine, threads, duration, |e, rng, _| {
        tpcc.run_one(e, tables, rng)
    })
}

fn run_tatp_on<E: Engine>(
    engine: &E,
    tatp: &Tatp,
    threads: usize,
    duration: Duration,
) -> DriverReport {
    let tables = tatp.setup(engine).expect("setup TATP");
    run_for(engine, threads, duration, |e, rng, _| {
        tatp.run_one(e, tables, rng)
    })
}

fn scalability(cfg: &ExpConfig, rows: u64, title: &str) -> SeriesTable {
    let workload = Homogeneous {
        rows,
        ..Default::default()
    };
    let mut table = SeriesTable {
        title: title.to_string(),
        x_label: "threads".into(),
        xs: cfg.threads.iter().map(|t| t.to_string()).collect(),
        rows: Vec::new(),
        unit: "committed transactions / second (and abort rate per scheme)".into(),
    };
    // Throughput first, then the abort-rate companion series — the paper
    // quotes both, and the abort rates explain the throughput cliffs under
    // contention.
    let mut abort_rows = Vec::new();
    for scheme in Scheme::ALL {
        let mut series = Vec::with_capacity(cfg.threads.len());
        let mut aborts = Vec::with_capacity(cfg.threads.len());
        for &threads in &cfg.threads {
            let report = scheme.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| {
                    run_homogeneous_on(engine, &workload, threads, cfg.duration)
                })
            });
            series.push(report.tps());
            aborts.push(report.abort_rate());
        }
        table.rows.push((scheme.label().to_string(), series));
        abort_rows.push((format!("{} abort rate", scheme.label()), aborts));
    }
    table.rows.extend(abort_rows);
    table
}

/// **Figure 4** — scalability under low contention: R=10 W=2 transactions on
/// a large table at Read Committed, sweeping the multiprogramming level.
pub fn fig4(cfg: &ExpConfig) -> SeriesTable {
    scalability(
        cfg,
        cfg.rows,
        "Figure 4: scalability under low contention (R=10, W=2, read committed)",
    )
}

/// **Figure 5** — scalability under high contention: the same transaction on
/// a 1,000-row hotspot table.
pub fn fig5(cfg: &ExpConfig) -> SeriesTable {
    scalability(
        cfg,
        cfg.hot_rows,
        "Figure 5: scalability under high contention (hotspot table)",
    )
}

/// **Table 3** — throughput at higher isolation levels (fixed MPL), plus the
/// percentage drop relative to Read Committed.
pub fn table3(cfg: &ExpConfig) -> SeriesTable {
    let levels = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::Serializable,
    ];
    let mut table = SeriesTable {
        title: "Table 3: throughput at higher isolation levels (MPL = 24 in the paper)".into(),
        x_label: "scheme".into(),
        xs: vec![
            "RC tx/s".into(),
            "RC abort rate".into(),
            "RR tx/s".into(),
            "RR % drop".into(),
            "RR abort rate".into(),
            "SER tx/s".into(),
            "SER % drop".into(),
            "SER abort rate".into(),
        ],
        rows: Vec::new(),
        unit: "committed transactions / second (plus % drop vs read committed and abort rate)"
            .into(),
    };
    for scheme in Scheme::ALL {
        let mut tps = Vec::new();
        let mut aborts = Vec::new();
        for level in levels {
            let workload = Homogeneous {
                rows: cfg.rows,
                isolation: level,
                ..Default::default()
            };
            let report = scheme.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| {
                    run_homogeneous_on(engine, &workload, cfg.mpl, cfg.duration)
                })
            });
            tps.push(report.tps());
            aborts.push(report.abort_rate());
        }
        let drop_of = |x: f64| {
            if tps[0] > 0.0 {
                (1.0 - x / tps[0]) * 100.0
            } else {
                0.0
            }
        };
        table.rows.push((
            scheme.label().to_string(),
            vec![
                tps[0],
                aborts[0],
                tps[1],
                drop_of(tps[1]),
                aborts[1],
                tps[2],
                drop_of(tps[2]),
                aborts[2],
            ],
        ));
    }
    table
}

fn read_mix(cfg: &ExpConfig, rows: u64, title: &str) -> SeriesTable {
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut table = SeriesTable {
        title: title.to_string(),
        x_label: "read-only fraction".into(),
        xs: fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect(),
        rows: Vec::new(),
        unit: "committed transactions / second".into(),
    };
    for scheme in Scheme::ALL {
        let mut series = Vec::new();
        for &fraction in &fractions {
            let mix = ReadMix::new(rows, fraction);
            let tps = scheme.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| {
                    run_read_mix_on(engine, &mix, cfg.mpl, cfg.duration).tps()
                })
            });
            series.push(tps);
        }
        table.rows.push((scheme.label().to_string(), series));
    }
    table
}

/// **Figure 6** — impact of short read-only transactions, low contention.
pub fn fig6(cfg: &ExpConfig) -> SeriesTable {
    read_mix(
        cfg,
        cfg.rows,
        "Figure 6: impact of short read-only transactions (low contention)",
    )
}

/// **Figure 7** — impact of short read-only transactions, hotspot table.
pub fn fig7(cfg: &ExpConfig) -> SeriesTable {
    read_mix(
        cfg,
        cfg.hot_rows,
        "Figure 7: impact of short read-only transactions (high contention)",
    )
}

/// Shared runner for Figures 8 and 9: returns (update throughput, long-read
/// row throughput) per scheme and per long-reader count.
fn long_readers(cfg: &ExpConfig) -> (SeriesTable, SeriesTable) {
    let mut counts: Vec<usize> = vec![0, 1, 2, 4, 6, 12, 18, 24];
    counts.retain(|&c| c <= cfg.mpl);
    if *counts.last().unwrap_or(&0) != cfg.mpl {
        counts.push(cfg.mpl);
    }
    let xs: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    let mut updates = SeriesTable {
        title: "Figure 8: update throughput with concurrent long read-only transactions".into(),
        x_label: "long readers (of MPL)".into(),
        xs: xs.clone(),
        rows: Vec::new(),
        unit: "committed update transactions / second".into(),
    };
    let mut reads = SeriesTable {
        title: "Figure 9: read throughput of the long read-only transactions".into(),
        x_label: "long readers (of MPL)".into(),
        xs,
        rows: Vec::new(),
        unit: "rows read / second by long readers".into(),
    };
    for scheme in Scheme::ALL {
        // Transactionally consistent read-only queries: snapshot isolation on
        // the multiversion engines (no locking/validation for read-only
        // transactions, §3.4); the single-version engine must take
        // serializable read locks.
        let long_iso = match scheme {
            Scheme::OneV => IsolationLevel::Serializable,
            _ => IsolationLevel::SnapshotIsolation,
        };
        let mut update_series = Vec::new();
        let mut read_series = Vec::new();
        for &long in &counts {
            let mix = LongReaderMix::new(cfg.rows, long, long_iso);
            let report = scheme.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| {
                    run_long_readers_on(engine, &mix, cfg.mpl, cfg.duration)
                })
            });
            update_series.push(report.tps_of(TxnKind::Update));
            read_series.push(report.read_rate_of(TxnKind::LongRead));
        }
        updates
            .rows
            .push((scheme.label().to_string(), update_series));
        reads.rows.push((scheme.label().to_string(), read_series));
    }
    (updates, reads)
}

/// **Figure 8** — update throughput as long read-only transactions are added.
pub fn fig8(cfg: &ExpConfig) -> SeriesTable {
    long_readers(cfg).0
}

/// **Figure 9** — read throughput of the long read-only transactions in the
/// same experiment.
pub fn fig9(cfg: &ExpConfig) -> SeriesTable {
    long_readers(cfg).1
}

/// **Figures 8 & 9** from a single run (avoids running the sweep twice).
pub fn fig8_and_fig9(cfg: &ExpConfig) -> (SeriesTable, SeriesTable) {
    long_readers(cfg)
}

/// **Table 4** — TATP throughput per scheme at the fixed MPL.
pub fn table4(cfg: &ExpConfig) -> SeriesTable {
    let tatp = Tatp::new(cfg.subscribers);
    let mut table = SeriesTable {
        title: "Table 4: TATP results".into(),
        x_label: "scheme".into(),
        xs: vec!["transactions / second".into(), "abort rate".into()],
        rows: Vec::new(),
        unit: "committed TATP transactions / second".into(),
    };
    for scheme in Scheme::ALL {
        let report = scheme.with_engine(cfg.lock_timeout, |factory| {
            dispatch_engine!(factory, |engine| run_tatp_on(
                engine,
                &tatp,
                cfg.mpl,
                cfg.duration
            ))
        });
        table.rows.push((
            scheme.label().to_string(),
            vec![report.tps(), report.abort_rate()],
        ));
    }
    table
}

/// **SmallBank benchmark** — the banking workload as a perf client
/// (`BENCH_smallbank.json`). All four schemes at the fixed MPL under the
/// six-transaction SmallBank mix at snapshot isolation, once with uniform
/// account selection and once with the hotspot knob turned up (most traffic
/// aimed at a small set of hot customers — the regime where the schemes'
/// conflict handling diverges). Abort-rate companions explain the
/// throughput gaps.
pub fn smallbank_perf(cfg: &ExpConfig) -> SeriesTable {
    let accounts = cfg.rows.clamp(1_000, 100_000);
    let hot_accounts = cfg.hot_rows.clamp(10, accounts / 2);
    let bank = |hot_fraction: f64| SmallBank {
        accounts,
        initial_balance: 10_000,
        hot_accounts,
        hot_fraction,
        isolation: IsolationLevel::SnapshotIsolation,
    };
    let variants = [("uniform", bank(0.0)), ("hotspot", bank(0.9))];
    let mut table = SeriesTable {
        title: format!(
            "SmallBank: throughput per scheme, uniform vs {hot_accounts}-account hotspot \
             ({accounts} accounts, snapshot isolation, MPL {})",
            cfg.mpl
        ),
        x_label: "scheme".into(),
        xs: variants
            .iter()
            .flat_map(|(name, _)| [format!("{name} tx/s"), format!("{name} abort rate")])
            .collect(),
        rows: Vec::new(),
        unit: "committed SmallBank transactions / second (and abort rate)".into(),
    };
    for scheme in Scheme::ALL {
        let mut cells = Vec::with_capacity(table.xs.len());
        for (_, sb) in &variants {
            let report = scheme.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| run_smallbank_on(
                    engine,
                    sb,
                    cfg.mpl,
                    cfg.duration
                ))
            });
            cells.push(report.tps());
            cells.push(report.abort_rate());
        }
        table.rows.push((scheme.label().to_string(), cells));
    }
    table
}

/// **TPC-C-lite benchmark** — the order-entry workload as a perf client
/// (`BENCH_tpcc.json`). All four schemes at the fixed MPL under the
/// new-order / payment / order-status mix at snapshot isolation. New-order
/// exercises the single-writer district counter (a natural hotspot) plus
/// ordered-index inserts; order-status range-scans the order and order-line
/// tables through the ordered secondary index. The new-order column is the
/// classic TPC-C headline rate.
pub fn tpcc_perf(cfg: &ExpConfig) -> SeriesTable {
    let tpcc = TpccLite {
        warehouses: 2,
        districts_per_wh: 4,
        customers_per_district: (cfg.rows / 64).clamp(64, 4_096),
        initial_orders: 3,
        isolation: IsolationLevel::SnapshotIsolation,
    };
    let mut table = SeriesTable {
        title: format!(
            "TPC-C-lite: throughput per scheme ({} warehouses x {} districts, \
             {} customers/district, snapshot isolation, MPL {})",
            tpcc.warehouses, tpcc.districts_per_wh, tpcc.customers_per_district, cfg.mpl
        ),
        x_label: "scheme".into(),
        xs: vec!["tx/s".into(), "new-order tx/s".into(), "abort rate".into()],
        rows: Vec::new(),
        unit: "committed TPC-C-lite transactions / second (and abort rate)".into(),
    };
    for scheme in Scheme::ALL {
        let report = scheme.with_engine(cfg.lock_timeout, |factory| {
            dispatch_engine!(factory, |engine| run_tpcc_on(
                engine,
                &tpcc,
                cfg.mpl,
                cfg.duration
            ))
        });
        table.rows.push((
            scheme.label().to_string(),
            vec![
                report.tps(),
                report.tps_of(TxnKind::TpccNewOrder),
                report.abort_rate(),
            ],
        ));
    }
    table
}

/// Ablation: cost of higher isolation for MV/O as the read set grows
/// (validation is O(|ReadSet|)). Sweeps the reads-per-transaction parameter
/// and reports committed transactions per second at Serializable vs Read
/// Committed on the optimistic engine.
pub fn ablation_validation_cost(cfg: &ExpConfig) -> SeriesTable {
    let read_counts = [2usize, 10, 50, 200];
    let mut table = SeriesTable {
        title: "Ablation: optimistic validation cost vs read-set size (MV/O)".into(),
        x_label: "reads per transaction".into(),
        xs: read_counts.iter().map(|r| r.to_string()).collect(),
        rows: Vec::new(),
        unit: "committed transactions / second".into(),
    };
    for (label, iso) in [
        ("MV/O read committed", IsolationLevel::ReadCommitted),
        ("MV/O serializable", IsolationLevel::Serializable),
    ] {
        let mut series = Vec::new();
        for &reads in &read_counts {
            let workload = Homogeneous {
                rows: cfg.rows,
                reads,
                writes: 2,
                isolation: iso,
                ..Default::default()
            };
            let tps = Scheme::MvO.with_engine(cfg.lock_timeout, |factory| {
                dispatch_engine!(factory, |engine| {
                    run_homogeneous_on(engine, &workload, cfg.mpl, cfg.duration).tps()
                })
            });
            series.push(tps);
        }
        table.rows.push((label.to_string(), series));
    }
    table
}

/// Ablation: effect of cooperative garbage collection on version counts.
/// Runs an update-heavy workload with GC enabled vs disabled and reports the
/// number of versions left in the table afterwards.
pub fn ablation_gc(cfg: &ExpConfig) -> SeriesTable {
    use mmdb_common::engine::Engine as _;
    let rows = cfg.hot_rows.max(500);
    let mut table = SeriesTable {
        title: "Ablation: cooperative garbage collection (MV/O, update-heavy hotspot)".into(),
        x_label: "configuration".into(),
        xs: vec!["versions after run".into(), "versions reclaimed".into()],
        rows: Vec::new(),
        unit: "version counts".into(),
    };
    for (label, gc_every) in [
        ("GC enabled (every 128 commits)", 128u64),
        ("GC disabled", 0u64),
    ] {
        let engine =
            mmdb_core::MvEngine::optimistic(mmdb_core::MvConfig::default().with_gc_every(gc_every));
        let workload = Homogeneous {
            rows,
            ..Default::default()
        };
        let t = workload.setup(&engine).expect("setup");
        let _ = run_for(&engine, cfg.mpl.min(8), cfg.duration, |e, rng, _| {
            workload.run_one(e, t, rng)
        });
        let after = engine.version_count(t).expect("count") as f64;
        let reclaimed = engine.stats().snapshot().versions_collected as f64;
        table.rows.push((label.to_string(), vec![after, reclaimed]));
    }
    table
}

/// Time `op` over `iters` iterations after `iters / 8` warm-up calls and
/// return nanoseconds per operation.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters / 8 {
        op();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// **Read-path microbenchmark** — the perf baseline this repository's
/// trajectory starts from (`BENCH_readpath.json`). Single-threaded ns/op of
/// the system's hottest operations on a warmed engine:
///
/// * MV/O point read and short (8-row) secondary scan, through both the
///   materializing API (`read` / `scan_key`, clones rows into
///   `Option<Row>` / `Vec<Row>`) and the visitor API (`read_with` /
///   `scan_key_with`, allocation-free steady state);
/// * the 1V point read for comparison (lock-coupled, inherently allocating);
/// * the transaction-table lookup both ways (`get` clones an `Arc`,
///   `get_in` borrows under an epoch guard) — the per-version visibility
///   cost of §2.5.
pub fn readpath_perf(cfg: &ExpConfig) -> SeriesTable {
    use mmdb_common::engine::EngineTxn as _;
    use mmdb_common::ids::{IndexId, TxnId};
    use mmdb_common::row::rowbuf;

    use crate::readpath::{
        registered_txn_table, warmed_mv_engine, warmed_sv_engine, GROUP_SIZE, GROUP_STRIDE,
        KEY_STRIDE, TXN_TABLE_ENTRIES,
    };

    let rows = cfg.rows.clamp(8_192, 262_144);
    // Iteration counts scale with the configured measurement interval so the
    // quick/CI configuration stays fast while the standard one averages over
    // enough operations for stable numbers.
    let read_iters = (cfg.duration.as_millis() as u64 * 200).clamp(20_000, 400_000);
    let scan_iters = read_iters / 5;
    let lookup_iters = read_iters * 5;

    let mut table = SeriesTable {
        title: format!("Read path: ns/op on a warmed engine ({rows} rows, single thread)"),
        x_label: "operation".into(),
        xs: vec!["ns/op".into()],
        rows: Vec::new(),
        unit: "nanoseconds per operation".into(),
    };

    // --- MV/O ---
    let (engine, t) = warmed_mv_engine(rows);
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let mut key = 0u64;
    let read_mat = ns_per_op(read_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % rows;
        std::hint::black_box(txn.read(t, IndexId(0), key).expect("read"));
    });
    let mut key = 1u64;
    let read_vis = ns_per_op(read_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % rows;
        txn.read_with(t, IndexId(0), key, &mut |row| {
            std::hint::black_box(rowbuf::key_of(row));
        })
        .expect("read_with");
    });
    let mut group = 0u64;
    let scan_mat = ns_per_op(scan_iters, || {
        group = (group.wrapping_add(GROUP_STRIDE)) % (rows / GROUP_SIZE);
        std::hint::black_box(txn.scan_key(t, IndexId(1), group).expect("scan_key").len());
    });
    let mut group = 1u64;
    let scan_vis = ns_per_op(scan_iters, || {
        group = (group.wrapping_add(GROUP_STRIDE)) % (rows / GROUP_SIZE);
        let mut sum = 0u64;
        txn.scan_key_with(t, IndexId(1), group, &mut |row| sum += rowbuf::key_of(row))
            .expect("scan_key_with");
        std::hint::black_box(sum);
    });
    txn.abort();

    // --- 1V ---
    let (sv, t1) = warmed_sv_engine(rows, cfg.lock_timeout);
    let mut txn = sv.begin(IsolationLevel::ReadCommitted);
    let mut key = 0u64;
    let sv_read_vis = ns_per_op(read_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % rows;
        txn.read_with(t1, IndexId(0), key, &mut |row| {
            std::hint::black_box(rowbuf::key_of(row));
        })
        .expect("read_with");
    });
    txn.abort();

    // --- TxnTable lookups (the §2.5 per-version visibility cost) ---
    let txns = registered_txn_table();
    let mut id = 1u64;
    let get_arc = ns_per_op(lookup_iters, || {
        id = id % TXN_TABLE_ENTRIES + 1;
        std::hint::black_box(txns.get(TxnId(id)).expect("registered").id());
    });
    let guard = crossbeam::epoch::pin();
    let mut id = 1u64;
    let get_borrow = ns_per_op(lookup_iters, || {
        id = id % TXN_TABLE_ENTRIES + 1;
        std::hint::black_box(txns.get_in(TxnId(id), &guard).expect("registered").id());
    });
    drop(guard);

    for (label, value) in [
        ("MV/O point read (materializing `read`)", read_mat),
        ("MV/O point read (visitor `read_with`)", read_vis),
        ("MV/O scan x8 (materializing `scan_key`)", scan_mat),
        ("MV/O scan x8 (visitor `scan_key_with`)", scan_vis),
        ("1V point read (visitor `read_with`)", sv_read_vis),
        ("TxnTable lookup (`get`, Arc clone)", get_arc),
        ("TxnTable lookup (`get_in`, guard borrow)", get_borrow),
    ] {
        table.rows.push((label.to_string(), vec![value]));
    }
    table
}

/// **Range-scan microbenchmark** — the ordered-index companion of
/// [`readpath_perf`] (`BENCH_rangescan.json`). Single-threaded ns/op of
/// inclusive range scans over a skip-list-ordered primary-key index on a
/// warmed engine:
///
/// * MV/O short (8-key) and long (64-key) range scans through the visitor
///   API (`scan_range_with`, allocation-free steady state below
///   serializable) plus the materializing `scan_range` for contrast;
/// * whole serializable range-scan transactions on both MV schemes — MV/O
///   pays commit-time §4.3.2 revalidation of the scanned range, MV/L pays
///   range-lock registration and release;
/// * the 1V comparison: the single-version engine has no ordered structure,
///   so a range scan shared-locks the whole index and filters every row —
///   the baseline the skip list exists to beat (its iteration count is
///   scaled down so the O(rows) walks keep the experiment bounded).
pub fn rangescan_perf(cfg: &ExpConfig) -> SeriesTable {
    use mmdb_common::engine::EngineTxn as _;
    use mmdb_common::isolation::ConcurrencyMode;
    use mmdb_common::row::rowbuf;

    use crate::readpath::{
        warmed_ordered_mv_engine, warmed_ordered_sv_engine, KEY_STRIDE, ORDERED_INDEX,
    };

    let rows = cfg.rows.clamp(8_192, 262_144);
    let scan_iters = (cfg.duration.as_millis() as u64 * 40).clamp(4_000, 80_000);
    // Serializable transactions carry per-txn registration/validation work on
    // top of the scan; 1V walks the whole index per scan.
    let txn_iters = scan_iters / 4;
    let sv_iters = scan_iters.min((50_000_000 / rows).max(100));

    let mut table = SeriesTable {
        title: format!("Range scans: ns/op on a warmed ordered index ({rows} rows, single thread)"),
        x_label: "operation".into(),
        xs: vec!["ns/op".into()],
        rows: Vec::new(),
        unit: "nanoseconds per operation".into(),
    };

    let (engine, t) = warmed_ordered_mv_engine(ConcurrencyMode::Optimistic, rows);
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let scan_span = |txn: &mut mmdb_core::MvTransaction, key: &mut u64, span: u64| {
        *key = (key.wrapping_add(KEY_STRIDE)) % (rows - span);
        let mut sum = 0u64;
        txn.scan_range_with(t, ORDERED_INDEX, *key, *key + span - 1, &mut |row| {
            sum += rowbuf::key_of(row)
        })
        .expect("scan_range_with");
        std::hint::black_box(sum);
    };
    let mut key = 0u64;
    let short_vis = ns_per_op(scan_iters, || scan_span(&mut txn, &mut key, 8));
    let mut key = 1u64;
    let long_vis = ns_per_op(scan_iters / 4, || scan_span(&mut txn, &mut key, 64));
    let mut key = 2u64;
    let short_mat = ns_per_op(scan_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % (rows - 8);
        std::hint::black_box(
            txn.scan_range(t, ORDERED_INDEX, key, key + 7)
                .expect("scan_range")
                .len(),
        );
    });
    txn.abort();

    let mv_ser_txn = |mode: ConcurrencyMode| {
        let (engine, t) = warmed_ordered_mv_engine(mode, rows);
        let mut key = 0u64;
        ns_per_op(txn_iters, || {
            key = (key.wrapping_add(KEY_STRIDE)) % (rows - 8);
            let mut txn = engine.begin(IsolationLevel::Serializable);
            let mut sum = 0u64;
            txn.scan_range_with(t, ORDERED_INDEX, key, key + 7, &mut |row| {
                sum += rowbuf::key_of(row)
            })
            .expect("scan_range_with");
            std::hint::black_box(sum);
            txn.commit().expect("commit");
        })
    };
    let mvo_ser = mv_ser_txn(ConcurrencyMode::Optimistic);
    let mvl_ser = mv_ser_txn(ConcurrencyMode::Pessimistic);

    let (sv, t1) = warmed_ordered_sv_engine(rows, cfg.lock_timeout);
    let mut txn = sv.begin(IsolationLevel::ReadCommitted);
    let mut key = 0u64;
    let sv_scan = ns_per_op(sv_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % (rows - 8);
        let mut sum = 0u64;
        txn.scan_range_with(t1, ORDERED_INDEX, key, key + 7, &mut |row| {
            sum += rowbuf::key_of(row)
        })
        .expect("scan_range_with");
        std::hint::black_box(sum);
    });
    txn.abort();

    for (label, value) in [
        ("MV/O range x8 (visitor `scan_range_with`, RC)", short_vis),
        ("MV/O range x64 (visitor `scan_range_with`, RC)", long_vis),
        ("MV/O range x8 (materializing `scan_range`, RC)", short_mat),
        ("MV/O ser range txn x8 (scan+commit revalidate)", mvo_ser),
        ("MV/L ser range txn x8 (range lock + release)", mvl_ser),
        ("1V range x8 (full-index lock + filter walk, RC)", sv_scan),
    ] {
        table.rows.push((label.to_string(), vec![value]));
    }
    table
}

/// **Write-path microbenchmark** — the companion of [`readpath_perf`]
/// (`BENCH_writepath.json`). Single-threaded ns per *whole warmed write
/// transaction* on a populated engine:
///
/// * MV/O and MV/L single-row update transactions (begin → update → commit)
///   at snapshot isolation — the shape the allocation-free write path pins
///   (`crates/core/tests/alloc_free.rs`);
/// * an MV/O insert-then-delete transaction pair (version churn through the
///   cooperative garbage collector);
/// * the 1V update transaction for comparison (in-place update under
///   two-phase bucket locks).
pub fn writepath_perf(cfg: &ExpConfig) -> SeriesTable {
    use mmdb_common::engine::EngineTxn as _;
    use mmdb_common::ids::IndexId;
    use mmdb_common::isolation::ConcurrencyMode;

    use crate::writepath::{grouped_row, warmed_mv_engine_with, warmed_sv_engine, KEY_STRIDE};

    let rows = cfg.rows.clamp(8_192, 262_144);
    // A whole write transaction is ~two orders of magnitude more work than a
    // point read; scale the iteration counts down accordingly.
    let txn_iters = (cfg.duration.as_millis() as u64 * 20).clamp(2_000, 40_000);

    let mut table = SeriesTable {
        title: format!("Write path: ns/txn on a warmed engine ({rows} rows, single thread)"),
        x_label: "operation".into(),
        xs: vec!["ns/txn".into()],
        rows: Vec::new(),
        unit: "nanoseconds per committed write transaction".into(),
    };

    let mv_update = |mode: ConcurrencyMode| {
        let (engine, t) = warmed_mv_engine_with(mode, rows);
        let mut key = 0u64;
        ns_per_op(txn_iters, || {
            key = (key.wrapping_add(KEY_STRIDE)) % rows;
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            assert!(txn
                .update(t, IndexId(0), key, grouped_row(key))
                .expect("update"));
            txn.commit().expect("commit");
        })
    };
    let mvo_update = mv_update(ConcurrencyMode::Optimistic);
    let mvl_update = mv_update(ConcurrencyMode::Pessimistic);

    // Insert-then-delete: every iteration creates a fresh key above the
    // populated range, inserts it in one transaction and deletes it in the
    // next — steady-state version churn straight through the GC queue. The
    // loop commits two transactions, so halve the measured time to report
    // it in the table's per-transaction unit.
    let (engine, t) = warmed_mv_engine_with(ConcurrencyMode::Optimistic, rows);
    let mut k = 0u64;
    let mvo_insert_delete = ns_per_op(txn_iters / 2, || {
        k += 1;
        let key = rows + k;
        let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
        txn.insert(t, grouped_row(key)).expect("insert");
        txn.commit().expect("insert commit");
        let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
        assert!(txn.delete(t, IndexId(0), key).expect("delete"));
        txn.commit().expect("delete commit");
    }) / 2.0;

    let (sv, t1) = warmed_sv_engine(rows, cfg.lock_timeout);
    let mut key = 0u64;
    let sv_update = ns_per_op(txn_iters, || {
        key = (key.wrapping_add(KEY_STRIDE)) % rows;
        let mut txn = sv.begin(IsolationLevel::ReadCommitted);
        assert!(txn
            .update(t1, IndexId(0), key, grouped_row(key))
            .expect("update"));
        txn.commit().expect("commit");
    });

    // The per-operation table-lookup cost (every read/scan/write resolves
    // its table): the epoch-published catalog both ways — `table` clones an
    // `Arc`, `table_in` borrows under an epoch guard (the hot-path variant).
    let (engine, t) = warmed_mv_engine_with(ConcurrencyMode::Optimistic, rows);
    let lookup_iters = txn_iters * 50;
    let catalog_arc = ns_per_op(lookup_iters, || {
        std::hint::black_box(engine.store().table(t).expect("published").id());
    });
    let guard = crossbeam::epoch::pin();
    let catalog_borrow = ns_per_op(lookup_iters, || {
        std::hint::black_box(engine.store().table_in(t, &guard).expect("published").id());
    });
    drop(guard);

    for (label, value) in [
        ("MV/O update txn (begin→update→commit, SI)", mvo_update),
        ("MV/L update txn (begin→update→commit, SI)", mvl_update),
        (
            "MV/O insert+delete (ns/txn, avg over the pair, SI)",
            mvo_insert_delete,
        ),
        ("1V update txn (begin→update→commit, RC)", sv_update),
        ("Catalog table lookup (`table`, Arc clone)", catalog_arc),
        (
            "Catalog table lookup (`table_in`, guard borrow)",
            catalog_borrow,
        ),
    ] {
        table.rows.push((label.to_string(), vec![value]));
    }
    table
}

/// **Commit-durability benchmark** — the group-commit A/B
/// (`BENCH_groupcommit.json`). Committed single-row update transactions per
/// second on a warmed MV/O engine with a real redo log underneath, workers
/// on disjoint key ranges (the log is the only shared resource under test):
///
/// * **Sync, per-txn flush** — a plain `FileLogger`, whose default
///   `wait_durable` is one `write`+sync per committing transaction: the
///   conventional synchronous-commit baseline group commit is measured
///   against (the ≥2× acceptance bar of the multi-threaded column).
/// * **Sync, group commit** — a `GroupCommitLog`, tickless (the first
///   waiter becomes the leader and flushes for everyone queued) and with a
///   background tick (committers wait at most one tick; the flusher
///   hardens whole batches);
/// * **Async** — the paper's model (§5: transactions never wait for log
///   I/O) on both loggers, for the headline contrast.
pub fn commitpath_perf(cfg: &ExpConfig) -> SeriesTable {
    use std::sync::Arc;

    use mmdb_common::durability::Durability;
    use mmdb_storage::group_commit::GroupCommitLog;
    use mmdb_storage::log::FileLogger;

    use crate::commitpath::{commit_throughput, MakeLogger};

    // The contended resource is the log, not the table: a modest table keeps
    // populate time out of the measurement without changing what is measured.
    let rows = cfg.rows.clamp(4_096, 65_536);
    let tick = Duration::from_micros(200);
    // One single-threaded column (batching cannot help a lone Sync
    // committer — kept honest) and one at a group-commit-friendly
    // multiprogramming level.
    let thread_counts = vec![1usize, cfg.mpl.clamp(2, 8)];

    let mut table = SeriesTable {
        title: format!(
            "Commit path: committed update txns/s vs durability and log batching \
             ({rows} rows)"
        ),
        x_label: "threads".into(),
        xs: thread_counts.iter().map(|t| t.to_string()).collect(),
        rows: Vec::new(),
        unit: "committed transactions per second".into(),
    };

    let file_logger: MakeLogger<'_> =
        &|p| Arc::new(FileLogger::create(p).expect("create file logger"));
    let tickless: MakeLogger<'_> =
        &|p| Arc::new(GroupCommitLog::create(p).expect("create group-commit logger"));
    let ticked: MakeLogger<'_> =
        &|p| Arc::new(GroupCommitLog::with_tick(p, tick).expect("create group-commit logger"));

    let series: [(&str, Durability, MakeLogger<'_>); 5] = [
        (
            "Sync, per-txn flush (FileLogger)",
            Durability::Sync,
            file_logger,
        ),
        (
            "Sync, group commit (tickless leader)",
            Durability::Sync,
            tickless,
        ),
        ("Sync, group commit (200us tick)", Durability::Sync, ticked),
        (
            "Async, FileLogger (flush at end)",
            Durability::Async,
            file_logger,
        ),
        (
            "Async, group commit (200us tick)",
            Durability::Async,
            ticked,
        ),
    ];
    for (i, (label, durability, make)) in series.into_iter().enumerate() {
        let mut values = Vec::with_capacity(thread_counts.len());
        for &threads in &thread_counts {
            values.push(commit_throughput(
                &format!("s{i}-t{threads}"),
                rows,
                threads,
                cfg.duration,
                durability,
                make,
            ));
        }
        table.rows.push((label.to_string(), values));
    }
    table
}

/// **Recovery benchmark** — checkpoint + tail replay vs full log replay,
/// and delta chains vs full images (`BENCH_recovery.json`). The point of
/// the checkpoint subsystem is to bound restart time: without one,
/// recovery replays the whole redo history; with one, it bulk-loads the
/// last image and replays only the tail above the checkpoint LSN. This
/// experiment runs one deterministic update-heavy history twice — once
/// into a store that never checkpoints and once into a store that
/// checkpoints every 1/12th of the final log (so the log is ≥ 10× the
/// checkpoint interval) — then times recovery of each directory into a
/// fresh engine and cross-checks that both recovered states agree.
///
/// A second A/B targets the *writing* side: a hot-set history (all updates
/// confined to 5% of the rows, the regime delta checkpoints exist for)
/// runs once under full images and once under a delta chain
/// (`CheckpointPolicy::delta`, chain bound 16). Steady-state checkpoint
/// bytes must drop at least 5× (asserted — this is the CI smoke guard
/// against checkpoint-write regressions) and recovery from
/// base + deltas + tail is timed against the full-image directory; both
/// land in the committed JSON. Recovery itself runs the partitioned
/// loader, so the delta rows also measure chain-apply + parallel-replay
/// cost. Timings here are single-process wall clock — see EXPERIMENTS.md
/// for the single-core caveat.
pub fn recovery_perf(cfg: &ExpConfig) -> SeriesTable {
    use std::sync::Arc;
    use std::time::Instant;

    use mmdb_common::durability::CheckpointPolicy;
    use mmdb_common::engine::EngineTxn as _;
    use mmdb_common::ids::IndexId;
    use mmdb_common::row::{rowbuf, TableSpec};
    use mmdb_storage::checkpoint::CheckpointStore;
    use mmdb_storage::log::{NullLogger, RedoLogger as _};

    const FILLER: usize = 16;
    let rows = cfg.rows.clamp(2_000, 20_000);
    let updates = (cfg.duration.as_millis() as u64 * 200).clamp(10_000, 400_000);
    let lcg = |x: u64| {
        x.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    };
    let spec = || TableSpec::keyed_u64("recovery", rows as usize);
    let dir_for = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("mmdb-bench-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };

    // The same seeded history into a checkpoint store; `policy` None = never
    // checkpoint (the full-replay baseline), and `hot` confines updates to
    // the first `hot` keys (the delta-checkpoint regime). Returns the number
    // of checkpoints taken, the total bytes appended to the log stream and
    // the total checkpoint-image bytes written.
    let run = |dir: &std::path::Path,
               policy: Option<CheckpointPolicy>,
               hot: Option<u64>|
     -> (usize, u64, u64) {
        let store = CheckpointStore::create(dir).expect("create checkpoint store");
        let engine = mmdb_core::MvEngine::with_logger(
            mmdb_core::MvConfig::optimistic().with_deadlock_detector(false),
            store.logger().clone(),
        );
        let table = engine.create_table(spec()).expect("create table");
        let mut setup = engine.begin(IsolationLevel::ReadCommitted);
        for k in 0..rows {
            setup
                .insert(table, rowbuf::keyed_row(k, FILLER, 1))
                .expect("populate");
        }
        setup.commit().expect("populate commit");
        let span = hot.unwrap_or(rows).max(1);
        let mut checkpoints = 0usize;
        let mut x = 0x5EEDu64;
        for _ in 0..updates {
            x = lcg(x);
            let k = (x >> 33) % span;
            let fill = (x % 7 + 1) as u8;
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            assert!(txn
                .update(table, IndexId(0), k, rowbuf::keyed_row(k, FILLER, fill))
                .expect("update"));
            txn.commit().expect("commit");
            if let Some(policy) = &policy {
                if store.checkpoint_due(policy) {
                    engine.checkpoint_auto(&store, policy).expect("checkpoint");
                    checkpoints += 1;
                }
            }
        }
        store.logger().flush().expect("flush");
        (
            checkpoints,
            store.logger().appended_lsn().0,
            store.checkpoint_bytes_written(),
        )
    };

    // Timed recovery of a store directory into a fresh engine. Returns
    // (elapsed ms, records replayed, bytes read, recovered-state dump).
    let recover = |dir: &std::path::Path| -> (f64, usize, u64, Vec<(u64, u8)>) {
        let plan = CheckpointStore::plan(dir).expect("recovery plan");
        let engine = mmdb_core::MvEngine::with_logger(
            mmdb_core::MvConfig::optimistic().with_deadlock_detector(false),
            Arc::new(NullLogger::new()),
        );
        let table = engine.create_table(spec()).expect("create table");
        let start = Instant::now();
        let report = engine.recover_from_checkpoint(&plan).expect("recover");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let image_bytes: u64 = plan
            .chain
            .iter()
            .map(|c| std::fs::metadata(&c.path).expect("image metadata").len())
            .sum();
        let bytes_read = image_bytes + (report.valid_bytes - plan.log_tail_offset());
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        let mut state = Vec::with_capacity(rows as usize);
        for k in 0..rows {
            if let Some(row) = txn.read(table, IndexId(0), k).expect("read") {
                state.push((k, rowbuf::fill_of(&row)));
            }
        }
        txn.commit().expect("verify commit");
        (ms, report.records_applied, bytes_read, state)
    };
    // Timings on shared hardware are noisy; everything but the elapsed time
    // is deterministic, so take the fastest of three recoveries.
    let recover = |dir: &std::path::Path| -> (f64, usize, u64, Vec<(u64, u8)>) {
        let (mut best_ms, records, bytes, state) = recover(dir);
        for _ in 0..2 {
            best_ms = best_ms.min(recover(dir).0);
        }
        (best_ms, records, bytes, state)
    };

    let full_dir = dir_for("full");
    let (_, total_bytes, _) = run(&full_dir, None, None);
    let interval = (total_bytes / 12).max(1);
    let ckpt_dir = dir_for("ckpt");
    let (checkpoints, _, ckpt_written) = run(
        &ckpt_dir,
        Some(CheckpointPolicy::every_log_bytes(interval)),
        None,
    );

    let (full_ms, full_records, full_bytes, full_state) = recover(&full_dir);
    let (ckpt_ms, ckpt_records, ckpt_bytes, ckpt_state) = recover(&ckpt_dir);
    assert_eq!(
        full_state, ckpt_state,
        "full replay and checkpoint + tail must recover the same state"
    );
    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Delta A/B: the same hot-set history (≤ 5 % of the rows ever touched
    // after load) once under full images and once under a delta chain. The
    // log streams are byte-identical, so one interval drives both runs to
    // the same checkpoint cadence; only the image format differs.
    let hot = (rows / 20).max(1);
    let hot_full_dir = dir_for("hot-full");
    let (hot_checkpoints, _, hot_full_written) = run(
        &hot_full_dir,
        Some(CheckpointPolicy::every_log_bytes(interval)),
        Some(hot),
    );
    let delta_dir = dir_for("hot-delta");
    let (_, _, delta_written) = run(
        &delta_dir,
        Some(CheckpointPolicy::delta(interval, 16)),
        Some(hot),
    );
    let delta_chain = CheckpointStore::plan(&delta_dir)
        .expect("delta recovery plan")
        .chain
        .len();

    let (hot_full_ms, hot_full_records, hot_full_bytes, hot_full_state) = recover(&hot_full_dir);
    let (delta_ms, delta_records, delta_bytes, delta_state) = recover(&delta_dir);
    assert_eq!(
        hot_full_state, delta_state,
        "full images and delta chain must recover the same state"
    );
    assert!(
        hot_checkpoints == 0 || delta_written * 5 <= hot_full_written,
        "delta checkpoints must write ≥ 5x fewer bytes than full images on a hot-set \
         workload (delta {delta_written} B vs full {hot_full_written} B)"
    );
    let _ = std::fs::remove_dir_all(&hot_full_dir);
    let _ = std::fs::remove_dir_all(&delta_dir);

    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { f64::NAN };
    SeriesTable {
        title: format!(
            "Recovery: full log replay vs checkpoint + tail, full images vs delta chain \
             ({rows} rows, {updates} update txns, {checkpoints} checkpoints, interval {} KiB, \
             hot set {hot} rows, final chain {delta_chain} images)",
            interval / 1024
        ),
        x_label: "metric".into(),
        xs: vec![
            "recovery ms".into(),
            "MiB read".into(),
            "records replayed".into(),
            "ckpt MiB written".into(),
        ],
        rows: vec![
            (
                "Full log replay (no checkpoint)".to_string(),
                vec![full_ms, mib(full_bytes), full_records as f64, 0.0],
            ),
            (
                "Checkpoint + tail replay".to_string(),
                vec![
                    ckpt_ms,
                    mib(ckpt_bytes),
                    ckpt_records as f64,
                    mib(ckpt_written),
                ],
            ),
            (
                "Speedup (full / checkpoint+tail)".to_string(),
                vec![
                    ratio(full_ms, ckpt_ms),
                    ratio(mib(full_bytes), mib(ckpt_bytes)),
                    ratio(full_records as f64, ckpt_records as f64),
                    0.0,
                ],
            ),
            (
                "Hot set, full images".to_string(),
                vec![
                    hot_full_ms,
                    mib(hot_full_bytes),
                    hot_full_records as f64,
                    mib(hot_full_written),
                ],
            ),
            (
                "Hot set, delta chain".to_string(),
                vec![
                    delta_ms,
                    mib(delta_bytes),
                    delta_records as f64,
                    mib(delta_written),
                ],
            ),
            (
                "Delta savings (full / delta)".to_string(),
                vec![
                    ratio(hot_full_ms, delta_ms),
                    ratio(mib(hot_full_bytes), mib(delta_bytes)),
                    ratio(hot_full_records as f64, delta_records as f64),
                    ratio(mib(hot_full_written), mib(delta_written)),
                ],
            ),
        ],
        unit: "milliseconds / MiB / record counts (ratio rows are ratios)".into(),
    }
}

/// **Adaptive-CC experiment** — the Figure 4 → Figure 5 contention axis,
/// made continuous (`BENCH_adaptive.json`). The paper picks a scheme up
/// front and shows each one losing somewhere; this experiment sweeps the
/// fraction of traffic aimed at a small hotspot and runs the two static MV
/// schemes against the adaptive mode (`MV/A`), which starts optimistic and
/// switches per transaction once its contention monitor's decayed
/// conflict-rate score crosses the hysteresis thresholds. Serializable
/// isolation, where the schemes genuinely diverge: MV/O pays validation
/// aborts on a hot read-write set, MV/L pays read locks and waits. The
/// companion abort-rate series show the mechanism: adaptive tracks MV/O's
/// near-zero abort rate at the uniform end and MV/L's wait-based profile at
/// the hotspot end.
pub fn adaptive_perf(cfg: &ExpConfig) -> SeriesTable {
    let fractions = [0.0, 0.25, 0.5, 0.75, 0.9];
    let hot_keys = cfg.hot_rows.clamp(8, 100);
    let mut table = SeriesTable {
        title: format!(
            "Adaptive CC: throughput along the fig4→fig5 contention axis \
             ({} rows, {hot_keys}-key hotspot, serializable, MPL {})",
            cfg.rows, cfg.mpl
        ),
        x_label: "hotspot access fraction".into(),
        xs: fractions.iter().map(|f| format!("{f:.2}")).collect(),
        rows: Vec::new(),
        unit: "committed transactions / second (and abort rate per scheme)".into(),
    };
    let schemes = [Scheme::MvO, Scheme::MvL, Scheme::Adaptive];
    const REPS: usize = 13;
    let mut series = vec![Vec::with_capacity(fractions.len()); schemes.len()];
    let mut aborts = vec![Vec::with_capacity(fractions.len()); schemes.len()];
    // All three schemes are MvEngine variants, so one x-point holds all
    // three engines at once and interleaves their measurement intervals
    // round-robin: background interference (another tenant on the host, a
    // slow scheduling phase) then hits every scheme about equally instead
    // of biasing whichever sweep it coincided with. The per-scheme result
    // is the median interval — robust against the outliers such phases
    // still produce.
    for &fraction in &fractions {
        let workload = Homogeneous {
            rows: cfg.rows,
            isolation: IsolationLevel::Serializable,
            hot_keys,
            hot_fraction: fraction,
            ..Default::default()
        };
        let engines: Vec<mmdb_core::MvEngine> = schemes
            .iter()
            .map(|s| {
                let config = mmdb_core::MvConfig::default().with_wait_timeout(cfg.lock_timeout);
                match s {
                    Scheme::MvO => mmdb_core::MvEngine::optimistic(config),
                    Scheme::MvL => mmdb_core::MvEngine::pessimistic(config),
                    Scheme::Adaptive => mmdb_core::MvEngine::adaptive(config),
                    Scheme::OneV => unreachable!("1V is not part of the adaptive sweep"),
                }
            })
            .collect();
        let tables: Vec<_> = engines
            .iter()
            .map(|e| workload.setup(e).expect("setup adaptive workload"))
            .collect();
        // One unmeasured interval per engine faults in the fresh table and
        // (for MV/A) lets the contention EWMA reach steady state.
        for (engine, &t) in engines.iter().zip(&tables) {
            run_for(engine, cfg.mpl, cfg.duration / 4, |e, rng, _| {
                workload.run_one(e, t, rng)
            });
        }
        let mut samples = vec![Vec::with_capacity(REPS); schemes.len()];
        for _ in 0..REPS {
            for (s, (engine, &t)) in engines.iter().zip(&tables).enumerate() {
                let report = run_for(engine, cfg.mpl, cfg.duration, |e, rng, _| {
                    workload.run_one(e, t, rng)
                });
                samples[s].push((report.tps(), report.abort_rate()));
                // Drain garbage between intervals so version-chain growth
                // over the engine's lifetime doesn't skew later intervals.
                while engine.collect_garbage() > 0 {}
            }
        }
        for (s, mut reps) in samples.into_iter().enumerate() {
            // Upper quartile, not median: throughput noise on a shared host
            // is one-sided (interference only ever slows an interval down),
            // so a high quantile estimates the undisturbed rate while still
            // discarding the implausibly lucky top interval.
            reps.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (tps, abort_rate) = reps[(reps.len() * 3) / 4];
            series[s].push(tps);
            aborts[s].push(abort_rate);
        }
    }
    for (s, scheme) in schemes.iter().enumerate() {
        table
            .rows
            .push((scheme.label().to_string(), std::mem::take(&mut series[s])));
    }
    for (s, scheme) in schemes.iter().enumerate() {
        table.rows.push((
            format!("{} abort rate", scheme.label()),
            std::mem::take(&mut aborts[s]),
        ));
    }
    table
}

/// Run every experiment and return the rendered tables in paper order, with
/// the read- and write-path microbenchmarks appended.
pub fn run_all(cfg: &ExpConfig) -> Vec<SeriesTable> {
    let mut out = vec![fig4(cfg), fig5(cfg), table3(cfg), fig6(cfg), fig7(cfg)];
    let (f8, f9) = fig8_and_fig9(cfg);
    out.push(f8);
    out.push(f9);
    out.push(table4(cfg));
    out.push(smallbank_perf(cfg));
    out.push(tpcc_perf(cfg));
    out.push(ablation_validation_cost(cfg));
    out.push(ablation_gc(cfg));
    out.push(readpath_perf(cfg));
    out.push(rangescan_perf(cfg));
    out.push(writepath_perf(cfg));
    out.push(commitpath_perf(cfg));
    out.push(recovery_perf(cfg));
    out.push(adaptive_perf(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            rows: 2_000,
            hot_rows: 200,
            threads: vec![1, 2],
            mpl: 2,
            duration: Duration::from_millis(80),
            subscribers: 300,
            lock_timeout: Duration::from_millis(50),
        }
    }

    #[test]
    fn fig4_produces_throughput_and_abort_series() {
        let table = fig4(&tiny());
        // Four throughput series plus four abort-rate companions.
        assert_eq!(table.rows.len(), 8);
        assert_eq!(table.xs.len(), 2);
        for (label, series) in &table.rows {
            if label.ends_with("abort rate") {
                assert!(
                    series.iter().all(|&v| (0.0..=1.0).contains(&v)),
                    "abort rates are fractions: {table:?}"
                );
            } else {
                assert!(
                    series.iter().all(|&v| v > 0.0),
                    "every scheme commits something: {table:?}"
                );
            }
        }
        let md = table.to_markdown();
        assert!(md.contains("| 1V |") && md.contains("| MV/O |") && md.contains("| MV/L |"));
        assert!(md.contains("| MV/A |"));
        assert!(md.contains("| MV/O abort rate |"));
    }

    #[test]
    fn table3_reports_drops_and_abort_rates() {
        let t = table3(&tiny());
        assert_eq!(t.xs.len(), 8);
        for (_, series) in &t.rows {
            assert_eq!(series.len(), 8);
        }
        assert!(t.value("MV/O", 0).unwrap() > 0.0);
        // Abort-rate columns are fractions.
        for scheme in ["1V", "MV/O", "MV/L", "MV/A"] {
            for col in [1, 4, 7] {
                let v = t.value(scheme, col).unwrap();
                assert!((0.0..=1.0).contains(&v), "{scheme} col {col}: {v}");
            }
        }
    }

    #[test]
    fn long_reader_experiment_reports_both_series() {
        let (f8, f9) = fig8_and_fig9(&tiny());
        assert_eq!(f8.rows.len(), 4);
        assert_eq!(f9.rows.len(), 4);
        // With zero long readers there is no long-read throughput.
        for (_, series) in &f9.rows {
            assert_eq!(series[0], 0.0);
        }
    }

    #[test]
    fn readpath_perf_reports_every_series() {
        let t = readpath_perf(&tiny());
        assert_eq!(t.xs, vec!["ns/op".to_string()]);
        assert_eq!(t.rows.len(), 7);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 1);
            assert!(
                series[0].is_finite() && series[0] > 0.0,
                "{label}: ns/op must be positive: {t:?}"
            );
        }
        // The lock-free borrow can never be slower than clone-the-Arc by an
        // order of magnitude (sanity, not a perf assertion).
        let arc = t.value("TxnTable lookup (`get`, Arc clone)", 0).unwrap();
        let borrow = t
            .value("TxnTable lookup (`get_in`, guard borrow)", 0)
            .unwrap();
        assert!(borrow < arc * 10.0, "get_in {borrow} vs get {arc}");
    }

    #[test]
    fn rangescan_perf_reports_every_series() {
        let t = rangescan_perf(&tiny());
        assert_eq!(t.xs, vec!["ns/op".to_string()]);
        assert_eq!(t.rows.len(), 6);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 1);
            assert!(
                series[0].is_finite() && series[0] > 0.0,
                "{label}: ns/op must be positive: {t:?}"
            );
        }
        // Sanity, not a perf assertion: a 64-key scan does more work than an
        // 8-key scan, but never hundreds of times more (it would mean the
        // skip-list cursor restarted from the head per visited key).
        let short = t
            .value("MV/O range x8 (visitor `scan_range_with`, RC)", 0)
            .unwrap();
        let long = t
            .value("MV/O range x64 (visitor `scan_range_with`, RC)", 0)
            .unwrap();
        assert!(long < short * 100.0, "x64 {long} vs x8 {short}");
    }

    #[test]
    fn writepath_perf_reports_every_series() {
        let t = writepath_perf(&tiny());
        assert_eq!(t.xs, vec!["ns/txn".to_string()]);
        assert_eq!(t.rows.len(), 6);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 1);
            assert!(
                series[0].is_finite() && series[0] > 0.0,
                "{label}: ns/txn must be positive: {t:?}"
            );
        }
        // The lock-free borrow can never be slower than clone-the-Arc by an
        // order of magnitude (sanity, not a perf assertion).
        let arc = t
            .value("Catalog table lookup (`table`, Arc clone)", 0)
            .unwrap();
        let borrow = t
            .value("Catalog table lookup (`table_in`, guard borrow)", 0)
            .unwrap();
        assert!(borrow < arc * 10.0, "table_in {borrow} vs table {arc}");
    }

    #[test]
    fn commitpath_perf_reports_every_series() {
        let t = commitpath_perf(&tiny());
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.xs.len(), 2);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 2);
            for v in series {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "{label}: txns/s must be positive: {t:?}"
                );
            }
        }
        // Sanity, not a perf assertion: an Async commit never syncs, so it
        // cannot be slower than the per-transaction-flush Sync baseline by
        // an order of magnitude.
        let sync_per_txn = t.value("Sync, per-txn flush (FileLogger)", 0).unwrap();
        let async_gc = t.value("Async, group commit (200us tick)", 0).unwrap();
        assert!(
            async_gc * 10.0 > sync_per_txn,
            "async {async_gc} vs per-txn-flush sync {sync_per_txn}"
        );
    }

    #[test]
    fn recovery_perf_reports_every_series() {
        let t = recovery_perf(&tiny());
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.xs.len(), 4);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 4);
            for v in series {
                assert!(
                    v.is_finite() && *v >= 0.0,
                    "{label}: every metric must be finite and non-negative: {t:?}"
                );
            }
        }
        // Deterministic, not timing-dependent: the checkpointed store reads
        // strictly fewer bytes and replays strictly fewer records than the
        // full-replay baseline (same history, log >= 10x the interval).
        let full_mib = t.value("Full log replay (no checkpoint)", 1).unwrap();
        let ckpt_mib = t.value("Checkpoint + tail replay", 1).unwrap();
        assert!(
            ckpt_mib < full_mib,
            "ckpt {ckpt_mib} MiB vs full {full_mib} MiB"
        );
        let full_rec = t.value("Full log replay (no checkpoint)", 2).unwrap();
        let ckpt_rec = t.value("Checkpoint + tail replay", 2).unwrap();
        assert!(
            ckpt_rec < full_rec,
            "ckpt {ckpt_rec} records vs full {full_rec}"
        );
        // The headline delta claim (the >= 5x floor is asserted inside the
        // experiment itself); here just pin that the savings row is a real
        // ratio above 1.
        let savings = t.value("Delta savings (full / delta)", 3).unwrap();
        assert!(
            savings >= 5.0,
            "delta chain must write >= 5x fewer checkpoint bytes: {savings}"
        );
    }

    #[test]
    fn adaptive_perf_reports_all_three_mv_series() {
        let t = adaptive_perf(&tiny());
        // MV/O, MV/L, MV/A throughput plus their abort-rate companions.
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.xs.len(), 5);
        for (label, series) in &t.rows {
            assert_eq!(series.len(), 5);
            if label.ends_with("abort rate") {
                assert!(
                    series.iter().all(|&v| (0.0..=1.0).contains(&v)),
                    "abort rates are fractions: {t:?}"
                );
            } else {
                assert!(
                    series.iter().all(|&v| v > 0.0),
                    "every scheme commits something at every point: {t:?}"
                );
            }
        }
        assert!(t.value("MV/A", 0).is_some());
        assert!(t.value("MV/A abort rate", 4).is_some());
    }

    #[test]
    fn smallbank_perf_reports_all_schemes_and_both_variants() {
        let t = smallbank_perf(&tiny());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(
            t.xs,
            vec![
                "uniform tx/s".to_string(),
                "uniform abort rate".to_string(),
                "hotspot tx/s".to_string(),
                "hotspot abort rate".to_string(),
            ]
        );
        for scheme in ["1V", "MV/L", "MV/O", "MV/A"] {
            for (col, is_rate) in [(0, false), (1, true), (2, false), (3, true)] {
                let v = t.value(scheme, col).unwrap();
                if is_rate {
                    assert!((0.0..=1.0).contains(&v), "{scheme} col {col}: {v}");
                } else {
                    assert!(v > 0.0, "{scheme} must commit SmallBank txns: {t:?}");
                }
            }
        }
    }

    #[test]
    fn tpcc_perf_reports_all_schemes() {
        let t = tpcc_perf(&tiny());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.xs.len(), 3);
        for scheme in ["1V", "MV/L", "MV/O", "MV/A"] {
            let total = t.value(scheme, 0).unwrap();
            let new_order = t.value(scheme, 1).unwrap();
            let abort_rate = t.value(scheme, 2).unwrap();
            assert!(total > 0.0, "{scheme} must commit TPC-C-lite txns: {t:?}");
            assert!(
                new_order > 0.0 && new_order <= total,
                "{scheme}: new-order rate {new_order} must be a positive part of {total}"
            );
            assert!((0.0..=1.0).contains(&abort_rate), "{scheme}: {abort_rate}");
        }
    }

    #[test]
    fn table4_runs_tatp_on_all_schemes() {
        let t = table4(&tiny());
        assert_eq!(t.rows.len(), 4);
        for (_, series) in &t.rows {
            assert!(series[0] > 0.0, "TATP throughput must be positive: {t:?}");
            assert!(series[1] < 0.5, "TATP abort rate should be small: {t:?}");
        }
    }
}
