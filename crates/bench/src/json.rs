//! Minimal machine-readable JSON emission for experiment results.
//!
//! The offline build has no `serde`, so this module hand-rolls exactly the
//! document the perf trajectory needs: the experiment configuration plus
//! every produced [`SeriesTable`]. The
//! schema is versioned so later PRs can evolve it without breaking
//! consumers of the committed `BENCH_*.json` files.

use crate::experiments::{ExpConfig, SeriesTable};

/// Schema identifier written into every document.
pub const SCHEMA: &str = "mmdb-bench/series-tables/v1";

/// Escape a string for inclusion in a JSON document.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float as a JSON number (`null` for non-finite values).
fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn table_into(out: &mut String, table: &SeriesTable) {
    out.push_str("{\"title\":");
    escape_into(out, &table.title);
    out.push_str(",\"x_label\":");
    escape_into(out, &table.x_label);
    out.push_str(",\"unit\":");
    escape_into(out, &table.unit);
    out.push_str(",\"xs\":[");
    for (i, x) in table.xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, x);
    }
    out.push_str("],\"series\":[");
    for (i, (label, values)) in table.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape_into(out, label);
        out.push_str(",\"values\":[");
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            number_into(out, *v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Render the configuration and result tables as one JSON document.
pub fn tables_to_json(cfg: &ExpConfig, tables: &[SeriesTable]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    escape_into(&mut out, SCHEMA);
    out.push_str(",\"config\":{");
    out.push_str(&format!(
        "\"rows\":{},\"hot_rows\":{},\"mpl\":{},\"duration_ms\":{},\"subscribers\":{},\
         \"lock_timeout_ms\":{},\"threads\":[{}]",
        cfg.rows,
        cfg.hot_rows,
        cfg.mpl,
        cfg.duration.as_millis(),
        cfg.subscribers,
        cfg.lock_timeout.as_millis(),
        cfg.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    out.push_str("},\"tables\":[");
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        table_into(&mut out, table);
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn document_shape_and_escaping() {
        let cfg = ExpConfig {
            rows: 10,
            hot_rows: 2,
            threads: vec![1, 2],
            mpl: 2,
            duration: Duration::from_millis(50),
            subscribers: 5,
            lock_timeout: Duration::from_millis(20),
        };
        let table = SeriesTable {
            title: "a \"quoted\"\ntitle".into(),
            x_label: "x".into(),
            xs: vec!["1".into()],
            rows: vec![("s1".into(), vec![1.5]), ("s2".into(), vec![f64::NAN])],
            unit: "u".into(),
        };
        let json = tables_to_json(&cfg, &[table]);
        assert!(json.starts_with("{\"schema\":\"mmdb-bench/series-tables/v1\""));
        assert!(json.contains("\"rows\":10"));
        assert!(json.contains("\"threads\":[1,2]"));
        assert!(json.contains("a \\\"quoted\\\"\\ntitle"));
        assert!(json.contains("\"values\":[1.5]"));
        assert!(json.contains("\"values\":[null]"), "NaN must become null");
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
