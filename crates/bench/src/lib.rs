//! # mmdb-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5). The `repro` binary drives the functions in
//! [`experiments`]; the Criterion benchmarks under `benches/` exercise the
//! same code paths at micro scale.
//!
//! All experiments compare the three concurrency-control schemes the paper
//! evaluates: single-version locking (**1V**), pessimistic multiversioning
//! (**MV/L**) and optimistic multiversioning (**MV/O**).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commitpath;
pub mod experiments;
pub mod json;
pub mod readpath;
pub mod scheme;
pub mod writepath;

pub use experiments::ExpConfig;
pub use scheme::Scheme;
