//! Shared fixture for the read-path measurements: the `repro perf`
//! experiment ([`crate::experiments::readpath_perf`], recorded into
//! `BENCH_readpath.json`) and the criterion bench
//! (`benches/readpath.rs`) measure *the same operations*, so the row
//! layout, table spec, warmed engines and key strides live here once.

use std::time::Duration;

use mmdb_common::engine::Engine as _;
use mmdb_common::ids::{TableId, Timestamp, TxnId};
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
use mmdb_core::{MvConfig, MvEngine};
use mmdb_onev::{SvConfig, SvEngine};
use mmdb_storage::txn_table::{TxnHandle, TxnTable};

/// The row layout itself lives in `mmdb-common` (`rowbuf::grouped_row`) so
/// the zero-allocation regression test in `mmdb-core` asserts exactly the
/// shape these measurements run.
pub use mmdb_common::row::rowbuf::{grouped_row, grouped_spec, GROUP_SIZE};

/// Point-read key stride (odd, well-mixed walk over the keyspace).
pub const KEY_STRIDE: u64 = 0x9E3779B9;

/// Scan group stride.
pub const GROUP_STRIDE: u64 = 0x9E37;

/// Transactions registered in the [`TxnTable`] lookup fixture.
pub const TXN_TABLE_ENTRIES: u64 = 64;

/// An MV/O engine populated with `rows` grouped rows.
pub fn warmed_mv_engine(rows: u64) -> (MvEngine, TableId) {
    let engine = MvEngine::optimistic(MvConfig::default());
    let table = engine
        .create_table(grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");
    (engine, table)
}

/// A 1V engine populated with `rows` grouped rows.
pub fn warmed_sv_engine(rows: u64, lock_timeout: Duration) -> (SvEngine, TableId) {
    let engine = SvEngine::new(SvConfig::default().with_lock_timeout(lock_timeout));
    let table = engine
        .create_table(grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");
    (engine, table)
}

/// Index id of the ordered primary-key index in the `*_ordered_*` fixtures
/// (0 is the hash primary, 1 the grouped secondary).
pub const ORDERED_INDEX: mmdb_common::ids::IndexId = mmdb_common::ids::IndexId(2);

/// The grouped spec plus an ordered index over the primary key — the
/// range-scan fixture (`repro perf-range`, `BENCH_rangescan.json`).
pub fn ordered_grouped_spec(rows: u64) -> mmdb_common::row::TableSpec {
    grouped_spec(rows).with_index(mmdb_common::row::IndexSpec::ordered_u64("pk_ordered", 0))
}

/// An MV engine of either scheme populated with `rows` grouped rows on the
/// ordered-indexed spec.
pub fn warmed_ordered_mv_engine(mode: ConcurrencyMode, rows: u64) -> (MvEngine, TableId) {
    let engine = match mode {
        ConcurrencyMode::Optimistic => MvEngine::optimistic(MvConfig::default()),
        ConcurrencyMode::Pessimistic => MvEngine::pessimistic(MvConfig::default()),
    };
    let table = engine
        .create_table(ordered_grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");
    (engine, table)
}

/// A 1V engine populated with `rows` grouped rows on the ordered-indexed
/// spec.
pub fn warmed_ordered_sv_engine(rows: u64, lock_timeout: Duration) -> (SvEngine, TableId) {
    let engine = SvEngine::new(SvConfig::default().with_lock_timeout(lock_timeout));
    let table = engine
        .create_table(ordered_grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");
    (engine, table)
}

/// A transaction table holding [`TXN_TABLE_ENTRIES`] registered handles
/// (ids `1..=TXN_TABLE_ENTRIES`) — the §2.5 visibility-lookup fixture.
pub fn registered_txn_table() -> TxnTable {
    let txns = TxnTable::new();
    for id in 1..=TXN_TABLE_ENTRIES {
        txns.register(TxnHandle::new(
            TxnId(id),
            Timestamp(id),
            ConcurrencyMode::Optimistic,
            IsolationLevel::Serializable,
        ));
    }
    txns
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::row::rowbuf;

    #[test]
    fn fixture_shapes() {
        let row = grouped_row(17);
        assert_eq!(rowbuf::key_of(&row), 17);
        assert_eq!(row.len(), 24);
        let (engine, table) = warmed_mv_engine(64);
        assert_eq!(engine.version_count(table).unwrap(), 64);
        let txns = registered_txn_table();
        assert_eq!(txns.len(), TXN_TABLE_ENTRIES as usize);
    }
}
