//! The concurrency-control schemes under comparison — the paper's three
//! static ones plus this reproduction's contention-adaptive mode — and a
//! small dispatch helper so experiments can be written once against the
//! generic [`Engine`](mmdb_common::engine::Engine) trait.

use std::time::Duration;

use mmdb_core::{MvConfig, MvEngine};
use mmdb_onev::{SvConfig, SvEngine};

/// One of the paper's three concurrency-control schemes, or the adaptive
/// mode that picks MV/O vs MV/L per transaction from live conflict
/// telemetry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Single-version locking (the baseline, "1V").
    OneV,
    /// Multiversion pessimistic locking ("MV/L").
    MvL,
    /// Multiversion optimistic validation ("MV/O").
    MvO,
    /// Contention-adaptive multiversion mode ("MV/A"): each transaction runs
    /// MV/O or MV/L depending on the engine's contention monitor. Not in the
    /// paper — the first capability of this reproduction beyond it.
    Adaptive,
}

impl Scheme {
    /// The paper's three schemes in the order it reports them, followed by
    /// the adaptive mode.
    pub const ALL: [Scheme; 4] = [Scheme::OneV, Scheme::MvL, Scheme::MvO, Scheme::Adaptive];

    /// Display label used in the result tables.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::OneV => "1V",
            Scheme::MvL => "MV/L",
            Scheme::MvO => "MV/O",
            Scheme::Adaptive => "MV/A",
        }
    }

    /// Run `f` with a freshly constructed engine of this scheme.
    ///
    /// Engines are created per measurement point so that every data point
    /// starts from an identical, unfragmented database.
    pub fn with_engine<R>(
        self,
        lock_timeout: Duration,
        f: impl FnOnce(&dyn ErasedFactory) -> R,
    ) -> R {
        match self {
            Scheme::OneV => {
                let engine = SvEngine::new(SvConfig::default().with_lock_timeout(lock_timeout));
                f(&SvFactory(engine))
            }
            Scheme::MvL => {
                let engine =
                    MvEngine::pessimistic(MvConfig::default().with_wait_timeout(lock_timeout));
                f(&MvFactory(engine))
            }
            Scheme::MvO => {
                let engine =
                    MvEngine::optimistic(MvConfig::default().with_wait_timeout(lock_timeout));
                f(&MvFactory(engine))
            }
            Scheme::Adaptive => {
                let engine =
                    MvEngine::adaptive(MvConfig::default().with_wait_timeout(lock_timeout));
                f(&MvFactory(engine))
            }
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Object-safe access to a concrete engine. Experiments downcast to the
/// concrete type through the two accessors; exactly one of them returns
/// `Some`.
pub trait ErasedFactory {
    /// The multiversion engine, if this scheme is MV/O or MV/L.
    fn mv(&self) -> Option<&MvEngine>;
    /// The single-version engine, if this scheme is 1V.
    fn sv(&self) -> Option<&SvEngine>;
}

struct MvFactory(MvEngine);
struct SvFactory(SvEngine);

impl ErasedFactory for MvFactory {
    fn mv(&self) -> Option<&MvEngine> {
        Some(&self.0)
    }
    fn sv(&self) -> Option<&SvEngine> {
        None
    }
}

impl ErasedFactory for SvFactory {
    fn mv(&self) -> Option<&MvEngine> {
        None
    }
    fn sv(&self) -> Option<&SvEngine> {
        Some(&self.0)
    }
}

/// Dispatch a generic experiment body over whichever engine the factory
/// holds. `body` is written once, generically over `Engine`.
#[macro_export]
macro_rules! dispatch_engine {
    ($factory:expr, |$engine:ident| $body:expr) => {
        if let Some($engine) = $factory.mv() {
            $body
        } else if let Some($engine) = $factory.sv() {
            $body
        } else {
            unreachable!("factory holds exactly one engine")
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::engine::Engine;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Scheme::OneV.label(), "1V");
        assert_eq!(Scheme::MvL.label(), "MV/L");
        assert_eq!(Scheme::MvO.label(), "MV/O");
        assert_eq!(Scheme::Adaptive.label(), "MV/A");
        assert_eq!(Scheme::ALL.len(), 4);
    }

    #[test]
    fn with_engine_builds_the_right_kind() {
        for scheme in Scheme::ALL {
            scheme.with_engine(Duration::from_millis(100), |factory| {
                let label = dispatch_engine!(factory, |engine| engine.label());
                match scheme {
                    Scheme::OneV => assert_eq!(label, "1V"),
                    Scheme::MvL => assert_eq!(label, "MV/L"),
                    Scheme::MvO => assert_eq!(label, "MV/O"),
                    Scheme::Adaptive => assert_eq!(label, "MV/A"),
                }
            });
        }
    }
}
