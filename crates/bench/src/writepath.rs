//! Shared fixture for the write-path measurements: the `repro perf`
//! experiment ([`crate::experiments::writepath_perf`], recorded into
//! `BENCH_writepath.json`) and the criterion bench
//! (`benches/writepath.rs`) measure *the same transactions*, so the warmed
//! engines and key strides live here once (row layout shared with the read
//! path via `rowbuf::grouped_row`).
//!
//! The measured unit is a whole warmed write transaction —
//! begin → update → commit (or an insert-then-delete pair) — because that is
//! the shape the allocation-free write path pins in
//! `crates/core/tests/alloc_free.rs`: steady-state writes must touch no
//! shared mutable state beyond the version chain itself (§2.6, Figs. 7–9).

use std::time::Duration;

use mmdb_common::engine::Engine as _;
use mmdb_common::ids::TableId;
use mmdb_common::isolation::ConcurrencyMode;
use mmdb_core::{MvConfig, MvEngine};
use mmdb_onev::SvEngine;

pub use mmdb_common::row::rowbuf::{grouped_row, grouped_spec, GROUP_SIZE};

/// Update-key stride (odd, well-mixed walk over the keyspace; shared with
/// the read path so the two benches stress the same chains).
pub use crate::readpath::KEY_STRIDE;

/// An MV engine in the given concurrency mode populated with `rows` grouped
/// rows (cooperative GC on, per the default configuration, so steady-state
/// update chains stay short exactly as they would in production).
pub fn warmed_mv_engine_with(mode: ConcurrencyMode, rows: u64) -> (MvEngine, TableId) {
    let config = MvConfig::default();
    let engine = match mode {
        ConcurrencyMode::Optimistic => MvEngine::optimistic(config),
        ConcurrencyMode::Pessimistic => MvEngine::pessimistic(config),
    };
    let table = engine
        .create_table(grouped_spec(rows))
        .expect("create table");
    engine
        .populate(table, (0..rows).map(grouped_row))
        .expect("populate");
    (engine, table)
}

/// A 1V engine populated with `rows` grouped rows.
pub fn warmed_sv_engine(rows: u64, lock_timeout: Duration) -> (SvEngine, TableId) {
    crate::readpath::warmed_sv_engine(rows, lock_timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::engine::EngineTxn;
    use mmdb_common::ids::IndexId;
    use mmdb_common::isolation::IsolationLevel;

    #[test]
    fn warmed_engines_accept_write_transactions() {
        for mode in [ConcurrencyMode::Optimistic, ConcurrencyMode::Pessimistic] {
            let (engine, table) = warmed_mv_engine_with(mode, 64);
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            assert!(txn
                .update(table, IndexId(0), 3, grouped_row(3))
                .expect("update"));
            txn.commit().expect("commit");
        }
    }
}
