//! Global monotonic timestamp counter and transaction-ID allocator.
//!
//! The paper (§2.4): *"Timestamps are drawn from a global, monotonically
//! increasing counter. A transaction gets a unique timestamp by atomically
//! reading and incrementing the counter."* Acquiring a timestamp is the only
//! critical section in either MVCC scheme (§6), so the implementation is a
//! single `fetch_add` on a cache-padded atomic.
//!
//! Transaction IDs come from a second counter so that the ID space (54 bits,
//! constrained by the lock-word layout) is independent of the timestamp
//! space.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::{Timestamp, TxnId, MAX_TXN_ID};

/// Global clock handing out begin/end timestamps and transaction IDs.
///
/// One instance is shared (via `Arc`) by every transaction in a database.
#[derive(Debug)]
pub struct GlobalClock {
    /// Next timestamp to hand out. Starts at 1; timestamp 0 is reserved so
    /// that `Timestamp::ZERO` is strictly earlier than any commit.
    ts: crossbeam_pad::CachePadded<AtomicU64>,
    /// Next transaction ID to hand out. Starts at 1.
    txid: crossbeam_pad::CachePadded<AtomicU64>,
}

/// Minimal stand-in for `crossbeam_utils::CachePadded` so this crate stays
/// dependency-free; aligns the wrapped atomic to a cache line to avoid false
/// sharing between the two counters.
mod crossbeam_pad {
    /// Aligns `T` to a 128-byte boundary (two 64-byte lines, which also
    /// covers adjacent-line prefetching).
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T>(pub T);

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalClock {
    /// Create a clock starting at timestamp 1 and transaction ID 1.
    pub fn new() -> Self {
        GlobalClock {
            ts: crossbeam_pad::CachePadded(AtomicU64::new(1)),
            txid: crossbeam_pad::CachePadded(AtomicU64::new(1)),
        }
    }

    /// Atomically read-and-increment the timestamp counter.
    ///
    /// Used both for begin timestamps (when a transaction starts) and end
    /// timestamps (at precommit).
    #[inline]
    pub fn next_timestamp(&self) -> Timestamp {
        Timestamp(self.ts.fetch_add(1, Ordering::SeqCst))
    }

    /// Current value of the timestamp counter without advancing it.
    ///
    /// Read-committed transactions use this as their logical read time so
    /// they always observe the latest committed version (§3.4).
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.ts.load(Ordering::SeqCst))
    }

    /// Advance the timestamp counter so every future draw is strictly later
    /// than `ts`. Used after recovery: checkpoint images and replayed log
    /// records carry timestamps from the previous process lifetime, and the
    /// delta-checkpoint machinery compares them against freshly drawn
    /// snapshot timestamps (per-table dirty watermarks, delta parent
    /// snapshots), so the new clock must not restart below them.
    pub fn advance_past(&self, ts: Timestamp) {
        self.ts.fetch_max(ts.raw() + 1, Ordering::SeqCst);
    }

    /// Allocate a fresh transaction ID.
    ///
    /// # Panics
    /// Panics if the 54-bit ID space is exhausted (2^54 transactions — in
    /// practice unreachable; at 10 million transactions per second it would
    /// take over 57 years).
    #[inline]
    pub fn next_txn_id(&self) -> TxnId {
        let id = self.txid.fetch_add(1, Ordering::Relaxed);
        assert!(id <= MAX_TXN_ID, "transaction ID space exhausted");
        TxnId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let clock = GlobalClock::new();
        let a = clock.next_timestamp();
        let b = clock.next_timestamp();
        let c = clock.next_timestamp();
        assert!(a < b && b < c);
    }

    #[test]
    fn now_does_not_advance() {
        let clock = GlobalClock::new();
        let t0 = clock.now();
        let t1 = clock.now();
        assert_eq!(t0, t1);
        let drawn = clock.next_timestamp();
        assert!(drawn >= t0);
        assert!(clock.now() > drawn);
    }

    #[test]
    fn advance_past_makes_future_draws_later() {
        let clock = GlobalClock::new();
        clock.advance_past(Timestamp(500));
        assert!(clock.next_timestamp() > Timestamp(500));
        // Never moves backwards.
        clock.advance_past(Timestamp(3));
        assert!(clock.next_timestamp() > Timestamp(500));
    }

    #[test]
    fn txn_ids_are_unique() {
        let clock = GlobalClock::new();
        let a = clock.next_txn_id();
        let b = clock.next_txn_id();
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_draws_are_unique() {
        let clock = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|_| clock.next_timestamp().raw())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps handed out");
    }

    #[test]
    fn zero_timestamp_is_never_handed_out() {
        let clock = GlobalClock::new();
        assert!(clock.next_timestamp().raw() >= 1);
    }
}
