//! Windowed contention telemetry with an EWMA'd score and hysteresis.
//!
//! The paper's evaluation (Figs. 4–7, Table 3) shows that neither CC scheme
//! wins everywhere: optimistic MV/O dominates at low contention, pessimistic
//! MV/L wins on write-heavy hotspots, and the crossover moves with the
//! workload. A [`ContentionMonitor`] gives an engine the live signal it needs
//! to pick a scheme *per transaction*: every finished transaction reports
//! whether it ended in a contention-class abort (write-write conflict,
//! validation failure, phantom, deadlock victim, lock wait refused, cascaded
//! commit-dependency abort), and the monitor maintains a decayed
//! conflict-rate estimate per table plus a global aggregate.
//!
//! Design constraints (the same ones `EngineStats` lives under):
//!
//! * **Relaxed atomics only.** The monitor is telemetry, not
//!   synchronization; a lost update or a racy window fold skews the estimate
//!   by a transaction or two and nothing else.
//! * **Zero allocations on the hot path.** Slots are a fixed-size inline
//!   array; recording and reading the score never allocates, so the
//!   `alloc_free` suite keeps pinning 0 with adaptive mode enabled.
//! * **Event-count windows, not wall-clock.** A window closes after
//!   `window` finished transactions touch a slot; the window's conflict rate
//!   is folded into a fixed-point EWMA (`score ← (3·score + rate) / 4`).
//!   Windows therefore advance exactly as fast as traffic does, idle periods
//!   cost nothing, and tests are deterministic.
//! * **Hysteresis.** A slot switches to pessimistic when the score crosses
//!   `enter` and only returns to optimistic once it falls below the (lower)
//!   `exit` threshold, so the chosen mode cannot thrash at the crossover.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::TableId;
use crate::isolation::ConcurrencyMode;

/// Fixed-point scale for scores and thresholds (`1.0` ⇒ `SCALE`).
const SCALE: u64 = 1 << 16;

/// Number of per-table slots. Tables hash into slots by id; collisions
/// merely merge two tables' telemetry, which is safe (the policy degrades
/// toward the global signal) and keeps the structure allocation-free.
const SLOTS: usize = 16;

/// Default events per window before the conflict rate is folded.
pub const DEFAULT_WINDOW: u64 = 256;
/// Default enter threshold: go pessimistic at a ~10% decayed conflict rate.
pub const DEFAULT_ENTER: f64 = 0.10;
/// Default exit threshold: return to optimistic below a ~3% decayed rate.
pub const DEFAULT_EXIT: f64 = 0.03;

/// One telemetry cell: a window in progress plus the decayed summary of all
/// previous windows.
#[derive(Debug, Default)]
struct Slot {
    /// Finished transactions observed in the current window.
    events: AtomicU64,
    /// Contention-class aborts observed in the current window.
    conflicts: AtomicU64,
    /// Fixed-point EWMA of the per-window conflict rate.
    score: AtomicU64,
    /// Hysteresis latch: 1 while the slot recommends the pessimistic scheme.
    pessimistic: AtomicU64,
}

/// Live contention telemetry: per-table windowed conflict counters folded
/// into a decayed score, with a hysteresis-latched mode recommendation.
///
/// Engines call [`record`](ContentionMonitor::record) once per finished
/// transaction and [`recommend`](ContentionMonitor::recommend) (or
/// [`is_pessimistic`](ContentionMonitor::is_pessimistic)) at `begin` time.
/// Everything is relaxed-atomic and allocation-free.
#[derive(Debug)]
pub struct ContentionMonitor {
    /// Per-table cells, indexed by `TableId` modulo [`SLOTS`].
    slots: [Slot; SLOTS],
    /// Aggregate cell fed by every finished transaction.
    global: Slot,
    /// Events per window before a fold.
    window: AtomicU64,
    /// Fixed-point score at or above which a slot latches pessimistic.
    enter: AtomicU64,
    /// Fixed-point score at or below which a latched slot releases.
    exit: AtomicU64,
}

impl Default for ContentionMonitor {
    fn default() -> Self {
        ContentionMonitor {
            slots: Default::default(),
            global: Slot::default(),
            window: AtomicU64::new(DEFAULT_WINDOW),
            enter: AtomicU64::new(to_fixed(DEFAULT_ENTER)),
            exit: AtomicU64::new(to_fixed(DEFAULT_EXIT)),
        }
    }
}

fn to_fixed(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * SCALE as f64) as u64
}

fn to_rate(fixed: u64) -> f64 {
    fixed as f64 / SCALE as f64
}

impl ContentionMonitor {
    /// Create a monitor with the default window and thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the window size (finished transactions per fold) and the
    /// hysteresis thresholds (conflict rates in `[0, 1]`; `enter` should be
    /// above `exit`). Intended to be called once at engine construction;
    /// calling it mid-run merely retunes subsequent folds.
    pub fn configure(&self, window: u64, enter: f64, exit: f64) {
        self.window.store(window.max(1), Ordering::Relaxed);
        self.enter.store(to_fixed(enter), Ordering::Relaxed);
        self.exit
            .store(to_fixed(exit.min(enter)), Ordering::Relaxed);
    }

    fn slot_of(&self, table: TableId) -> &Slot {
        &self.slots[table.0 as usize % SLOTS]
    }

    /// Record one finished transaction that touched `tables`, ending either
    /// cleanly (`conflict == false`) or in a contention-class abort. The
    /// global cell always sees the event; each touched table's cell sees it
    /// once. Allocation-free; relaxed atomics only.
    pub fn record(&self, tables: &[TableId], conflict: bool) {
        self.slot_record(&self.global, conflict);
        for &table in tables {
            self.slot_record(self.slot_of(table), conflict);
        }
    }

    fn slot_record(&self, slot: &Slot, conflict: bool) {
        if conflict {
            slot.conflicts.fetch_add(1, Ordering::Relaxed);
        }
        let events = slot.events.fetch_add(1, Ordering::Relaxed) + 1;
        let window = self.window.load(Ordering::Relaxed);
        if events < window {
            return;
        }
        // One recorder wins the fold; losers simply keep counting into the
        // next window. Both counters reset racily — this is telemetry, and a
        // straggler's event landing in the wrong window shifts the estimate
        // by at most 1/window.
        if slot
            .events
            .compare_exchange(events, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let conflicts = slot.conflicts.swap(0, Ordering::Relaxed).min(events);
        let rate = conflicts * SCALE / events;
        let old = slot.score.load(Ordering::Relaxed);
        let new = (3 * old + rate) / 4;
        slot.score.store(new, Ordering::Relaxed);
        let latched = slot.pessimistic.load(Ordering::Relaxed) != 0;
        if latched {
            if new <= self.exit.load(Ordering::Relaxed) {
                slot.pessimistic.store(0, Ordering::Relaxed);
            }
        } else if new >= self.enter.load(Ordering::Relaxed) {
            slot.pessimistic.store(1, Ordering::Relaxed);
        }
    }

    /// Is the global aggregate currently latched pessimistic?
    pub fn is_pessimistic(&self) -> bool {
        self.global.pessimistic.load(Ordering::Relaxed) != 0
    }

    /// Recommended scheme for a transaction of known shape. Read-only
    /// transactions always get the optimistic scheme — they never conflict on
    /// writes, and under MV/O a read-only transaction validates (or, at lower
    /// isolation, skips validation) without ever blocking writers (§3.4).
    /// Update transactions go pessimistic if the global cell — or the cell of
    /// any table they declare — is latched.
    pub fn recommend(&self, read_only: bool, tables: &[TableId]) -> ConcurrencyMode {
        if read_only {
            return ConcurrencyMode::Optimistic;
        }
        if self.is_pessimistic()
            || tables
                .iter()
                .any(|&t| self.slot_of(t).pessimistic.load(Ordering::Relaxed) != 0)
        {
            ConcurrencyMode::Pessimistic
        } else {
            ConcurrencyMode::Optimistic
        }
    }

    /// Decayed conflict-rate estimate in `[0, 1]` for one table's cell.
    pub fn score_of(&self, table: TableId) -> f64 {
        to_rate(self.slot_of(table).score.load(Ordering::Relaxed))
    }

    /// Decayed conflict-rate estimate in `[0, 1]` for the global cell.
    pub fn global_score(&self) -> f64 {
        to_rate(self.global.score.load(Ordering::Relaxed))
    }

    /// Events recorded in the global cell's current (unfolded) window.
    pub fn pending_events(&self) -> u64 {
        self.global.events.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(3);

    fn monitor(window: u64, enter: f64, exit: f64) -> ContentionMonitor {
        let m = ContentionMonitor::new();
        m.configure(window, enter, exit);
        m
    }

    /// Push exactly one window of events with the given number of conflicts.
    fn push_window(m: &ContentionMonitor, window: u64, conflicts: u64) {
        for i in 0..window {
            m.record(&[T], i < conflicts);
        }
    }

    #[test]
    fn clean_windows_leave_score_at_zero() {
        let m = monitor(8, 0.5, 0.1);
        for _ in 0..10 {
            push_window(&m, 8, 0);
        }
        assert_eq!(m.global_score(), 0.0);
        assert_eq!(m.score_of(T), 0.0);
        assert!(!m.is_pessimistic());
    }

    #[test]
    fn window_rollover_resets_the_event_count() {
        let m = monitor(8, 0.5, 0.1);
        push_window(&m, 8, 0);
        assert_eq!(m.pending_events(), 0);
        m.record(&[T], false);
        assert_eq!(m.pending_events(), 1);
    }

    #[test]
    fn ewma_rises_under_conflict_and_decays_when_it_stops() {
        let m = monitor(8, 0.9, 0.01);
        // All-conflict windows: score climbs toward 1.0 but never jumps there
        // in one step (EWMA weight 1/4).
        push_window(&m, 8, 8);
        let after_one = m.global_score();
        assert!(after_one > 0.2 && after_one < 0.3, "{after_one}");
        for _ in 0..20 {
            push_window(&m, 8, 8);
        }
        let peak = m.global_score();
        assert!(peak > 0.95, "{peak}");
        // Clean windows: geometric decay back toward zero.
        push_window(&m, 8, 0);
        let decayed = m.global_score();
        assert!(decayed < peak && (decayed - peak * 0.75).abs() < 0.02);
        for _ in 0..30 {
            push_window(&m, 8, 0);
        }
        assert!(m.global_score() < 0.001);
    }

    #[test]
    fn hysteresis_latches_between_enter_and_exit() {
        let m = monitor(8, 0.5, 0.1);
        // Drive the score above enter.
        while m.global_score() < 0.5 {
            push_window(&m, 8, 8);
        }
        assert!(m.is_pessimistic());
        // Decay into the hysteresis band: still latched.
        while m.global_score() > 0.2 {
            push_window(&m, 8, 0);
        }
        assert!(m.global_score() > 0.1, "decayed past the band");
        assert!(m.is_pessimistic(), "released inside the hysteresis band");
        // Decay below exit: released.
        while m.global_score() > 0.1 {
            push_window(&m, 8, 0);
        }
        assert!(!m.is_pessimistic());
    }

    #[test]
    fn synthetic_hotspot_flips_the_recommendation_and_back() {
        let m = monitor(16, 0.3, 0.05);
        let cold = TableId(7);
        assert_eq!(
            m.recommend(false, &[T]),
            ConcurrencyMode::Optimistic,
            "fresh monitor must start optimistic"
        );
        // Hotspot: half of every window on table T aborts on conflicts.
        for _ in 0..8 {
            push_window(&m, 16, 8);
        }
        assert_eq!(m.recommend(false, &[T]), ConcurrencyMode::Pessimistic);
        // The global cell saw the same traffic, so even undeclared shapes go
        // pessimistic while the hotspot is live.
        assert_eq!(m.recommend(false, &[]), ConcurrencyMode::Pessimistic);
        // Read-only transactions stay optimistic regardless.
        assert_eq!(m.recommend(true, &[T]), ConcurrencyMode::Optimistic);
        // Hotspot drains: clean traffic decays the score below exit and the
        // recommendation flips back.
        for _ in 0..40 {
            push_window(&m, 16, 0);
        }
        assert_eq!(m.recommend(false, &[T]), ConcurrencyMode::Optimistic);
        assert_eq!(m.recommend(false, &[]), ConcurrencyMode::Optimistic);
        // A never-touched table's cell was cold throughout.
        assert_eq!(m.score_of(cold), 0.0);
    }

    #[test]
    fn configure_clamps_exit_to_enter() {
        let m = monitor(4, 0.2, 0.9);
        // exit was clamped to enter, so a score below enter releases.
        push_window(&m, 4, 4);
        assert!(m.is_pessimistic());
        for _ in 0..20 {
            push_window(&m, 4, 0);
        }
        assert!(!m.is_pessimistic());
    }
}
