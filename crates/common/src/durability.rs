//! The per-transaction durability knob.
//!
//! The paper's experimental setup (§5) runs *asynchronous* commit:
//! transactions emit redo records but never wait for log I/O — durability is
//! hardened in batches by an asynchronous group-commit tick. That is
//! [`Durability::Async`], the default everywhere.
//!
//! [`Durability::Sync`] is the conventional alternative: `commit()` returns
//! only after the transaction's redo record has reached durable storage. A
//! per-transaction group-commit ticket (see `RedoLogger::append_frame_ticketed`
//! and `wait_durable` in `mmdb-storage`) keeps Sync commits batched — a
//! committer waits for the flush covering its ticket rather than forcing its
//! own; the `perf-commit` experiment quantifies the difference against a
//! per-transaction flush.

/// When `commit()` may return relative to log durability.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Durability {
    /// Paper-faithful asynchronous commit: the redo record is handed to the
    /// logger and `commit()` returns immediately; durability lags by at most
    /// one group-commit tick. A crash can lose the tail of recently reported
    /// commits (bounded by the tick), never a prefix.
    #[default]
    Async,
    /// `commit()` blocks until the transaction's redo bytes (and, because the
    /// log is a single ordered stream, every earlier commit's bytes) are on
    /// durable storage. Under a group-commit logger many Sync committers
    /// share one flush.
    Sync,
}

impl Durability {
    /// Short label used in reports and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Durability::Async => "async",
            Durability::Sync => "sync",
        }
    }
}

/// When the engine should take a checkpoint (and truncate the redo log to
/// the checkpoint LSN). The policy itself is passive — the engines expose a
/// `checkpoint()` entry point and consult the policy via
/// [`CheckpointPolicy::due`]; whoever drives maintenance (a server loop, a
/// bench harness, an operator) decides when to ask.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once the redo log has grown this many bytes past the last
    /// checkpoint's LSN. `None` means manual-only: checkpoints happen only
    /// when `checkpoint()` is called explicitly.
    pub log_bytes: Option<u64>,
    /// Maximum length of the checkpoint chain (base image + delta images).
    /// `1` means every checkpoint rewrites a full base image (the classic
    /// behavior). A value `k > 1` lets the engine write *delta* checkpoints
    /// — only rows and deletions since the previous chain element — until
    /// the chain holds `k` files, at which point the next checkpoint
    /// compacts back to a fresh base.
    pub max_chain: u32,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy::MANUAL
    }
}

impl CheckpointPolicy {
    /// Manual-only checkpointing (the default): [`CheckpointPolicy::due`]
    /// never fires on its own, and every explicit checkpoint is a full base
    /// image.
    pub const MANUAL: CheckpointPolicy = CheckpointPolicy {
        log_bytes: None,
        max_chain: 1,
    };

    /// Checkpoint every `bytes` of redo-log growth, always writing a full
    /// base image.
    pub fn every_log_bytes(bytes: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            log_bytes: Some(bytes),
            max_chain: 1,
        }
    }

    /// Checkpoint every `bytes` of redo-log growth, writing deltas until
    /// the chain holds `max_chain` files (then compacting to a fresh base).
    /// `max_chain <= 1` degenerates to [`every_log_bytes`](Self::every_log_bytes).
    pub fn delta(bytes: u64, max_chain: u32) -> CheckpointPolicy {
        CheckpointPolicy {
            log_bytes: Some(bytes),
            max_chain: max_chain.max(1),
        }
    }

    /// Is a checkpoint due, given how many log bytes have accumulated since
    /// the last checkpoint LSN?
    pub fn due(&self, log_bytes_since_checkpoint: u64) -> bool {
        self.log_bytes
            .is_some_and(|trigger| log_bytes_since_checkpoint >= trigger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful_async() {
        assert_eq!(Durability::default(), Durability::Async);
    }

    #[test]
    fn manual_policy_is_never_due() {
        assert!(!CheckpointPolicy::MANUAL.due(u64::MAX));
        assert_eq!(CheckpointPolicy::default(), CheckpointPolicy::MANUAL);
    }

    #[test]
    fn log_bytes_policy_fires_at_the_threshold() {
        let policy = CheckpointPolicy::every_log_bytes(1024);
        assert!(!policy.due(1023));
        assert!(policy.due(1024));
        assert!(policy.due(u64::MAX));
    }

    #[test]
    fn delta_policy_clamps_the_chain_bound() {
        assert_eq!(CheckpointPolicy::delta(64, 0).max_chain, 1);
        assert_eq!(CheckpointPolicy::delta(64, 4).max_chain, 4);
        assert_eq!(CheckpointPolicy::every_log_bytes(64).max_chain, 1);
        assert_eq!(CheckpointPolicy::MANUAL.max_chain, 1);
        assert!(CheckpointPolicy::delta(64, 4).due(64));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Durability::Async.label(), Durability::Sync.label());
    }
}
