//! The per-transaction durability knob.
//!
//! The paper's experimental setup (§5) runs *asynchronous* commit:
//! transactions emit redo records but never wait for log I/O — durability is
//! hardened in batches by an asynchronous group-commit tick. That is
//! [`Durability::Async`], the default everywhere.
//!
//! [`Durability::Sync`] is the conventional alternative: `commit()` returns
//! only after the transaction's redo record has reached durable storage. A
//! per-transaction group-commit ticket (see `RedoLogger::append_frame_ticketed`
//! and `wait_durable` in `mmdb-storage`) keeps Sync commits batched — a
//! committer waits for the flush covering its ticket rather than forcing its
//! own; the `perf-commit` experiment quantifies the difference against a
//! per-transaction flush.

/// When `commit()` may return relative to log durability.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Durability {
    /// Paper-faithful asynchronous commit: the redo record is handed to the
    /// logger and `commit()` returns immediately; durability lags by at most
    /// one group-commit tick. A crash can lose the tail of recently reported
    /// commits (bounded by the tick), never a prefix.
    #[default]
    Async,
    /// `commit()` blocks until the transaction's redo bytes (and, because the
    /// log is a single ordered stream, every earlier commit's bytes) are on
    /// durable storage. Under a group-commit logger many Sync committers
    /// share one flush.
    Sync,
}

impl Durability {
    /// Short label used in reports and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Durability::Async => "async",
            Durability::Sync => "sync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful_async() {
        assert_eq!(Durability::default(), Durability::Async);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Durability::Async.label(), Durability::Sync.label());
    }
}
