//! The engine abstraction.
//!
//! The paper evaluates three concurrency-control schemes — single-version
//! locking ("1V"), pessimistic multiversioning ("MV/L") and optimistic
//! multiversioning ("MV/O") — on identical workloads. To let the workload
//! generators and the experiment harness be written once, all three engines
//! implement the [`Engine`] / [`EngineTxn`] traits defined here.
//!
//! The traits expose exactly the operations the paper's workloads need:
//! create a table with hash indexes, begin a transaction at an isolation
//! level, point reads and equality scans through an index, insert / update /
//! delete, commit and abort.

use crate::durability::Durability;
use crate::error::Result;
use crate::ids::{IndexId, Key, TableId, Timestamp, TxnId};
use crate::isolation::IsolationLevel;
use crate::row::{Row, TableSpec};
use crate::stats::EngineStats;

/// A transaction handle. Obtained from [`Engine::begin`]; consumed by
/// [`EngineTxn::commit`] or [`EngineTxn::abort`].
///
/// Transactions are not `Sync`: one thread drives a transaction at a time
/// (the paper's execution model — a transaction is a single thread of
/// control that never blocks during normal processing).
pub trait EngineTxn: Send {
    /// The engine-assigned transaction identifier.
    fn id(&self) -> TxnId;

    /// The isolation level this transaction runs at.
    fn isolation(&self) -> IsolationLevel;

    /// Choose when `commit()` may return relative to log durability
    /// (default: the engine's configured default, normally
    /// [`Durability::Async`] — the paper's transactions never wait for log
    /// I/O). With [`Durability::Sync`], `commit()` blocks until the
    /// transaction's redo bytes are on durable storage; under a group-commit
    /// logger many Sync committers share one flush.
    ///
    /// The default implementation ignores the request: engines without a
    /// redo log (or test oracles) have nothing to wait for.
    fn set_durability(&mut self, _durability: Durability) {}

    /// Insert a new row. The row must satisfy every index's key extractor.
    fn insert(&mut self, table: TableId, row: Row) -> Result<()>;

    /// Point lookup through an index: returns the (at most one, for unique
    /// indexes) visible row with the given key.
    fn read(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Option<Row>>;

    /// Equality scan through an index: returns every visible row whose index
    /// key equals `key` (non-unique indexes may return several).
    fn scan_key(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Vec<Row>>;

    /// Visitor-style point lookup: invoke `visit` on the visible row with the
    /// given key (at most once) without materializing it. Returns whether a
    /// row was found.
    ///
    /// This is the allocation-free read path: engines override it to hand the
    /// caller a borrow of the stored payload instead of building an
    /// `Option<Row>`. The default implementation delegates to [`EngineTxn::read`]
    /// for engines that have not opted in.
    ///
    /// **The visitor must not call back into the engine** (no reads, writes
    /// or transaction control from inside `visit`): engines are free to run
    /// it while holding internal latches — the single-version engine visits
    /// rows in place under a bucket latch — so reentrant use can deadlock.
    /// Extract what you need into locals and continue after the call
    /// returns.
    fn read_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<bool> {
        match self.read(table, index, key)? {
            Some(row) => {
                visit(&row);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Visitor-style equality scan: invoke `visit` on every visible row whose
    /// index key equals `key`, in index-chain order, without materializing a
    /// `Vec`. Returns the number of rows visited.
    ///
    /// Like [`EngineTxn::read_with`], this is the allocation-free path;
    /// engines override it, and the default delegates to
    /// [`EngineTxn::scan_key`]. The same reentrancy rule applies: the
    /// visitor must not call back into the engine.
    fn scan_key_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        let rows = self.scan_key(table, index, key)?;
        for row in &rows {
            visit(row);
        }
        Ok(rows.len())
    }

    /// Range scan through an *ordered* index: returns every visible row whose
    /// index key falls in the inclusive range `[lo, hi]`, in ascending key
    /// order. Hash indexes cannot serve range predicates; scanning one (or an
    /// engine without ordered-index support) fails with
    /// [`MmdbError::IndexNotOrdered`](crate::error::MmdbError::IndexNotOrdered).
    fn scan_range(&mut self, table: TableId, index: IndexId, lo: Key, hi: Key) -> Result<Vec<Row>> {
        let mut rows = Vec::new();
        self.scan_range_with(table, index, lo, hi, &mut |row| {
            rows.push(Row::copy_from_slice(row))
        })?;
        Ok(rows)
    }

    /// Visitor-style range scan: invoke `visit` on every visible row whose
    /// index key falls in `[lo, hi]`, in ascending key order, without
    /// materializing a `Vec`. Returns the number of rows visited.
    ///
    /// This is the primitive the engines override ([`EngineTxn::scan_range`]
    /// materializes through it). The default rejects the scan with
    /// [`MmdbError::IndexNotOrdered`](crate::error::MmdbError::IndexNotOrdered):
    /// an engine that has not wired up an ordered index has nothing to range
    /// over. The [`EngineTxn::read_with`] reentrancy rule applies — the
    /// visitor must not call back into the engine.
    fn scan_range_with(
        &mut self,
        table: TableId,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        let _ = (lo, hi, visit);
        Err(crate::error::MmdbError::IndexNotOrdered(table, index))
    }

    /// Replace the visible row with key `key` (located through `index`) by
    /// `new_row`. Returns `Ok(false)` if no visible row matched.
    fn update(&mut self, table: TableId, index: IndexId, key: Key, new_row: Row) -> Result<bool>;

    /// Delete the visible row with key `key`. Returns `Ok(false)` if no
    /// visible row matched.
    fn delete(&mut self, table: TableId, index: IndexId, key: Key) -> Result<bool>;

    /// Commit. On success returns the commit (end) timestamp.
    ///
    /// The transaction is consumed whether or not the commit succeeds; on
    /// error it has already been aborted and cleaned up.
    fn commit(self) -> Result<Timestamp>;

    /// Abort and roll back.
    fn abort(self);
}

/// A concurrency-control engine instance: owns tables, the clock, statistics
/// and any background machinery (garbage collection, deadlock detection).
pub trait Engine: Send + Sync + 'static {
    /// Concrete transaction type.
    type Txn: EngineTxn;

    /// Create a table and return its identifier.
    fn create_table(&self, spec: TableSpec) -> Result<TableId>;

    /// Begin a transaction at the given isolation level.
    fn begin(&self, isolation: IsolationLevel) -> Self::Txn;

    /// Begin a transaction, declaring its shape up front: whether it is
    /// read-only and which tables it will touch.
    ///
    /// Engines with a contention-adaptive concurrency-control policy use the
    /// declaration to pick a mode from the *declared tables'* contention
    /// signals instead of the global one — without it, one hot table flips
    /// every table's traffic to the pessimistic scheme. Engines with a
    /// single scheme (and the default implementation) ignore the hints, so
    /// workload drivers can declare their footprint unconditionally.
    fn begin_hinted(
        &self,
        read_only: bool,
        tables: &[TableId],
        isolation: IsolationLevel,
    ) -> Self::Txn {
        let _ = (read_only, tables);
        self.begin(isolation)
    }

    /// Event counters for this engine.
    fn stats(&self) -> &EngineStats;

    /// Short label used in reports ("1V", "MV/O", "MV/L").
    fn label(&self) -> &'static str;

    /// Cooperative maintenance hook (garbage collection step, etc.). Worker
    /// threads call this periodically between transactions; engines that need
    /// no maintenance use the default no-op.
    fn maintenance(&self) {}
}

/// Convenience helpers layered on any [`EngineTxn`].
pub trait EngineTxnExt: EngineTxn + Sized {
    /// Read-modify-write: read the row with `key`, apply `f`, and write the
    /// result back. Returns `Ok(false)` if the row does not exist.
    fn modify<F>(&mut self, table: TableId, index: IndexId, key: Key, f: F) -> Result<bool>
    where
        F: FnOnce(&[u8]) -> Row,
    {
        match self.read(table, index, key)? {
            Some(row) => {
                let new_row = f(&row);
                self.update(table, index, key, new_row)
            }
            None => Ok(false),
        }
    }
}

impl<T: EngineTxn + Sized> EngineTxnExt for T {}

#[cfg(test)]
mod tests {
    //! A tiny single-threaded reference engine implementing the traits. It
    //! exists to (a) prove the traits are implementable and ergonomic and (b)
    //! serve as a behavioural oracle in other crates' tests.
    use super::*;
    use crate::error::MmdbError;
    use crate::row::rowbuf;
    use crate::row::KeySpec;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// Rows of one table, keyed by (index slot, index key).
    type IndexedRows = HashMap<(u32, u64), Vec<Row>>;

    #[derive(Default)]
    struct Inner {
        tables: Vec<(TableSpec, IndexedRows)>,
    }

    /// Trivially serialized (one big mutex) reference engine.
    pub struct TrivialEngine {
        inner: Arc<Mutex<Inner>>,
        stats: EngineStats,
        next_txn: AtomicU64,
        next_ts: AtomicU64,
    }

    impl TrivialEngine {
        pub fn new() -> Self {
            TrivialEngine {
                inner: Arc::new(Mutex::new(Inner::default())),
                stats: EngineStats::new(),
                next_txn: AtomicU64::new(1),
                next_ts: AtomicU64::new(1),
            }
        }
    }

    pub struct TrivialTxn {
        id: TxnId,
        iso: IsolationLevel,
        inner: Arc<Mutex<Inner>>,
        end_ts: Timestamp,
    }

    impl Engine for TrivialEngine {
        type Txn = TrivialTxn;

        fn create_table(&self, spec: TableSpec) -> Result<TableId> {
            let mut g = self.inner.lock().unwrap();
            g.tables.push((spec, HashMap::new()));
            Ok(TableId(g.tables.len() as u32 - 1))
        }

        fn begin(&self, isolation: IsolationLevel) -> TrivialTxn {
            TrivialTxn {
                id: TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed)),
                iso: isolation,
                inner: Arc::clone(&self.inner),
                end_ts: Timestamp(self.next_ts.fetch_add(1, Ordering::Relaxed)),
            }
        }

        fn stats(&self) -> &EngineStats {
            &self.stats
        }

        fn label(&self) -> &'static str {
            "trivial"
        }
    }

    impl TrivialTxn {
        fn key_for(spec: &TableSpec, index: IndexId, row: &[u8]) -> Result<u64> {
            spec.indexes
                .get(index.0 as usize)
                .ok_or(MmdbError::IndexNotFound(TableId(0), index))?
                .key
                .key_of(row)
        }
    }

    impl EngineTxn for TrivialTxn {
        fn id(&self) -> TxnId {
            self.id
        }
        fn isolation(&self) -> IsolationLevel {
            self.iso
        }
        fn insert(&mut self, table: TableId, row: Row) -> Result<()> {
            let mut g = self.inner.lock().unwrap();
            let (spec, data) = g
                .tables
                .get_mut(table.0 as usize)
                .ok_or(MmdbError::TableNotFound(table))?;
            for (i, _idx) in spec.indexes.iter().enumerate() {
                let key = Self::key_for(spec, IndexId(i as u32), &row)?;
                data.entry((i as u32, key)).or_default().push(row.clone());
            }
            Ok(())
        }
        fn read(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Option<Row>> {
            Ok(self.scan_key(table, index, key)?.into_iter().next())
        }
        fn scan_key(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Vec<Row>> {
            let g = self.inner.lock().unwrap();
            let (_, data) = g
                .tables
                .get(table.0 as usize)
                .ok_or(MmdbError::TableNotFound(table))?;
            Ok(data.get(&(index.0, key)).cloned().unwrap_or_default())
        }
        fn scan_range_with(
            &mut self,
            table: TableId,
            index: IndexId,
            lo: Key,
            hi: Key,
            visit: &mut dyn FnMut(&Row),
        ) -> Result<usize> {
            let g = self.inner.lock().unwrap();
            let (spec, data) = g
                .tables
                .get(table.0 as usize)
                .ok_or(MmdbError::TableNotFound(table))?;
            let ordered = spec
                .indexes
                .get(index.0 as usize)
                .ok_or(MmdbError::IndexNotFound(table, index))?
                .ordered;
            if !ordered {
                return Err(MmdbError::IndexNotOrdered(table, index));
            }
            let mut hits: Vec<(u64, &Vec<Row>)> = data
                .iter()
                .filter(|((slot, key), _)| *slot == index.0 && lo <= *key && *key <= hi)
                .map(|((_, key), rows)| (*key, rows))
                .collect();
            hits.sort_unstable_by_key(|(key, _)| *key);
            let mut n = 0;
            for (_, rows) in hits {
                for row in rows {
                    visit(row);
                    n += 1;
                }
            }
            Ok(n)
        }
        fn update(
            &mut self,
            table: TableId,
            index: IndexId,
            key: Key,
            new_row: Row,
        ) -> Result<bool> {
            let existed = self.delete(table, index, key)?;
            if existed {
                self.insert(table, new_row)?;
            }
            Ok(existed)
        }
        fn delete(&mut self, table: TableId, index: IndexId, key: Key) -> Result<bool> {
            let mut g = self.inner.lock().unwrap();
            let (spec, data) = g
                .tables
                .get_mut(table.0 as usize)
                .ok_or(MmdbError::TableNotFound(table))?;
            let victim = match data.get_mut(&(index.0, key)).and_then(|v| v.pop()) {
                Some(r) => r,
                None => return Ok(false),
            };
            // Remove from the other indexes too.
            for (i, _) in spec.indexes.iter().enumerate() {
                if i as u32 == index.0 {
                    continue;
                }
                let k = Self::key_for(spec, IndexId(i as u32), &victim)?;
                if let Some(rows) = data.get_mut(&(i as u32, k)) {
                    if let Some(pos) = rows.iter().position(|r| r == &victim) {
                        rows.remove(pos);
                    }
                }
            }
            Ok(true)
        }
        fn commit(self) -> Result<Timestamp> {
            Ok(self.end_ts)
        }
        fn abort(self) {}
    }

    #[test]
    fn trivial_engine_basic_crud() {
        let engine = TrivialEngine::new();
        let spec = TableSpec::keyed_u64("t", 16).with_index(crate::row::IndexSpec {
            name: "fill".into(),
            key: KeySpec::BytesAt { offset: 8, len: 1 },
            buckets: 16,
            unique: false,
            ordered: false,
        });
        let t = engine.create_table(spec).unwrap();

        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        txn.insert(t, rowbuf::keyed_row(1, 16, 0xAA)).unwrap();
        txn.insert(t, rowbuf::keyed_row(2, 16, 0xAA)).unwrap();
        assert_eq!(
            txn.read(t, IndexId(0), 1)
                .unwrap()
                .map(|r| rowbuf::key_of(&r)),
            Some(1)
        );
        assert_eq!(
            txn.scan_key(t, IndexId(1), crate::hash::hash_bytes(&[0xAA]))
                .unwrap()
                .len(),
            2
        );
        assert!(txn
            .update(t, IndexId(0), 1, rowbuf::keyed_row(1, 16, 0xBB))
            .unwrap());
        assert_eq!(
            txn.read(t, IndexId(0), 1)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(0xBB)
        );
        assert!(txn.delete(t, IndexId(0), 2).unwrap());
        assert!(!txn.delete(t, IndexId(0), 2).unwrap());
        txn.commit().unwrap();
    }

    #[test]
    fn default_visitor_reads_delegate_to_materializing_reads() {
        let engine = TrivialEngine::new();
        let spec = TableSpec::keyed_u64("t", 16).with_index(crate::row::IndexSpec {
            name: "fill".into(),
            key: KeySpec::BytesAt { offset: 8, len: 1 },
            buckets: 16,
            unique: false,
            ordered: false,
        });
        let t = engine.create_table(spec).unwrap();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        txn.insert(t, rowbuf::keyed_row(1, 16, 0xAA)).unwrap();
        txn.insert(t, rowbuf::keyed_row(2, 16, 0xAA)).unwrap();

        let mut seen = None;
        assert!(txn
            .read_with(t, IndexId(0), 1, &mut |row| seen =
                Some(rowbuf::key_of(row)))
            .unwrap());
        assert_eq!(seen, Some(1));
        assert!(!txn
            .read_with(t, IndexId(0), 99, &mut |_| panic!("no row to visit"))
            .unwrap());

        let mut keys = Vec::new();
        let n = txn
            .scan_key_with(
                t,
                IndexId(1),
                crate::hash::hash_bytes(&[0xAA]),
                &mut |row| keys.push(rowbuf::key_of(row)),
            )
            .unwrap();
        keys.sort_unstable();
        assert_eq!(n, 2);
        assert_eq!(keys, vec![1, 2]);
        txn.commit().unwrap();
    }

    #[test]
    fn range_scans_need_an_ordered_index() {
        let engine = TrivialEngine::new();
        let spec = TableSpec::keyed_u64("t", 16)
            .with_index(crate::row::IndexSpec::ordered_u64("pk_ordered", 0));
        let t = engine.create_table(spec).unwrap();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        for k in [5u64, 1, 9, 3, 7] {
            txn.insert(t, rowbuf::keyed_row(k, 16, k as u8)).unwrap();
        }

        // Range over the ordered index comes back in ascending key order.
        let rows = txn.scan_range(t, IndexId(1), 3, 8).unwrap();
        let keys: Vec<u64> = rows.iter().map(|r| rowbuf::key_of(r)).collect();
        assert_eq!(keys, vec![3, 5, 7]);

        // Visitor form counts what it visits.
        let mut seen = Vec::new();
        let n = txn
            .scan_range_with(t, IndexId(1), 0, u64::MAX, &mut |row| {
                seen.push(rowbuf::key_of(row))
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);

        // A hash index refuses range predicates.
        assert!(matches!(
            txn.scan_range(t, IndexId(0), 0, 10),
            Err(MmdbError::IndexNotOrdered(_, _))
        ));
        txn.commit().unwrap();
    }

    #[test]
    fn modify_helper_reads_then_writes() {
        let engine = TrivialEngine::new();
        let t = engine.create_table(TableSpec::keyed_u64("t", 4)).unwrap();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        txn.insert(t, rowbuf::keyed_row(7, 16, 1)).unwrap();
        let changed = txn
            .modify(t, IndexId(0), 7, |old| {
                rowbuf::keyed_row(rowbuf::key_of(old), 16, rowbuf::fill_of(old) + 1)
            })
            .unwrap();
        assert!(changed);
        assert_eq!(
            txn.read(t, IndexId(0), 7)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(2)
        );
        assert!(!txn
            .modify(t, IndexId(0), 999, Row::copy_from_slice)
            .unwrap());
        txn.commit().unwrap();
    }
}
