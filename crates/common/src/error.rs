//! Error type shared across the engines.
//!
//! Most variants correspond to a reason the paper gives for aborting a
//! transaction (write-write conflict, validation failure, commit-dependency
//! cascade, lock-count saturation, deadlock, ...). The workload driver treats
//! [`MmdbError::is_retryable`] errors as ordinary aborts and retries the
//! transaction, which mirrors how the paper's experiments count only
//! committed transactions in throughput.

use std::fmt;

use crate::ids::{IndexId, TableId, TxnId};

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, MmdbError>;

/// Errors produced by the storage engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmdbError {
    /// A write-write conflict: the version a transaction tried to update was
    /// already write-locked (or superseded) by another transaction. The
    /// first-writer-wins rule (§2.6) forces the second writer to abort.
    WriteWriteConflict {
        /// Transaction that lost the conflict.
        txn: TxnId,
        /// Transaction that currently owns the version, when known.
        holder: Option<TxnId>,
    },
    /// Optimistic read validation failed: a version read during normal
    /// processing is no longer visible as of the end of the transaction.
    ReadValidationFailed,
    /// Optimistic phantom validation failed: repeating a scan found a version
    /// that came into existence during the transaction's lifetime.
    PhantomDetected,
    /// A commit dependency was resolved negatively: a transaction this one
    /// speculatively depended on aborted, so this one must abort too
    /// (cascaded abort, §2.7).
    CommitDependencyFailed,
    /// The transaction was told to abort by another transaction setting its
    /// `AbortNow` flag, or aborted itself on user request.
    Aborted,
    /// A pessimistic read lock could not be acquired because the version's
    /// read-lock count is saturated or its `NoMoreReadLocks` flag is set.
    ReadLockUnavailable,
    /// A wait-for dependency could not be installed because the target
    /// transaction's `NoMoreWaitFors` flag is set (starvation prevention).
    WaitForRefused,
    /// Deadlock detected among pessimistic transactions; this transaction was
    /// chosen as the victim.
    DeadlockVictim,
    /// A single-version lock request timed out (the 1V engine breaks
    /// deadlocks with timeouts).
    LockTimeout {
        /// Table whose lock partition timed out.
        table: TableId,
    },
    /// The requested table does not exist.
    TableNotFound(TableId),
    /// The requested index does not exist on the table.
    IndexNotFound(TableId, IndexId),
    /// A range predicate was applied to an index that is not ordered (hash
    /// indexes only support equality probes).
    IndexNotOrdered(TableId, IndexId),
    /// An insert would create a duplicate in a unique index.
    DuplicateKey {
        /// Table that rejected the insert.
        table: TableId,
        /// Index on which the duplicate was found.
        index: IndexId,
    },
    /// A row did not contain enough bytes for the key extractor of an index.
    RowTooShort {
        /// Number of bytes required by the extractor.
        needed: usize,
        /// Number of bytes actually present.
        actual: usize,
    },
    /// An operation was attempted on a transaction that has already finished.
    TransactionClosed,
    /// A redo-log record failed to decode (bad checksum, malformed body).
    /// Distinct from a torn tail, which recovery tolerates silently: a torn
    /// tail is missing bytes at the end of the file, corruption is wrong
    /// bytes inside the valid region.
    LogCorrupt {
        /// Byte offset of the record frame that failed to decode.
        offset: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A checkpoint file or its manifest failed validation (magic mismatch,
    /// missing trailer, malformed body). Distinct from [`MmdbError::LogCorrupt`]
    /// only in what it names: a checkpoint that cannot be trusted must never
    /// be loaded, because a half-loaded checkpoint silently loses rows.
    CheckpointInvalid {
        /// What was wrong with it.
        reason: &'static str,
    },
    /// An I/O error while writing or reading the redo log. Carries the
    /// stringified `std::io::Error` (which is neither `Clone` nor `Eq`).
    LogIo(String),
    /// Internal invariant violation; indicates a bug rather than a user or
    /// workload condition.
    Internal(&'static str),
}

impl MmdbError {
    /// True when the error is a concurrency-control abort that a workload
    /// driver should treat as a normal, retryable outcome rather than a bug.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MmdbError::WriteWriteConflict { .. }
                | MmdbError::ReadValidationFailed
                | MmdbError::PhantomDetected
                | MmdbError::CommitDependencyFailed
                | MmdbError::Aborted
                | MmdbError::ReadLockUnavailable
                | MmdbError::WaitForRefused
                | MmdbError::DeadlockVictim
                | MmdbError::LockTimeout { .. }
        )
    }

    /// True when the error is a *contention-class* abort — the transaction
    /// lost a data race with another transaction (conflict, validation or
    /// phantom failure, deadlock, refused or timed-out wait, cascaded
    /// commit-dependency abort). These feed the adaptive policy's
    /// [`ContentionMonitor`](crate::contention::ContentionMonitor); a
    /// voluntary [`MmdbError::Aborted`] or a usage error does not.
    pub fn is_contention(&self) -> bool {
        self.is_retryable() && !matches!(self, MmdbError::Aborted)
    }

    /// Short machine-friendly label for statistics buckets.
    pub fn kind(&self) -> &'static str {
        match self {
            MmdbError::WriteWriteConflict { .. } => "write_write_conflict",
            MmdbError::ReadValidationFailed => "read_validation_failed",
            MmdbError::PhantomDetected => "phantom_detected",
            MmdbError::CommitDependencyFailed => "commit_dependency_failed",
            MmdbError::Aborted => "aborted",
            MmdbError::ReadLockUnavailable => "read_lock_unavailable",
            MmdbError::WaitForRefused => "wait_for_refused",
            MmdbError::DeadlockVictim => "deadlock_victim",
            MmdbError::LockTimeout { .. } => "lock_timeout",
            MmdbError::TableNotFound(_) => "table_not_found",
            MmdbError::IndexNotFound(_, _) => "index_not_found",
            MmdbError::IndexNotOrdered(_, _) => "index_not_ordered",
            MmdbError::DuplicateKey { .. } => "duplicate_key",
            MmdbError::RowTooShort { .. } => "row_too_short",
            MmdbError::TransactionClosed => "transaction_closed",
            MmdbError::LogCorrupt { .. } => "log_corrupt",
            MmdbError::CheckpointInvalid { .. } => "checkpoint_invalid",
            MmdbError::LogIo(_) => "log_io",
            MmdbError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for MmdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmdbError::WriteWriteConflict { txn, holder } => match holder {
                Some(h) => write!(f, "write-write conflict: {txn} lost to {h}"),
                None => write!(f, "write-write conflict: {txn} lost to a concurrent writer"),
            },
            MmdbError::ReadValidationFailed => write!(
                f,
                "read validation failed: a read version is no longer visible at commit time"
            ),
            MmdbError::PhantomDetected => {
                write!(f, "phantom detected: a repeated scan returned new versions")
            }
            MmdbError::CommitDependencyFailed => write!(
                f,
                "a transaction this one speculatively depended on aborted"
            ),
            MmdbError::Aborted => write!(f, "transaction aborted"),
            MmdbError::ReadLockUnavailable => write!(
                f,
                "read lock unavailable (count saturated or NoMoreReadLocks set)"
            ),
            MmdbError::WaitForRefused => {
                write!(f, "wait-for dependency refused (NoMoreWaitFors set)")
            }
            MmdbError::DeadlockVictim => write!(f, "chosen as deadlock victim"),
            MmdbError::LockTimeout { table } => write!(f, "lock wait timed out on table {table:?}"),
            MmdbError::TableNotFound(t) => write!(f, "table {t:?} not found"),
            MmdbError::IndexNotFound(t, i) => write!(f, "index {i:?} not found on table {t:?}"),
            MmdbError::IndexNotOrdered(t, i) => write!(
                f,
                "index {i:?} of table {t:?} is not ordered: range scans need an ordered index"
            ),
            MmdbError::DuplicateKey { table, index } => write!(
                f,
                "duplicate key in unique index {index:?} of table {table:?}"
            ),
            MmdbError::RowTooShort { needed, actual } => write!(
                f,
                "row too short for key extractor: need {needed} bytes, have {actual}"
            ),
            MmdbError::TransactionClosed => write!(f, "transaction already committed or aborted"),
            MmdbError::LogCorrupt { offset, reason } => {
                write!(f, "redo log corrupt at byte offset {offset}: {reason}")
            }
            MmdbError::CheckpointInvalid { reason } => {
                write!(f, "invalid checkpoint: {reason}")
            }
            MmdbError::LogIo(msg) => write!(f, "redo log I/O error: {msg}"),
            MmdbError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MmdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(MmdbError::WriteWriteConflict {
            txn: TxnId(1),
            holder: None
        }
        .is_retryable());
        assert!(MmdbError::ReadValidationFailed.is_retryable());
        assert!(MmdbError::PhantomDetected.is_retryable());
        assert!(MmdbError::DeadlockVictim.is_retryable());
        assert!(MmdbError::LockTimeout { table: TableId(0) }.is_retryable());
        assert!(!MmdbError::TableNotFound(TableId(1)).is_retryable());
        assert!(!MmdbError::Internal("x").is_retryable());
        assert!(!MmdbError::TransactionClosed.is_retryable());
        assert!(!MmdbError::LogCorrupt {
            offset: 12,
            reason: "checksum mismatch"
        }
        .is_retryable());
        assert!(!MmdbError::LogIo("disk full".into()).is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = MmdbError::WriteWriteConflict {
            txn: TxnId(4),
            holder: Some(TxnId(9)),
        };
        let s = e.to_string();
        assert!(s.contains("Txn(4)") && s.contains("Txn(9)"));
        assert_eq!(e.kind(), "write_write_conflict");
    }

    #[test]
    fn kinds_are_distinct_for_abort_reasons() {
        let kinds = [
            MmdbError::ReadValidationFailed.kind(),
            MmdbError::PhantomDetected.kind(),
            MmdbError::CommitDependencyFailed.kind(),
            MmdbError::DeadlockVictim.kind(),
        ];
        let mut dedup = kinds.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }
}
