//! Hashing helpers for mapping keys to hash-index buckets.
//!
//! The paper sizes its hash tables so there are no collisions and hashes on
//! the index key; we use a cheap, well-mixing multiplicative hash
//! (Stafford/SplitMix64 finalizer) which is more than good enough for bucket
//! selection and costs a handful of instructions — important because every
//! read and write goes through it.

/// Mix a 64-bit key into a well-distributed 64-bit hash (SplitMix64 finalizer).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a key to a bucket slot given a bucket count.
///
/// `bucket_count` does not need to be a power of two; we use the high bits of
/// the mixed hash via the widening-multiply trick which avoids an expensive
/// modulo on the hot path.
#[inline]
pub fn bucket_of(key: u64, bucket_count: usize) -> usize {
    debug_assert!(bucket_count > 0);
    let h = mix64(key);
    // Multiply-shift range reduction: (h * n) >> 64.
    (((h as u128) * (bucket_count as u128)) >> 64) as usize
}

/// Hash an arbitrary byte slice to a 64-bit key (FNV-1a followed by a final
/// mix). Used by [`crate::row::KeySpec::BytesAt`] extractors, e.g. for string
/// keys like TATP's `sub_nbr`.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(1), mix64(2));
        // Sequential keys should land in mostly distinct hash values.
        let distinct: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(distinct.len(), 10_000);
    }

    #[test]
    fn bucket_of_in_range() {
        for n in [1usize, 2, 3, 17, 1024, 1_000_003] {
            for k in 0..1000u64 {
                assert!(bucket_of(k, n) < n, "bucket out of range for n={n}");
            }
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let n = 64;
        let mut counts = vec![0usize; n];
        let samples = 64_000u64;
        for k in 0..samples {
            counts[bucket_of(k, n)] += 1;
        }
        let expected = samples as usize / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {i} has skewed count {c} (expected ~{expected})"
            );
        }
    }

    #[test]
    fn hash_bytes_differs_on_content() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"aa"));
    }
}
