//! Strongly-typed identifiers and timestamp constants.
//!
//! The paper stores timestamps and transaction IDs in the same 64-bit version
//! header fields, distinguished by a tag bit (§2.3). To make that encoding
//! safe we keep timestamps to 63 bits and transaction IDs to 54 bits (the
//! width of the `WriteLock` sub-field of the pessimistic record lock,
//! §4.1.1), and wrap both in newtypes so they cannot be confused in APIs.

use std::fmt;

/// A logical commit/begin timestamp drawn from the global monotonic counter.
///
/// Valid timestamps occupy 63 bits; the maximum value [`INFINITY_TS`] denotes
/// "infinity" (a version that is still the latest, i.e. has not been
/// superseded).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// Largest representable timestamp, used as "infinity" in version End fields.
pub const INFINITY_TS: Timestamp = Timestamp((1u64 << 63) - 1);

/// Transaction identifier. Limited to 54 bits so it fits in the `WriteLock`
/// sub-field of the pessimistic lock word (§4.1.1).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Largest representable transaction ID (54 bits, all ones is reserved as the
/// "no writer" sentinel inside lock words).
pub const MAX_TXN_ID: u64 = (1u64 << 54) - 2;

/// Identifier of a table within a database.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

/// Identifier of an index within a table (dense, starting at 0).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexId(pub u32);

/// A 64-bit index key produced by a [`crate::row::KeySpec`] extractor.
pub type Key = u64;

impl Timestamp {
    /// The zero timestamp: earlier than every timestamp the clock hands out.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Returns true if this timestamp is the "infinity" sentinel.
    #[inline]
    pub fn is_infinity(self) -> bool {
        self == INFINITY_TS
    }

    /// Raw 63-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl TxnId {
    /// Raw 54-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinity() {
            write!(f, "Ts(inf)")
        } else {
            write!(f, "Ts({})", self.0)
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txn({})", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_is_largest() {
        assert!(Timestamp(0) < INFINITY_TS);
        assert!(Timestamp(u64::MAX >> 1) <= INFINITY_TS);
        assert!(INFINITY_TS.is_infinity());
        assert!(!Timestamp(17).is_infinity());
    }

    #[test]
    fn timestamp_ordering_matches_raw() {
        assert!(Timestamp(3) < Timestamp(4));
        assert_eq!(Timestamp(5), Timestamp(5));
        assert_eq!(Timestamp(9).raw(), 9);
    }

    #[test]
    fn txn_id_bounds() {
        assert_eq!(MAX_TXN_ID, (1u64 << 54) - 2);
        assert_eq!(TxnId(42).raw(), 42);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Timestamp(7)), "Ts(7)");
        assert_eq!(format!("{:?}", INFINITY_TS), "Ts(inf)");
        assert_eq!(format!("{}", TxnId(3)), "Txn(3)");
    }
}
