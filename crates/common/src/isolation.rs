//! Isolation levels and concurrency-mode selection.

/// Transaction isolation levels supported by all three engines (§2, §3.4).
///
/// The multiversion engines implement them exactly as the paper describes:
///
/// * **ReadCommitted** — read as of "now" (always the latest committed
///   version); no read tracking or validation.
/// * **SnapshotIsolation** — read as of the transaction's begin time; no
///   validation.
/// * **RepeatableRead** — read stability only: the optimistic scheme
///   validates its ReadSet at commit, the pessimistic scheme read-locks the
///   versions it reads; phantoms are not prevented.
/// * **Serializable** — read stability *and* phantom avoidance: the
///   optimistic scheme additionally repeats its scans during validation, the
///   pessimistic scheme additionally takes bucket locks.
///
/// The single-version engine maps ReadCommitted to cursor-stability style
/// short read locks and treats SnapshotIsolation as RepeatableRead (it has no
/// snapshots to offer — this is exactly the limitation that motivates
/// multiversioning).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsolationLevel {
    /// Only read committed data; each read sees the latest committed version.
    ReadCommitted,
    /// All reads are as of the transaction's begin time.
    SnapshotIsolation,
    /// Reads are stable (re-readable) but phantoms may appear.
    RepeatableRead,
    /// Full serializability: read stability plus phantom avoidance.
    Serializable,
}

impl IsolationLevel {
    /// Does this level require read stability (read locks / read validation)?
    #[inline]
    pub fn requires_read_stability(self) -> bool {
        matches!(
            self,
            IsolationLevel::RepeatableRead | IsolationLevel::Serializable
        )
    }

    /// Does this level require phantom avoidance (bucket locks / rescans)?
    #[inline]
    pub fn requires_phantom_protection(self) -> bool {
        matches!(self, IsolationLevel::Serializable)
    }

    /// Does this level read as of the transaction begin time (snapshot) as
    /// opposed to the current time?
    ///
    /// Per §3.1 and §4.3.1: serializable, repeatable-read and snapshot
    /// transactions in the optimistic scheme use the begin time; in the
    /// pessimistic scheme only snapshot isolation does (all other levels read
    /// the latest version, which their locks then keep stable).
    #[inline]
    pub fn optimistic_reads_at_begin(self) -> bool {
        !matches!(self, IsolationLevel::ReadCommitted)
    }

    /// All isolation levels, weakest to strongest (useful for sweeps).
    pub const ALL: [IsolationLevel; 4] = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::RepeatableRead,
        IsolationLevel::Serializable,
    ];

    /// Short label used in benchmark output ("RC", "SI", "RR", "SER").
    pub fn label(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::RepeatableRead => "RR",
            IsolationLevel::Serializable => "SER",
        }
    }
}

/// Which concurrency-control scheme a multiversion transaction runs under.
///
/// The paper's two schemes are mutually compatible (§4.5): optimistic and
/// pessimistic transactions may run concurrently against the same database,
/// so the mode is a per-transaction property rather than a per-database one.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConcurrencyMode {
    /// Validation-based scheme of §3 ("MV/O").
    Optimistic,
    /// Locking-based scheme of §4 ("MV/L").
    Pessimistic,
}

impl ConcurrencyMode {
    /// Label used in benchmark output ("MV/O" or "MV/L").
    pub fn label(self) -> &'static str {
        match self {
            ConcurrencyMode::Optimistic => "MV/O",
            ConcurrencyMode::Pessimistic => "MV/L",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_and_phantom_requirements() {
        use IsolationLevel::*;
        assert!(!ReadCommitted.requires_read_stability());
        assert!(!SnapshotIsolation.requires_read_stability());
        assert!(RepeatableRead.requires_read_stability());
        assert!(Serializable.requires_read_stability());

        assert!(!RepeatableRead.requires_phantom_protection());
        assert!(Serializable.requires_phantom_protection());
    }

    #[test]
    fn read_committed_reads_now() {
        assert!(!IsolationLevel::ReadCommitted.optimistic_reads_at_begin());
        assert!(IsolationLevel::Serializable.optimistic_reads_at_begin());
        assert!(IsolationLevel::SnapshotIsolation.optimistic_reads_at_begin());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = IsolationLevel::ALL.iter().map(|l| l.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
        assert_eq!(ConcurrencyMode::Optimistic.label(), "MV/O");
        assert_eq!(ConcurrencyMode::Pessimistic.label(), "MV/L");
    }

    #[test]
    fn ordering_reflects_strength() {
        assert!(IsolationLevel::ReadCommitted < IsolationLevel::Serializable);
        assert!(IsolationLevel::SnapshotIsolation < IsolationLevel::RepeatableRead);
    }
}
