//! # mmdb-common
//!
//! Shared primitives for the `mmdb` main-memory database, a reproduction of
//! *"High-Performance Concurrency Control Mechanisms for Main-Memory
//! Databases"* (Larson et al., VLDB 2011).
//!
//! This crate is dependency-light and holds everything the storage engines,
//! workload generators and benchmark harness need to agree on:
//!
//! * [`word`] — the tagged 64-bit `Begin`/`End` words stored in every version
//!   header. A word holds either a commit timestamp or transaction metadata
//!   (a transaction ID, and for the pessimistic scheme an embedded record
//!   lock with `NoMoreReadLocks` / `ReadLockCount` / `WriteLock` sub-fields).
//! * [`clock`] — the global monotonic timestamp counter and transaction-ID
//!   allocator. Acquiring a timestamp is a single atomic increment, the only
//!   critical section in the whole system (paper §6).
//! * [`ids`] — strongly-typed identifiers ([`TxnId`], [`Timestamp`],
//!   [`TableId`], [`IndexId`]).
//! * [`isolation`] — isolation levels and the optimistic/pessimistic
//!   concurrency mode selector.
//! * [`durability`] — the per-transaction Async/Sync commit-durability knob
//!   (paper-faithful asynchronous commit vs wait-for-group-commit-flush).
//! * [`row`] — byte rows, key extraction specifications and table/index
//!   schemas.
//! * [`engine`] — the [`Engine`]/[`EngineTxn`]
//!   abstraction the three engines (MV/O, MV/L, 1V) implement, so workloads
//!   and experiments are written once.
//! * [`error`] — the shared error type.
//! * [`hash`] — the multiplicative hash used to map keys to buckets.
//! * [`stats`] — lightweight atomic counters used by engines to report
//!   aborts, validation failures, waits, and garbage-collection activity.
//! * [`contention`] — windowed conflict telemetry (EWMA'd score with
//!   hysteresis) that adaptive engines consult to pick a concurrency mode
//!   per transaction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod contention;
pub mod durability;
pub mod engine;
pub mod error;
pub mod hash;
pub mod ids;
pub mod isolation;
pub mod row;
pub mod stats;
pub mod word;

pub use clock::GlobalClock;
pub use contention::ContentionMonitor;
pub use durability::{CheckpointPolicy, Durability};
pub use engine::{Engine, EngineTxn};
pub use error::{MmdbError, Result};
pub use ids::{IndexId, Key, TableId, Timestamp, TxnId, INFINITY_TS, MAX_TXN_ID};
pub use isolation::{ConcurrencyMode, IsolationLevel};
pub use row::{IndexSpec, KeySpec, Row, TableSpec};
pub use word::{BeginWord, EndWord, LockWord};
