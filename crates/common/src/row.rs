//! Rows, key extraction, and table/index schemas.
//!
//! The engines store rows as opaque byte payloads ([`Row`] = [`bytes::Bytes`])
//! and index them by 64-bit keys extracted according to a per-index
//! [`KeySpec`]. This keeps the storage layer monomorphic and cheap while
//! still supporting multi-table, multi-index workloads such as TATP (which
//! packs its typed records into fixed layouts and declares the key offsets).

use bytes::Bytes;

use crate::error::{MmdbError, Result};
use crate::hash::hash_bytes;
use crate::ids::Key;

/// A row payload. Cheaply cloneable (reference counted), immutable once
/// stored — updates always create a new version with a new payload, exactly
/// as the multiversion engine requires.
pub type Row = Bytes;

/// How an index derives its 64-bit key from a row payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeySpec {
    /// Read a little-endian `u64` at the given byte offset.
    U64At(usize),
    /// Read a little-endian `u32` at the given byte offset (zero-extended).
    U32At(usize),
    /// Hash `len` bytes starting at `offset` (for string or composite keys).
    BytesAt {
        /// Byte offset of the field within the row.
        offset: usize,
        /// Length of the field in bytes.
        len: usize,
    },
}

impl KeySpec {
    /// Extract the index key from a row.
    pub fn key_of(&self, row: &[u8]) -> Result<Key> {
        match *self {
            KeySpec::U64At(offset) => {
                let end = offset + 8;
                let slice = row.get(offset..end).ok_or(MmdbError::RowTooShort {
                    needed: end,
                    actual: row.len(),
                })?;
                Ok(u64::from_le_bytes(
                    slice.try_into().expect("slice is 8 bytes"),
                ))
            }
            KeySpec::U32At(offset) => {
                let end = offset + 4;
                let slice = row.get(offset..end).ok_or(MmdbError::RowTooShort {
                    needed: end,
                    actual: row.len(),
                })?;
                Ok(u32::from_le_bytes(slice.try_into().expect("slice is 4 bytes")) as u64)
            }
            KeySpec::BytesAt { offset, len } => {
                let end = offset + len;
                let slice = row.get(offset..end).ok_or(MmdbError::RowTooShort {
                    needed: end,
                    actual: row.len(),
                })?;
                Ok(hash_bytes(slice))
            }
        }
    }

    /// Number of row bytes this extractor needs.
    pub fn min_row_len(&self) -> usize {
        match *self {
            KeySpec::U64At(offset) => offset + 8,
            KeySpec::U32At(offset) => offset + 4,
            KeySpec::BytesAt { offset, len } => offset + len,
        }
    }
}

/// Declaration of one index on a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSpec {
    /// Human-readable name (used in error messages and reports).
    pub name: String,
    /// How the index key is derived from a row.
    pub key: KeySpec,
    /// Number of hash buckets. The paper sizes tables so there are no
    /// collisions; callers typically pass ~the expected row count. Ignored by
    /// ordered indexes (a skip list has no buckets).
    pub buckets: usize,
    /// Whether the index enforces uniqueness on insert.
    pub unique: bool,
    /// Whether the index keeps its keys ordered (a lock-free skip list in the
    /// MV engines), making it eligible for range scans ([`SearchPred::Range`]).
    /// Ordered indexes only make sense for [`KeySpec::U64At`] / `U32At` keys;
    /// a `BytesAt` key is hashed, so its order is meaningless.
    pub ordered: bool,
}

impl IndexSpec {
    /// Convenience constructor for a unique index on a `u64` field.
    pub fn unique_u64(name: impl Into<String>, offset: usize, buckets: usize) -> Self {
        IndexSpec {
            name: name.into(),
            key: KeySpec::U64At(offset),
            buckets,
            unique: true,
            ordered: false,
        }
    }

    /// Convenience constructor for a non-unique index on a `u64` field.
    pub fn multi_u64(name: impl Into<String>, offset: usize, buckets: usize) -> Self {
        IndexSpec {
            name: name.into(),
            key: KeySpec::U64At(offset),
            buckets,
            unique: false,
            ordered: false,
        }
    }

    /// Convenience constructor for an ordered (range-scannable) non-unique
    /// index on a `u64` field.
    pub fn ordered_u64(name: impl Into<String>, offset: usize) -> Self {
        IndexSpec {
            name: name.into(),
            key: KeySpec::U64At(offset),
            buckets: 0,
            unique: false,
            ordered: true,
        }
    }
}

/// A search predicate over one index: the argument of a scan.
///
/// Equality probes work on every index; range predicates require an
/// [`ordered`](IndexSpec::ordered) index. Phantom protection is taken at the
/// granularity of the predicate (§4.3 generalized): an optimistic
/// serializable transaction re-runs the predicate at commit, a pessimistic
/// one locks it (hash bucket for `Eq`, key range for `Range`) so inserters of
/// matching keys must wait behind the scanner.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SearchPred {
    /// Exactly this key.
    Eq(Key),
    /// Every key in the **inclusive** interval `[lo, hi]`.
    Range {
        /// Lower bound (inclusive).
        lo: Key,
        /// Upper bound (inclusive).
        hi: Key,
    },
}

impl SearchPred {
    /// Does `key` satisfy the predicate?
    #[inline]
    pub fn matches(&self, key: Key) -> bool {
        match *self {
            SearchPred::Eq(k) => key == k,
            SearchPred::Range { lo, hi } => lo <= key && key <= hi,
        }
    }
}

/// Reusable buffer for per-index key extraction (cleared, never freed).
///
/// The write path extracts every index key of a row at least once per
/// insert/update (uniqueness checks, bucket locks, the version header), and
/// a fresh `Vec<Key>` per extraction is the single largest allocation source
/// on that path. Transactions keep one `KeyScratch` and pass it to
/// `keys_into`-style extractors; after warmup the capacity is stable and
/// extraction allocates nothing (pinned by `crates/core/tests/alloc_free.rs`).
#[derive(Debug, Default)]
pub struct KeyScratch {
    keys: Vec<Key>,
}

impl KeyScratch {
    /// Create an empty scratch.
    pub fn new() -> KeyScratch {
        KeyScratch::default()
    }

    /// The extracted keys, in index order.
    #[inline]
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Clear without releasing capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Clear, then refill from `specs` applied to `row`. Capacity is reused.
    pub fn extract_from<'a, I>(&mut self, specs: I, row: &[u8]) -> Result<()>
    where
        I: IntoIterator<Item = &'a KeySpec>,
    {
        self.keys.clear();
        for spec in specs {
            self.keys.push(spec.key_of(row)?);
        }
        Ok(())
    }

    /// Consume the scratch, returning the keys as an owned `Vec` (compat
    /// shim for the legacy `keys_of` API).
    pub fn into_vec(self) -> Vec<Key> {
        self.keys
    }
}

/// Declaration of a table: a name plus one or more indexes. Index 0 is the
/// primary index (every row must be reachable through every index — there is
/// no direct access to records except via an index, §2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Human-readable table name.
    pub name: String,
    /// Indexes on the table; must be non-empty.
    pub indexes: Vec<IndexSpec>,
}

impl TableSpec {
    /// Create a table spec with a single unique primary hash index on a
    /// little-endian `u64` key stored at byte offset 0 of each row.
    pub fn keyed_u64(name: impl Into<String>, buckets: usize) -> Self {
        TableSpec {
            name: name.into(),
            indexes: vec![IndexSpec::unique_u64("pk", 0, buckets)],
        }
    }

    /// Extract the key of `row` under every index into `scratch` (index
    /// order, allocation-free after warmup).
    pub fn keys_into(&self, row: &[u8], scratch: &mut KeyScratch) -> Result<()> {
        scratch.extract_from(self.indexes.iter().map(|idx| &idx.key), row)
    }

    /// Add an extra index and return self (builder style).
    pub fn with_index(mut self, index: IndexSpec) -> Self {
        self.indexes.push(index);
        self
    }
}

/// Helpers for building small fixed-layout rows used by the workload
/// generators and examples.
pub mod rowbuf {
    use super::{IndexSpec, Row, TableSpec};

    /// Keys per secondary-index group of [`grouped_row`]: a short (8-row)
    /// equality scan, the paper's short-scan shape.
    pub const GROUP_SIZE: u64 = 8;

    /// Build a 24-byte row `[pk: u64][group: u64][8 filler bytes]`, where
    /// `group` buckets [`GROUP_SIZE`] consecutive keys. This is the shared
    /// read-path fixture: the `repro perf` experiment, the `readpath`
    /// criterion bench and the zero-allocation regression test all measure
    /// exactly this shape, so it lives here once.
    pub fn grouped_row(key: u64) -> Row {
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(key / GROUP_SIZE).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        Row::from(bytes)
    }

    /// Table spec matching [`grouped_row`]: unique primary key plus a
    /// non-unique `group` index.
    pub fn grouped_spec(rows: u64) -> TableSpec {
        TableSpec::keyed_u64("readpath", rows as usize).with_index(IndexSpec::multi_u64(
            "group",
            8,
            (rows / GROUP_SIZE) as usize,
        ))
    }

    /// Build a row consisting of a `u64` key followed by `payload_len` filler
    /// bytes derived from `fill` — the paper's homogeneous workload uses
    /// 24-byte rows with a unique key.
    pub fn keyed_row(key: u64, payload_len: usize, fill: u8) -> Row {
        let mut v = Vec::with_capacity(8 + payload_len);
        v.extend_from_slice(&key.to_le_bytes());
        v.resize(8 + payload_len, fill);
        Row::from(v)
    }

    /// Read the leading `u64` key of a row built by [`keyed_row`].
    pub fn key_of(row: &[u8]) -> u64 {
        u64::from_le_bytes(row[0..8].try_into().expect("row has a u64 key prefix"))
    }

    /// Read the filler byte of a row built by [`keyed_row`] (detects lost
    /// updates in tests).
    pub fn fill_of(row: &[u8]) -> u8 {
        row.get(8).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_extraction() {
        let row = rowbuf::keyed_row(0xDEAD_BEEF_0102_0304, 16, 7);
        assert_eq!(
            KeySpec::U64At(0).key_of(&row).unwrap(),
            0xDEAD_BEEF_0102_0304
        );
        assert_eq!(rowbuf::key_of(&row), 0xDEAD_BEEF_0102_0304);
        assert_eq!(rowbuf::fill_of(&row), 7);
        assert_eq!(row.len(), 24);
    }

    #[test]
    fn u32_extraction_zero_extends() {
        let mut v = vec![0u8; 12];
        v[4..8].copy_from_slice(&0xAABBCCDDu32.to_le_bytes());
        assert_eq!(KeySpec::U32At(4).key_of(&v).unwrap(), 0xAABBCCDD);
    }

    #[test]
    fn bytes_extraction_hashes() {
        let a = b"subscriber-000001-row".to_vec();
        let b = b"subscriber-000002-row".to_vec();
        let spec = KeySpec::BytesAt { offset: 0, len: 17 };
        assert_ne!(spec.key_of(&a).unwrap(), spec.key_of(&b).unwrap());
        assert_eq!(spec.key_of(&a).unwrap(), spec.key_of(&a).unwrap());
    }

    #[test]
    fn short_row_is_rejected() {
        let row = vec![0u8; 4];
        let err = KeySpec::U64At(0).key_of(&row).unwrap_err();
        assert!(matches!(
            err,
            MmdbError::RowTooShort {
                needed: 8,
                actual: 4
            }
        ));
        assert_eq!(KeySpec::U64At(16).min_row_len(), 24);
    }

    #[test]
    fn search_pred_matching() {
        assert!(SearchPred::Eq(5).matches(5));
        assert!(!SearchPred::Eq(5).matches(6));
        let r = SearchPred::Range { lo: 3, hi: 7 };
        assert!(!r.matches(2));
        assert!(r.matches(3), "lower bound is inclusive");
        assert!(r.matches(5));
        assert!(r.matches(7), "upper bound is inclusive");
        assert!(!r.matches(8));
        let point = SearchPred::Range { lo: 4, hi: 4 };
        assert!(point.matches(4));
        assert!(!point.matches(5));
    }

    #[test]
    fn ordered_index_constructor() {
        let idx = IndexSpec::ordered_u64("by_key", 0);
        assert!(idx.ordered);
        assert!(!idx.unique);
        assert_eq!(idx.key, KeySpec::U64At(0));
        assert!(!IndexSpec::unique_u64("pk", 0, 8).ordered);
    }

    #[test]
    fn table_spec_builder() {
        let spec = TableSpec::keyed_u64("accounts", 1024).with_index(IndexSpec::multi_u64(
            "by_branch",
            8,
            256,
        ));
        assert_eq!(spec.indexes.len(), 2);
        assert!(spec.indexes[0].unique);
        assert!(!spec.indexes[1].unique);
        assert_eq!(spec.indexes[1].key, KeySpec::U64At(8));
    }
}
