//! Lightweight atomic counters engines use to report what happened during a
//! run: commits, aborts by reason, waits, speculative reads, garbage
//! collection activity. The workload driver snapshots these before/after a
//! measurement interval, so counters only ever increase.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::contention::ContentionMonitor;

/// Monotone event counters for one engine instance.
///
/// All counters use relaxed atomics: they are statistics, not
/// synchronization, and must stay cheap enough to leave enabled during
/// benchmarks.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Transactions that committed.
    pub commits: AtomicU64,
    /// Transactions that aborted for any reason.
    pub aborts: AtomicU64,
    /// Aborts caused by write-write conflicts (first-writer-wins).
    pub write_conflicts: AtomicU64,
    /// Aborts caused by optimistic read validation failure.
    pub validation_failures: AtomicU64,
    /// Aborts caused by phantom detection during validation.
    pub phantom_failures: AtomicU64,
    /// Aborts cascaded from a failed commit dependency.
    pub cascaded_aborts: AtomicU64,
    /// Aborts due to deadlock victims or lock timeouts.
    pub deadlock_aborts: AtomicU64,
    /// Commit dependencies taken (speculative reads / ignores).
    pub commit_dependencies: AtomicU64,
    /// Wait-for dependencies taken (pessimistic eager updates).
    pub wait_for_dependencies: AtomicU64,
    /// Times a transaction had to block before precommit or commit.
    pub commit_waits: AtomicU64,
    /// Versions created (inserts + updates).
    pub versions_created: AtomicU64,
    /// Versions reclaimed by the garbage collector.
    pub versions_collected: AtomicU64,
    /// Garbage collection passes executed.
    pub gc_passes: AtomicU64,
    /// Redo log records written.
    pub log_records: AtomicU64,
    /// Redo log bytes written.
    pub log_bytes: AtomicU64,
    /// Windowed contention telemetry (per-table + global EWMA'd conflict
    /// scores with hysteresis). Not part of [`StatsSnapshot`] — it is a
    /// decayed live signal, not a monotone counter; adaptive engines consult
    /// it at `begin` time.
    pub contention: ContentionMonitor,
}

/// A point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`EngineStats::commits`].
    pub commits: u64,
    /// See [`EngineStats::aborts`].
    pub aborts: u64,
    /// See [`EngineStats::write_conflicts`].
    pub write_conflicts: u64,
    /// See [`EngineStats::validation_failures`].
    pub validation_failures: u64,
    /// See [`EngineStats::phantom_failures`].
    pub phantom_failures: u64,
    /// See [`EngineStats::cascaded_aborts`].
    pub cascaded_aborts: u64,
    /// See [`EngineStats::deadlock_aborts`].
    pub deadlock_aborts: u64,
    /// See [`EngineStats::commit_dependencies`].
    pub commit_dependencies: u64,
    /// See [`EngineStats::wait_for_dependencies`].
    pub wait_for_dependencies: u64,
    /// See [`EngineStats::commit_waits`].
    pub commit_waits: u64,
    /// See [`EngineStats::versions_created`].
    pub versions_created: u64,
    /// See [`EngineStats::versions_collected`].
    pub versions_collected: u64,
    /// See [`EngineStats::gc_passes`].
    pub gc_passes: u64,
    /// See [`EngineStats::log_records`].
    pub log_records: u64,
    /// See [`EngineStats::log_bytes`].
    pub log_bytes: u64,
}

impl EngineStats {
    /// Create a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Take a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            write_conflicts: self.write_conflicts.load(Ordering::Relaxed),
            validation_failures: self.validation_failures.load(Ordering::Relaxed),
            phantom_failures: self.phantom_failures.load(Ordering::Relaxed),
            cascaded_aborts: self.cascaded_aborts.load(Ordering::Relaxed),
            deadlock_aborts: self.deadlock_aborts.load(Ordering::Relaxed),
            commit_dependencies: self.commit_dependencies.load(Ordering::Relaxed),
            wait_for_dependencies: self.wait_for_dependencies.load(Ordering::Relaxed),
            commit_waits: self.commit_waits.load(Ordering::Relaxed),
            versions_created: self.versions_created.load(Ordering::Relaxed),
            versions_collected: self.versions_collected.load(Ordering::Relaxed),
            gc_passes: self.gc_passes.load(Ordering::Relaxed),
            log_records: self.log_records.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Component-wise difference (`self - earlier`), for measuring an
    /// interval.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            write_conflicts: self.write_conflicts - earlier.write_conflicts,
            validation_failures: self.validation_failures - earlier.validation_failures,
            phantom_failures: self.phantom_failures - earlier.phantom_failures,
            cascaded_aborts: self.cascaded_aborts - earlier.cascaded_aborts,
            deadlock_aborts: self.deadlock_aborts - earlier.deadlock_aborts,
            commit_dependencies: self.commit_dependencies - earlier.commit_dependencies,
            wait_for_dependencies: self.wait_for_dependencies - earlier.wait_for_dependencies,
            commit_waits: self.commit_waits - earlier.commit_waits,
            versions_created: self.versions_created - earlier.versions_created,
            versions_collected: self.versions_collected - earlier.versions_collected,
            gc_passes: self.gc_passes - earlier.gc_passes,
            log_records: self.log_records - earlier.log_records,
            log_bytes: self.log_bytes - earlier.log_bytes,
        }
    }

    /// Abort rate over the interval (aborts / (commits + aborts)).
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let stats = EngineStats::new();
        EngineStats::bump(&stats.commits);
        EngineStats::bump(&stats.commits);
        EngineStats::bump(&stats.aborts);
        EngineStats::add(&stats.log_bytes, 128);
        let first = stats.snapshot();
        EngineStats::bump(&stats.commits);
        let second = stats.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.commits, 1);
        assert_eq!(delta.aborts, 0);
        assert_eq!(first.log_bytes, 128);
    }

    #[test]
    fn abort_rate() {
        let snap = StatsSnapshot {
            commits: 75,
            aborts: 25,
            ..Default::default()
        };
        assert!((snap.abort_rate() - 0.25).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().abort_rate(), 0.0);
    }
}
