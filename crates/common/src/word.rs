//! Tagged 64-bit `Begin` / `End` words stored in every version header.
//!
//! The paper (§2.3) stores either a timestamp or a transaction ID in the
//! `Begin` and `End` fields of a version, with one bit indicating which. The
//! pessimistic scheme (§4.1.1) further subdivides the non-timestamp form of
//! the `End` field into an embedded record lock:
//!
//! ```text
//! End word, ContentType = 1 (bit 63 set):
//!   bit 62        NoMoreReadLocks   no further read locks accepted
//!   bits 54..=61  ReadLockCount     number of read locks (max 255)
//!   bits 0..=53   WriteLock         ID of the write-locking transaction,
//!                                   or all-ones (= NO_WRITER) if none
//! ```
//!
//! The optimistic scheme only ever uses the `WriteLock` sub-field ("the End
//! field contains a transaction ID"), so both schemes share one encoding and
//! optimistic and pessimistic transactions can coexist (§4.5).
//!
//! All encodings round-trip losslessly; this is checked by unit tests and a
//! proptest in this module.

use crate::ids::{Timestamp, TxnId, INFINITY_TS, MAX_TXN_ID};

/// Bit 63: set when the word carries transaction metadata rather than a
/// timestamp.
const CONTENT_TAG: u64 = 1 << 63;
/// Bit 62 of a lock word: the `NoMoreReadLocks` starvation-prevention flag.
const NO_MORE_READ_LOCKS_BIT: u64 = 1 << 62;
/// Bit offset of the 8-bit `ReadLockCount` sub-field.
const READ_COUNT_SHIFT: u32 = 54;
/// Mask of the 8-bit `ReadLockCount` sub-field (before shifting).
const READ_COUNT_MASK: u64 = 0xFF << READ_COUNT_SHIFT;
/// Mask of the 54-bit `WriteLock` sub-field.
const WRITER_MASK: u64 = (1 << 54) - 1;
/// Sentinel stored in the `WriteLock` sub-field when no transaction holds the
/// write lock (all ones, "infinity" in the paper's terms).
const NO_WRITER: u64 = WRITER_MASK;

/// Maximum number of concurrent read locks a version can carry (§4.1.1: the
/// `ReadLockCount` field is 8 bits wide).
pub const MAX_READ_LOCKS: u8 = u8::MAX;

/// Decoded form of a version's `Begin` field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BeginWord {
    /// The version was created by a transaction that committed at this time.
    Timestamp(Timestamp),
    /// The version was created by this (possibly still active) transaction.
    Txn(TxnId),
}

impl BeginWord {
    /// Encode into the raw 64-bit representation stored in the version.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            BeginWord::Timestamp(ts) => {
                debug_assert!(ts.0 & CONTENT_TAG == 0, "timestamp overflows 63 bits");
                ts.0
            }
            BeginWord::Txn(id) => {
                debug_assert!(id.0 <= MAX_TXN_ID, "txn id overflows 54 bits");
                CONTENT_TAG | id.0
            }
        }
    }

    /// Decode from the raw 64-bit representation.
    #[inline]
    pub fn decode(raw: u64) -> Self {
        if raw & CONTENT_TAG == 0 {
            BeginWord::Timestamp(Timestamp(raw))
        } else {
            BeginWord::Txn(TxnId(raw & WRITER_MASK))
        }
    }

    /// Returns the timestamp if the word holds one.
    #[inline]
    pub fn as_timestamp(self) -> Option<Timestamp> {
        match self {
            BeginWord::Timestamp(ts) => Some(ts),
            BeginWord::Txn(_) => None,
        }
    }

    /// Returns the transaction ID if the word holds one.
    #[inline]
    pub fn as_txn(self) -> Option<TxnId> {
        match self {
            BeginWord::Txn(id) => Some(id),
            BeginWord::Timestamp(_) => None,
        }
    }
}

/// Decoded form of the embedded record lock stored in a version's `End`
/// field when its content tag is set (§4.1.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LockWord {
    /// When set, no further read locks are accepted (prevents an updater from
    /// being starved by a continuous stream of new readers).
    pub no_more_read_locks: bool,
    /// Number of transactions currently holding a read lock on the version.
    pub read_lock_count: u8,
    /// Transaction holding the write lock, if any.
    pub writer: Option<TxnId>,
}

impl LockWord {
    /// A lock word with no readers, no writer and the starvation flag clear.
    pub const EMPTY: LockWord = LockWord {
        no_more_read_locks: false,
        read_lock_count: 0,
        writer: None,
    };

    /// Lock word representing a bare write lock by `txn` (this is what the
    /// optimistic scheme stores when it "copies its transaction ID into the
    /// End field").
    #[inline]
    pub fn write_locked(txn: TxnId) -> Self {
        LockWord {
            no_more_read_locks: false,
            read_lock_count: 0,
            writer: Some(txn),
        }
    }

    /// Encode into the 63 payload bits of an End word (without the content
    /// tag bit).
    #[inline]
    fn payload(self) -> u64 {
        let mut w = 0u64;
        if self.no_more_read_locks {
            w |= NO_MORE_READ_LOCKS_BIT;
        }
        w |= (self.read_lock_count as u64) << READ_COUNT_SHIFT;
        match self.writer {
            Some(id) => {
                debug_assert!(id.0 <= MAX_TXN_ID);
                w |= id.0;
            }
            None => w |= NO_WRITER,
        }
        w
    }

    /// Decode from the 63 payload bits of an End word.
    #[inline]
    fn from_payload(raw: u64) -> Self {
        let writer_bits = raw & WRITER_MASK;
        LockWord {
            no_more_read_locks: raw & NO_MORE_READ_LOCKS_BIT != 0,
            read_lock_count: ((raw & READ_COUNT_MASK) >> READ_COUNT_SHIFT) as u8,
            writer: if writer_bits == NO_WRITER {
                None
            } else {
                Some(TxnId(writer_bits))
            },
        }
    }

    /// Copy with one more read lock. Returns `None` if the count is already
    /// saturated (the caller must abort, §4.1.1).
    #[inline]
    pub fn with_extra_reader(self) -> Option<Self> {
        if self.read_lock_count == MAX_READ_LOCKS {
            return None;
        }
        Some(LockWord {
            read_lock_count: self.read_lock_count + 1,
            ..self
        })
    }

    /// Copy with one read lock released.
    ///
    /// # Panics
    /// Panics in debug builds if no read locks are held.
    #[inline]
    pub fn with_reader_released(self) -> Self {
        debug_assert!(
            self.read_lock_count > 0,
            "releasing a read lock that is not held"
        );
        LockWord {
            read_lock_count: self.read_lock_count.saturating_sub(1),
            ..self
        }
    }

    /// Copy with the write lock set to `txn`.
    #[inline]
    pub fn with_writer(self, txn: TxnId) -> Self {
        LockWord {
            writer: Some(txn),
            ..self
        }
    }

    /// True if any transaction holds a read lock.
    #[inline]
    pub fn is_read_locked(self) -> bool {
        self.read_lock_count > 0
    }

    /// True if a transaction holds the write lock.
    #[inline]
    pub fn is_write_locked(self) -> bool {
        self.writer.is_some()
    }
}

/// Decoded form of a version's `End` field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EndWord {
    /// The version was superseded (or deleted) by a transaction that
    /// committed at this time; [`INFINITY_TS`] means it is still the latest.
    Timestamp(Timestamp),
    /// The version carries transaction metadata: a write-locking transaction
    /// and/or pessimistic read locks.
    Lock(LockWord),
}

impl EndWord {
    /// The End word of a freshly created, still-latest version.
    pub const LATEST: EndWord = EndWord::Timestamp(INFINITY_TS);

    /// End word representing a bare write lock by `txn` (optimistic update).
    #[inline]
    pub fn write_locked(txn: TxnId) -> Self {
        EndWord::Lock(LockWord::write_locked(txn))
    }

    /// Encode into the raw 64-bit representation stored in the version.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            EndWord::Timestamp(ts) => {
                debug_assert!(ts.0 & CONTENT_TAG == 0, "timestamp overflows 63 bits");
                ts.0
            }
            EndWord::Lock(lock) => CONTENT_TAG | lock.payload(),
        }
    }

    /// Decode from the raw 64-bit representation.
    #[inline]
    pub fn decode(raw: u64) -> Self {
        if raw & CONTENT_TAG == 0 {
            EndWord::Timestamp(Timestamp(raw))
        } else {
            EndWord::Lock(LockWord::from_payload(raw))
        }
    }

    /// Returns the timestamp if the word holds one.
    #[inline]
    pub fn as_timestamp(self) -> Option<Timestamp> {
        match self {
            EndWord::Timestamp(ts) => Some(ts),
            EndWord::Lock(_) => None,
        }
    }

    /// Returns the lock word if the word holds one.
    #[inline]
    pub fn as_lock(self) -> Option<LockWord> {
        match self {
            EndWord::Lock(l) => Some(l),
            EndWord::Timestamp(_) => None,
        }
    }

    /// The transaction holding the write lock, if any (works for both the
    /// optimistic "transaction ID in the End field" form and the pessimistic
    /// lock-word form).
    #[inline]
    pub fn writer(self) -> Option<TxnId> {
        match self {
            EndWord::Lock(l) => l.writer,
            EndWord::Timestamp(_) => None,
        }
    }

    /// True if this version is the latest committed version (End ==
    /// infinity), i.e. updatable without consulting the transaction table.
    #[inline]
    pub fn is_latest(self) -> bool {
        matches!(self, EndWord::Timestamp(ts) if ts.is_infinity())
    }
}

/// Raw-word helpers used on hot paths where we want to avoid constructing the
/// enum just to ask a single question.
pub mod raw {
    use super::*;

    /// Does this raw Begin/End word hold a plain timestamp?
    #[inline]
    pub fn is_timestamp(raw: u64) -> bool {
        raw & CONTENT_TAG == 0
    }

    /// Raw encoding of a timestamp word.
    #[inline]
    pub fn timestamp(ts: Timestamp) -> u64 {
        ts.0
    }

    /// Raw encoding of "infinity".
    #[inline]
    pub fn infinity() -> u64 {
        INFINITY_TS.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn begin_word_roundtrip_timestamp() {
        for ts in [0u64, 1, 100, INFINITY_TS.0] {
            let w = BeginWord::Timestamp(Timestamp(ts));
            assert_eq!(BeginWord::decode(w.encode()), w);
        }
    }

    #[test]
    fn begin_word_roundtrip_txn() {
        for id in [0u64, 1, 54, MAX_TXN_ID] {
            let w = BeginWord::Txn(TxnId(id));
            assert_eq!(BeginWord::decode(w.encode()), w);
        }
    }

    #[test]
    fn end_word_latest_is_infinity() {
        assert_eq!(EndWord::LATEST.as_timestamp(), Some(INFINITY_TS));
        assert!(EndWord::LATEST.is_latest());
        assert!(!EndWord::write_locked(TxnId(3)).is_latest());
    }

    #[test]
    fn lock_word_empty_has_no_owners() {
        let l = LockWord::EMPTY;
        assert!(!l.is_read_locked());
        assert!(!l.is_write_locked());
        assert_eq!(EndWord::decode(EndWord::Lock(l).encode()), EndWord::Lock(l));
    }

    #[test]
    fn lock_word_write_lock_roundtrip() {
        let l = LockWord::write_locked(TxnId(777));
        let raw = EndWord::Lock(l).encode();
        assert_eq!(EndWord::decode(raw).writer(), Some(TxnId(777)));
        assert!(!raw::is_timestamp(raw));
    }

    #[test]
    fn lock_word_reader_count_saturates() {
        let mut l = LockWord::EMPTY;
        for i in 0..MAX_READ_LOCKS {
            l = l.with_extra_reader().expect("below max");
            assert_eq!(l.read_lock_count, i + 1);
        }
        assert!(
            l.with_extra_reader().is_none(),
            "256th reader must be refused"
        );
    }

    #[test]
    fn lock_word_release_reader() {
        let l = LockWord::EMPTY
            .with_extra_reader()
            .unwrap()
            .with_extra_reader()
            .unwrap();
        let l = l.with_reader_released();
        assert_eq!(l.read_lock_count, 1);
    }

    #[test]
    fn lock_word_fields_are_independent() {
        let l = LockWord {
            no_more_read_locks: true,
            read_lock_count: 200,
            writer: Some(TxnId(MAX_TXN_ID)),
        };
        let decoded = EndWord::decode(EndWord::Lock(l).encode());
        assert_eq!(decoded, EndWord::Lock(l));
    }

    #[test]
    fn optimistic_write_lock_has_zero_readers() {
        let w = EndWord::write_locked(TxnId(9));
        let lock = w.as_lock().unwrap();
        assert_eq!(lock.read_lock_count, 0);
        assert!(!lock.no_more_read_locks);
        assert_eq!(lock.writer, Some(TxnId(9)));
    }

    #[test]
    fn end_timestamp_visible_as_timestamp() {
        let w = EndWord::Timestamp(Timestamp(42));
        assert_eq!(w.as_timestamp(), Some(Timestamp(42)));
        assert_eq!(w.writer(), None);
        assert!(raw::is_timestamp(w.encode()));
    }

    // ---- tag-flip edge cases (timestamp ↔ txn-id forms) ----

    #[test]
    fn tag_bit_separates_timestamp_and_txn_forms() {
        // The all-ones 63-bit timestamp (infinity) must still decode as a
        // timestamp — its tag bit is clear.
        let inf = BeginWord::Timestamp(INFINITY_TS);
        assert!(raw::is_timestamp(inf.encode()));
        assert_eq!(BeginWord::decode(inf.encode()), inf);
        // The same low bits with the tag set decode as a transaction ID, not
        // a timestamp: a txn id of 0 is raw CONTENT_TAG alone.
        let t0 = BeginWord::Txn(TxnId(0));
        assert!(!raw::is_timestamp(t0.encode()));
        assert_eq!(t0.encode(), 1u64 << 63);
        assert_eq!(BeginWord::decode(t0.encode()), t0);
        // Timestamp 0 and txn 0 share low bits but differ by the tag.
        assert_ne!(BeginWord::Timestamp(Timestamp(0)).encode(), t0.encode());
    }

    #[test]
    fn same_numeric_value_roundtrips_through_both_forms() {
        for v in [0u64, 1, 1234, MAX_TXN_ID] {
            let as_ts = BeginWord::Timestamp(Timestamp(v));
            let as_txn = BeginWord::Txn(TxnId(v));
            assert_ne!(as_ts.encode(), as_txn.encode(), "tag must disambiguate {v}");
            assert_eq!(
                BeginWord::decode(as_ts.encode()).as_timestamp(),
                Some(Timestamp(v))
            );
            assert_eq!(BeginWord::decode(as_txn.encode()).as_txn(), Some(TxnId(v)));
        }
    }

    #[test]
    fn end_word_tag_flip_between_lock_and_timestamp() {
        // Finalizing a version flips Lock → Timestamp; the raw words must
        // land on opposite sides of the tag bit.
        let locked = EndWord::write_locked(TxnId(5));
        let finalized = EndWord::Timestamp(Timestamp(500));
        assert!(!raw::is_timestamp(locked.encode()));
        assert!(raw::is_timestamp(finalized.encode()));
        assert_eq!(raw::infinity(), INFINITY_TS.0);
        assert_eq!(raw::timestamp(Timestamp(500)), 500);
        assert_eq!(EndWord::decode(raw::infinity()), EndWord::LATEST);
    }

    // ---- lock-word sub-field edge cases ----

    #[test]
    fn writer_id_zero_is_distinct_from_no_writer() {
        // WriteLock sub-field: all-ones is the NO_WRITER sentinel; txn id 0
        // is a real writer and must not collapse into it.
        let with_zero = LockWord::write_locked(TxnId(0));
        let without = LockWord::EMPTY;
        assert_ne!(
            EndWord::Lock(with_zero).encode(),
            EndWord::Lock(without).encode()
        );
        assert_eq!(
            EndWord::decode(EndWord::Lock(with_zero).encode()).writer(),
            Some(TxnId(0))
        );
        assert_eq!(
            EndWord::decode(EndWord::Lock(without).encode()).writer(),
            None
        );
    }

    #[test]
    fn max_txn_id_writer_does_not_overflow_into_sentinel() {
        // MAX_TXN_ID is the largest *encodable* writer; the all-ones value
        // one above it is reserved as NO_WRITER.
        let l = LockWord::write_locked(TxnId(MAX_TXN_ID));
        let decoded = EndWord::decode(EndWord::Lock(l).encode());
        assert_eq!(decoded.writer(), Some(TxnId(MAX_TXN_ID)));
        assert_eq!(
            MAX_TXN_ID + 1,
            (1u64 << 54) - 1,
            "sentinel sits directly above MAX_TXN_ID"
        );
    }

    #[test]
    fn saturated_reader_count_roundtrips_and_refuses_more() {
        let l = LockWord {
            no_more_read_locks: false,
            read_lock_count: MAX_READ_LOCKS,
            writer: None,
        };
        let decoded = EndWord::decode(EndWord::Lock(l).encode())
            .as_lock()
            .unwrap();
        assert_eq!(decoded.read_lock_count, MAX_READ_LOCKS);
        assert!(
            decoded.with_extra_reader().is_none(),
            "saturation must refuse reader 256"
        );
        // Releasing one reader reopens exactly one slot.
        let released = decoded.with_reader_released();
        assert_eq!(released.read_lock_count, MAX_READ_LOCKS - 1);
        assert_eq!(
            released.with_extra_reader().unwrap().read_lock_count,
            MAX_READ_LOCKS
        );
    }

    #[test]
    fn reader_count_never_bleeds_into_adjacent_fields() {
        // A full reader count with no flag and no writer must leave the
        // NoMoreReadLocks bit clear and the writer sentinel intact.
        let l = LockWord {
            no_more_read_locks: false,
            read_lock_count: u8::MAX,
            writer: None,
        };
        let decoded = EndWord::decode(EndWord::Lock(l).encode())
            .as_lock()
            .unwrap();
        assert!(!decoded.no_more_read_locks);
        assert_eq!(decoded.writer, None);
        // And the converse: flag + writer with zero readers.
        let l = LockWord {
            no_more_read_locks: true,
            read_lock_count: 0,
            writer: Some(TxnId(MAX_TXN_ID)),
        };
        let decoded = EndWord::decode(EndWord::Lock(l).encode())
            .as_lock()
            .unwrap();
        assert!(decoded.no_more_read_locks);
        assert_eq!(decoded.read_lock_count, 0);
        assert_eq!(decoded.writer, Some(TxnId(MAX_TXN_ID)));
    }

    #[test]
    fn no_more_read_locks_survives_reader_transitions() {
        let l = LockWord {
            no_more_read_locks: true,
            read_lock_count: 3,
            writer: Some(TxnId(9)),
        };
        let bumped = l.with_extra_reader().unwrap();
        assert!(bumped.no_more_read_locks);
        let released = bumped.with_reader_released().with_reader_released();
        assert!(released.no_more_read_locks);
        assert_eq!(released.writer, Some(TxnId(9)));
        let relocked = released.with_writer(TxnId(11));
        assert!(relocked.no_more_read_locks);
        assert_eq!(relocked.writer, Some(TxnId(11)));
    }

    proptest! {
        #[test]
        fn prop_begin_roundtrip(ts in 0u64..INFINITY_TS.0, id in 0u64..=MAX_TXN_ID) {
            let t = BeginWord::Timestamp(Timestamp(ts));
            prop_assert_eq!(BeginWord::decode(t.encode()), t);
            let x = BeginWord::Txn(TxnId(id));
            prop_assert_eq!(BeginWord::decode(x.encode()), x);
        }

        #[test]
        fn prop_end_roundtrip(
            ts in 0u64..INFINITY_TS.0,
            nomore in any::<bool>(),
            count in 0u8..=u8::MAX,
            writer in prop::option::of(0u64..=MAX_TXN_ID),
        ) {
            let t = EndWord::Timestamp(Timestamp(ts));
            prop_assert_eq!(EndWord::decode(t.encode()), t);
            let lock = LockWord { no_more_read_locks: nomore, read_lock_count: count, writer: writer.map(TxnId) };
            let w = EndWord::Lock(lock);
            prop_assert_eq!(EndWord::decode(w.encode()), w);
        }

        #[test]
        fn prop_reader_increment_never_touches_other_fields(
            nomore in any::<bool>(),
            count in 0u8..u8::MAX,
            writer in prop::option::of(0u64..=MAX_TXN_ID),
        ) {
            let lock = LockWord { no_more_read_locks: nomore, read_lock_count: count, writer: writer.map(TxnId) };
            let bumped = lock.with_extra_reader().unwrap();
            prop_assert_eq!(bumped.no_more_read_locks, nomore);
            prop_assert_eq!(bumped.writer, writer.map(TxnId));
            prop_assert_eq!(bumped.read_lock_count, count + 1);
        }
    }
}
