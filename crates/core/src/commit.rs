//! Preparation, commit, abort and postprocessing (§2.4 steps 3–5, §3.2–§3.3,
//! §4.3.2–§4.3.3).
//!
//! The flow at the end of a transaction:
//!
//! 1. **End of normal processing** — a pessimistic transaction releases its
//!    read locks and bucket locks and then waits until its `WaitForCounter`
//!    reaches zero (§4.3.1). Optimistic transactions normally have no
//!    wait-for dependencies, but can acquire them in mixed mode (§4.5).
//! 2. **Precommit** — acquire the end timestamp, switch to Preparing, and
//!    release outgoing wait-for dependencies (drain the WaitingTxnList).
//! 3. **Validation** (optimistic only) — re-check visibility of every read
//!    version as of the end timestamp, and repeat every registered scan to
//!    look for phantoms (§3.2, Figure 3).
//! 4. **Commit dependencies** — wait until `CommitDepCounter` is zero or the
//!    `AbortNow` flag forces a cascaded abort (§2.7).
//! 5. **Logging** — write the new versions / delete keys to the redo log.
//!    With [`Durability::Async`] (the paper's model) the transaction does
//!    not wait for I/O; with [`Durability::Sync`] it redeems the durability
//!    ticket the append issued and blocks — still in `Preparing`, so
//!    concurrent readers of its versions speculate through the ordinary
//!    commit-dependency machinery — until the group-commit flush covering
//!    its bytes completes.
//! 6. **Postprocessing** — propagate the end timestamp into the Begin/End
//!    fields of the written versions (or make them invisible after an
//!    abort), hand old versions to the garbage collector, resolve dependents
//!    and leave the transaction table.

use mmdb_common::durability::Durability;
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{IndexId, Timestamp};
use mmdb_common::isolation::ConcurrencyMode;
use mmdb_common::row::SearchPred;
use mmdb_common::stats::EngineStats;
use mmdb_common::word::{BeginWord, EndWord};
use mmdb_common::INFINITY_TS;

use mmdb_storage::gc::GcItem;
use mmdb_storage::log::{encode_frame_into, LogOpRef, Lsn};
use mmdb_storage::txn_table::TxnState;

use crate::txn::MvTransaction;
use crate::visibility::check_visibility;

impl MvTransaction {
    // ------------------------------------------------------------------
    // Lock release and the pre-precommit wait
    // ------------------------------------------------------------------

    /// Release all read locks, bucket locks and range locks held by this
    /// transaction. Drains by popping so the vectors keep their capacity for
    /// the next transaction that recycles these buffers.
    pub(crate) fn release_locks(&mut self) {
        while let Some(ptr) = self.read_locks.pop() {
            self.release_read_lock(ptr);
        }
        let guard = crossbeam::epoch::pin();
        while let Some(lock) = self.bucket_locks.pop() {
            if let Ok(table) = self.inner.store.table_in(lock.table, &guard) {
                if let Ok(locks) = table.bucket_locks(lock.index) {
                    locks.unlock(lock.bucket, self.handle.id());
                }
            }
        }
        while let Some(lock) = self.range_locks.pop() {
            if let Ok(table) = self.inner.store.table_in(lock.table, &guard) {
                if let Ok(locks) = table.range_locks(lock.index) {
                    locks.unlock(lock.lo, lock.hi, self.handle.id());
                }
            }
        }
    }

    /// §4.3.1: when a transaction reaches the end of normal processing it
    /// waits for its outstanding wait-for dependencies before it may
    /// precommit. Read and bucket locks are *not* released yet: they must be
    /// held until the end timestamp is acquired so that any writer blocked on
    /// them precommits strictly after us — otherwise a blocked writer could
    /// draw an earlier end timestamp than the reader that delayed it, and
    /// commit-timestamp order would no longer be a valid serialization order
    /// (caught by the cross-engine differential tests). Cycles this wait can
    /// form while locks are held are broken by the deadlock detector.
    fn end_normal_processing(&mut self) -> Result<()> {
        // No further incoming wait-for dependencies may be added: otherwise a
        // stream of new readers could postpone the precommit forever.
        self.handle.close_wait_fors();
        if self.handle.wait_for_count() > 0 {
            EngineStats::bump(&self.stats().commit_waits);
            let handle = &self.handle;
            let done = handle.wait_until(
                || handle.wait_for_count() <= 0 || handle.abort_requested(),
                self.inner.config.wait_timeout,
            );
            if self.handle.abort_requested() {
                return Err(MmdbError::Aborted);
            }
            if !done {
                EngineStats::bump(&self.stats().deadlock_aborts);
                return Err(MmdbError::DeadlockVictim);
            }
        }
        Ok(())
    }

    /// Release outgoing wait-for dependencies: every transaction in our
    /// WaitingTxnList gets one of its wait-for dependencies released
    /// (§4.2.2).
    fn release_outgoing_wait_fors(&self) {
        for waiter in self.handle.take_waiting_txns() {
            if let Some(w) = self.inner.store.txns().get(waiter) {
                w.release_wait_for();
            }
        }
    }

    // ------------------------------------------------------------------
    // Optimistic validation (§3.2)
    // ------------------------------------------------------------------

    /// Read validation: every version in the ReadSet must still be visible as
    /// of the end timestamp. Versions we ourselves superseded or deleted pass
    /// (our own writes cannot invalidate our reads).
    fn validate_reads(&mut self, end_ts: Timestamp) -> Result<()> {
        let guard = crossbeam::epoch::pin();
        let entries = std::mem::take(&mut self.read_set);
        for entry in &entries {
            let version = entry.version.get();
            if version.end_word().writer() == Some(self.handle.id()) {
                continue;
            }
            let vis = check_visibility(
                version,
                end_ts,
                self.handle.id(),
                self.inner.store.txns(),
                &guard,
            );
            let visible = self.resolve_visibility(version, vis, end_ts)?;
            if !visible {
                EngineStats::bump(&self.stats().validation_failures);
                self.read_set = entries;
                return Err(MmdbError::ReadValidationFailed);
            }
        }
        self.read_set = entries;
        Ok(())
    }

    /// Phantom validation: repeat every registered scan and fail if a version
    /// that came into existence during our lifetime is visible at the end
    /// timestamp (Figure 3, case V4).
    fn validate_scans(&mut self, end_ts: Timestamp) -> Result<()> {
        let begin_ts = self.handle.begin_ts();
        let scans = std::mem::take(&mut self.scan_set);
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        let me = self.handle.id();
        let result = (|| {
            for scan in &scans {
                let guard = crossbeam::epoch::pin();
                let table = self.inner.store.table_in(scan.table, &guard)?;
                candidates.clear();
                match scan.pred {
                    SearchPred::Eq(key) => {
                        candidates.extend(table.candidate_ptrs(scan.index, key, &guard)?)
                    }
                    SearchPred::Range { lo, hi } => {
                        candidates.extend(table.range_candidate_ptrs(scan.index, lo, hi, &guard)?)
                    }
                }
                for ptr in candidates.iter() {
                    let version = ptr.get();
                    // Our own inserts/updates are not phantoms.
                    if version.begin_word().as_txn() == Some(me) {
                        continue;
                    }
                    let at_end =
                        check_visibility(version, end_ts, me, self.inner.store.txns(), &guard);
                    let visible_at_end = self.resolve_visibility(version, at_end, end_ts)?;
                    if !visible_at_end {
                        continue;
                    }
                    let at_begin =
                        check_visibility(version, begin_ts, me, self.inner.store.txns(), &guard);
                    if !at_begin.visible {
                        EngineStats::bump(&self.stats().phantom_failures);
                        return Err(MmdbError::PhantomDetected);
                    }
                }
            }
            Ok(())
        })();
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        self.scan_set = scans;
        result
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    pub(crate) fn do_commit(&mut self) -> Result<Timestamp> {
        if self.finished {
            return Err(MmdbError::TransactionClosed);
        }
        if let Some(err) = self.must_abort.clone() {
            self.finish_abort(&err);
            return Err(err);
        }
        if self.handle.abort_requested() {
            let err = MmdbError::CommitDependencyFailed;
            self.finish_abort(&err);
            return Err(err);
        }

        // Step 1: wind down normal processing (locks, wait-for dependencies).
        if let Err(err) = self.end_normal_processing() {
            self.finish_abort(&err);
            return Err(err);
        }

        // Step 2: precommit — acquire the end timestamp and enter Preparing.
        // The pending marker makes the draw-then-publish pair observable as
        // one atomic step: without it, a thread preempted between the two
        // looks like a plain Active transaction while its timestamp is
        // already ordered in the past (see `TxnHandle::begin_precommit`).
        self.handle.begin_precommit();
        let end_ts = self.inner.store.clock().next_timestamp();
        self.handle.set_end_ts(end_ts);
        self.handle.set_state(TxnState::Preparing);
        // Only now release read/bucket locks and outgoing wait-for
        // dependencies: every transaction we delayed obtains an end timestamp
        // later than ours, so its position in the serial order is after us.
        self.release_locks();
        self.release_outgoing_wait_fors();

        // Step 3: validation (optimistic only; locks make it unnecessary for
        // pessimistic transactions, §4.3.2).
        if self.handle.mode() == ConcurrencyMode::Optimistic {
            let iso = self.handle.isolation();
            if iso.requires_read_stability() {
                if let Err(err) = self.validate_reads(end_ts) {
                    self.finish_abort(&err);
                    return Err(err);
                }
            }
            if iso.requires_phantom_protection() {
                if let Err(err) = self.validate_scans(end_ts) {
                    self.finish_abort(&err);
                    return Err(err);
                }
            }
        }

        // Step 4: wait for outstanding commit dependencies (§2.7).
        if self.handle.commit_dep_count() > 0 {
            EngineStats::bump(&self.stats().commit_waits);
            let handle = &self.handle;
            let done = handle.wait_until(
                || handle.commit_dep_count() <= 0 || handle.abort_requested(),
                self.inner.config.wait_timeout,
            );
            if self.handle.abort_requested() {
                let err = MmdbError::CommitDependencyFailed;
                self.finish_abort(&err);
                return Err(err);
            }
            if !done {
                EngineStats::bump(&self.stats().deadlock_aborts);
                let err = MmdbError::DeadlockVictim;
                self.finish_abort(&err);
                return Err(err);
            }
        }
        if self.handle.abort_requested() {
            let err = MmdbError::CommitDependencyFailed;
            self.finish_abort(&err);
            return Err(err);
        }

        // Step 5: write the redo log record (§5). The frame is encoded into
        // the transaction's reusable buffer and handed to the logger as a
        // borrow — steady state, logging allocates nothing. Async (the
        // paper's model) stops here; Sync redeems the durability ticket and
        // waits for the flush covering it. The wait happens while still in
        // `Preparing`: a concurrent reader of our versions speculates
        // through the ordinary commit-dependency machinery, so nothing
        // observes "committed" before durability is confirmed. If the wait
        // reports the log's sticky I/O error, the transaction rolls back in
        // memory — its in-memory effects never become visible, matching the
        // durable log, which is only trusted up to the first error anyway.
        if !self.write_set.is_empty() && !self.inner.store.log_suppressed() {
            let ticket = self.append_log_frame(end_ts);
            if self.durability == Durability::Sync {
                if let Err(err) = self.inner.store.logger().wait_durable(ticket) {
                    self.finish_abort(&err);
                    return Err(err);
                }
            }
        }

        // Step 6: the transaction is committed. Raise the per-table dirty
        // watermarks *before* publishing `Committed`: a delta checkpointer
        // that quiesces in-flight precommits (everything with an end
        // timestamp at or below its snapshot) and then reads the watermarks
        // is guaranteed to observe this bump, so `dirty_ts < parent_ts`
        // soundly proves the table has no committed change in the delta
        // window.
        {
            let guard = crossbeam::epoch::pin();
            for entry in &self.write_set {
                if entry.new.is_some() || entry.delete_key.is_some() {
                    if let Ok(table) = self.inner.store.table_in(entry.table, &guard) {
                        table.note_write(end_ts);
                    }
                }
            }
        }
        self.handle.set_state(TxnState::Committed);
        EngineStats::bump(&self.stats().commits);
        self.stats().contention.record(&self.touched, false);

        // Step 7: postprocessing — propagate the end timestamp, retire old
        // versions, resolve dependents, leave the transaction table.
        self.postprocess_commit(end_ts);
        self.resolve_dependents(true);
        self.handle.set_state(TxnState::Terminated);
        self.inner.store.txns().remove(self.handle.id());
        self.finished = true;
        self.recycle();

        self.inner.after_commit();
        Ok(end_ts)
    }

    /// Frame the write set into the reusable encode buffer and append it,
    /// returning the logger's durability ticket for the frame. The logged
    /// bytes are identical to what `encode_record` would produce for the
    /// equivalent `LogRecord` (pinned by the log round-trip tests), so
    /// recovery and the differential harness are unaffected.
    fn append_log_frame(&mut self, end_ts: Timestamp) -> Lsn {
        // The paper's I/O estimate (payload + 8 bytes of metadata per op,
        // + 8 per record) — same accounting `LogRecord::byte_size` reports.
        let approx: u64 = self
            .write_set
            .iter()
            .map(|entry| match (&entry.new, entry.delete_key) {
                (Some(new), _) => new.get().data().len() as u64 + 8,
                (None, Some(_)) => 16,
                (None, None) => 0,
            })
            .sum::<u64>()
            + 8;
        let mut buf = std::mem::take(&mut self.scratch.log_buf);
        buf.clear();
        encode_frame_into(
            &mut buf,
            end_ts,
            self.write_set
                .iter()
                .filter_map(|entry| match (&entry.new, entry.delete_key) {
                    (Some(new), _) => Some(LogOpRef::Write {
                        table: entry.table,
                        row: new.get().data(),
                    }),
                    (None, Some(key)) => Some(LogOpRef::Delete {
                        table: entry.table,
                        key,
                    }),
                    (None, None) => None,
                }),
        );
        EngineStats::bump(&self.stats().log_records);
        EngineStats::add(&self.stats().log_bytes, approx);
        let ticket = self.inner.store.logger().append_frame_ticketed(&buf);
        self.scratch.log_buf = buf;
        ticket
    }

    fn postprocess_commit(&mut self, end_ts: Timestamp) {
        for entry in &self.write_set {
            if let Some(new) = &entry.new {
                new.get().set_begin(BeginWord::Timestamp(end_ts));
            }
            if let Some(old) = &entry.old {
                old.get().set_end(EndWord::Timestamp(end_ts));
                self.inner.store.enqueue_garbage(GcItem {
                    table: entry.table,
                    version: *old,
                    reclaimable_at: end_ts,
                });
            }
        }
    }

    /// Inform every transaction in our CommitDepSet of our outcome (§2.7).
    fn resolve_dependents(&self, committed: bool) {
        for dependent in self.handle.resolve_commit_dependents(committed) {
            if let Some(d) = self.inner.store.txns().get(dependent) {
                d.resolve_incoming_commit_dep(committed);
                if !committed {
                    EngineStats::bump(&self.stats().cascaded_aborts);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Abort
    // ------------------------------------------------------------------

    /// User- or drop-initiated abort. A transaction already doomed by a
    /// failed operation reports that failure (the usual driver pattern is
    /// "op returned a conflict → abort()"), so contention telemetry sees the
    /// conflict rather than a voluntary abort.
    pub(crate) fn do_user_abort(&mut self) {
        if self.finished {
            return;
        }
        match self.must_abort.take() {
            Some(err) => self.finish_abort(&err),
            None => self.finish_abort(&MmdbError::Aborted),
        }
    }

    /// Common abort path: undo version changes, release locks and
    /// dependencies, record statistics, leave the transaction table.
    pub(crate) fn finish_abort(&mut self, reason: &MmdbError) {
        if self.finished {
            return;
        }
        self.handle.set_state(TxnState::Aborted);
        EngineStats::bump(&self.stats().aborts);
        self.stats()
            .contention
            .record(&self.touched, reason.is_contention());
        if matches!(reason, MmdbError::CommitDependencyFailed) {
            EngineStats::bump(&self.stats().cascaded_aborts);
        }

        // Undo the write set (§3.3): new versions become invisible (Begin =
        // infinity) and are handed to the garbage collector; old versions get
        // their End field reset to infinity unless another transaction has
        // already noticed the abort and re-locked them.
        let retire_at = self.inner.store.clock().next_timestamp();
        let me = self.handle.id();
        for entry in &self.write_set {
            if let Some(new) = &entry.new {
                new.get().set_begin(BeginWord::Timestamp(INFINITY_TS));
                new.get().set_end(EndWord::Timestamp(INFINITY_TS));
                self.inner.store.enqueue_garbage(GcItem {
                    table: entry.table,
                    version: *new,
                    reclaimable_at: retire_at,
                });
            }
            if let Some(old) = &entry.old {
                let _ = old.get().update_end(|word| match word {
                    EndWord::Lock(lock) if lock.writer == Some(me) => {
                        if lock.read_lock_count > 0 {
                            Some(EndWord::Lock(mmdb_common::word::LockWord {
                                writer: None,
                                ..lock
                            }))
                        } else {
                            Some(EndWord::Timestamp(INFINITY_TS))
                        }
                    }
                    // Someone else already re-locked or finalized it.
                    _ => None,
                });
            }
        }

        // Locks, wait-for dependencies, commit dependents.
        self.release_locks();
        self.release_outgoing_wait_fors();
        self.resolve_dependents(false);

        self.handle.set_state(TxnState::Terminated);
        self.inner.store.txns().remove(self.handle.id());
        self.finished = true;
        self.recycle();
    }

    /// Primary-index id used when logging deletes.
    #[allow(dead_code)]
    pub(crate) fn primary_index() -> IndexId {
        IndexId(0)
    }
}
