//! Engine configuration.

use std::time::Duration;

use mmdb_common::contention;
use mmdb_common::durability::{CheckpointPolicy, Durability};
use mmdb_common::isolation::ConcurrencyMode;

/// How the engine picks a concurrency mode for transactions begun through
/// the generic [`Engine::begin`](mmdb_common::engine::Engine::begin) entry
/// point. Individual transactions can always override the choice via
/// [`MvEngine::begin_with`](crate::engine::MvEngine::begin_with) — the two
/// schemes coexist on the same version chains (§4.5), which is exactly what
/// makes a per-transaction adaptive choice safe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcPolicy {
    /// Every default transaction runs one fixed scheme (the paper's model:
    /// MV/O or MV/L chosen up front).
    Static(ConcurrencyMode),
    /// Pick the scheme per transaction from live conflict telemetry (the
    /// engine's [`ContentionMonitor`](mmdb_common::contention::ContentionMonitor)):
    /// optimistic while the decayed conflict rate is low, pessimistic once a
    /// hotspot pushes it past `enter`, back to optimistic below `exit`.
    Adaptive {
        /// Finished transactions per telemetry window (per monitor cell).
        window: u64,
        /// Decayed conflict rate in `[0, 1]` at which the engine switches
        /// new transactions to the pessimistic scheme.
        enter: f64,
        /// Decayed conflict rate below which it switches back to
        /// optimistic. Must be below `enter`; the gap is the hysteresis
        /// band that stops the mode thrashing at the crossover.
        exit: f64,
    },
}

impl CcPolicy {
    /// Adaptive policy with the monitor's default window and thresholds.
    pub const ADAPTIVE: CcPolicy = CcPolicy::Adaptive {
        window: contention::DEFAULT_WINDOW,
        enter: contention::DEFAULT_ENTER,
        exit: contention::DEFAULT_EXIT,
    };

    /// The fixed mode, if this policy is static.
    pub fn static_mode(&self) -> Option<ConcurrencyMode> {
        match *self {
            CcPolicy::Static(mode) => Some(mode),
            CcPolicy::Adaptive { .. } => None,
        }
    }
}

/// Configuration of the multiversion engine.
#[derive(Debug, Clone)]
pub struct MvConfig {
    /// Concurrency-mode policy for transactions started through the generic
    /// [`Engine::begin`](mmdb_common::engine::Engine::begin) entry point:
    /// a fixed scheme, or a per-transaction adaptive choice driven by the
    /// contention monitor.
    pub cc: CcPolicy,
    /// Upper bound on the time a transaction will wait for outstanding
    /// wait-for or commit dependencies before giving up and aborting. This is
    /// a safety net (the deadlock detector normally resolves cycles first).
    pub wait_timeout: Duration,
    /// Run a cooperative garbage-collection step after this many commits on a
    /// worker thread (0 disables cooperative collection; call
    /// [`MvEngine::collect_garbage`](crate::engine::MvEngine::collect_garbage)
    /// manually instead).
    pub gc_every_n_commits: u64,
    /// Maximum number of versions examined per garbage-collection step.
    pub gc_batch: usize,
    /// How often the background deadlock detector wakes up.
    pub deadlock_interval: Duration,
    /// Whether to run the background deadlock detector thread. Wait-for
    /// dependencies (pessimistic scheme) can deadlock; with the detector
    /// disabled, cycles are broken only by `wait_timeout`.
    pub deadlock_detector: bool,
    /// Default commit durability for transactions started on this engine
    /// ([`Durability::Async`] is the paper's model: commit never waits for
    /// log I/O). Individual transactions override it via
    /// [`MvTransaction::set_durability`](crate::txn::MvTransaction::set_durability).
    pub durability: Durability,
    /// When checkpoints should be taken (the policy is consulted by whoever
    /// drives maintenance through
    /// `CheckpointStore::checkpoint_due`; the default is
    /// manual-only). The engine itself never checkpoints spontaneously —
    /// [`MvEngine::checkpoint`](crate::engine::MvEngine::checkpoint) is an
    /// explicit entry point.
    pub checkpoint: CheckpointPolicy,
}

impl Default for MvConfig {
    fn default() -> Self {
        MvConfig {
            cc: CcPolicy::Static(ConcurrencyMode::Optimistic),
            wait_timeout: Duration::from_secs(2),
            gc_every_n_commits: 128,
            gc_batch: 256,
            deadlock_interval: Duration::from_millis(5),
            deadlock_detector: true,
            durability: Durability::Async,
            checkpoint: CheckpointPolicy::MANUAL,
        }
    }
}

impl MvConfig {
    /// Configuration whose default transactions run the optimistic scheme.
    pub fn optimistic() -> Self {
        MvConfig {
            cc: CcPolicy::Static(ConcurrencyMode::Optimistic),
            ..Default::default()
        }
    }

    /// Configuration whose default transactions run the pessimistic scheme.
    pub fn pessimistic() -> Self {
        MvConfig {
            cc: CcPolicy::Static(ConcurrencyMode::Pessimistic),
            ..Default::default()
        }
    }

    /// Configuration whose default transactions pick their scheme from live
    /// contention telemetry ([`CcPolicy::ADAPTIVE`]).
    pub fn adaptive() -> Self {
        MvConfig {
            cc: CcPolicy::ADAPTIVE,
            ..Default::default()
        }
    }

    /// Builder-style override of the concurrency-mode policy.
    pub fn with_cc(mut self, cc: CcPolicy) -> Self {
        self.cc = cc;
        self
    }

    /// Builder-style override of the wait timeout.
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Builder-style override of the cooperative GC frequency.
    pub fn with_gc_every(mut self, commits: u64) -> Self {
        self.gc_every_n_commits = commits;
        self
    }

    /// Builder-style toggle for the deadlock detector.
    pub fn with_deadlock_detector(mut self, enabled: bool) -> Self {
        self.deadlock_detector = enabled;
        self
    }

    /// Builder-style override of the default commit durability.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style override of the checkpoint policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MvConfig::default();
        assert_eq!(c.cc, CcPolicy::Static(ConcurrencyMode::Optimistic));
        assert_eq!(c.cc.static_mode(), Some(ConcurrencyMode::Optimistic));
        assert!(c.wait_timeout > Duration::from_millis(100));
        assert!(c.gc_batch > 0);
        assert!(c.deadlock_detector);
        // Paper-faithful: transactions never wait for log I/O by default.
        assert_eq!(c.durability, Durability::Async);
        // Checkpoints are explicit unless a policy is configured.
        assert_eq!(c.checkpoint, CheckpointPolicy::MANUAL);
    }

    #[test]
    fn builders_override() {
        let c = MvConfig::pessimistic()
            .with_wait_timeout(Duration::from_millis(50))
            .with_gc_every(1)
            .with_deadlock_detector(false)
            .with_durability(Durability::Sync)
            .with_checkpoint(CheckpointPolicy::every_log_bytes(1 << 20));
        assert_eq!(c.cc, CcPolicy::Static(ConcurrencyMode::Pessimistic));
        assert_eq!(c.wait_timeout, Duration::from_millis(50));
        assert_eq!(c.gc_every_n_commits, 1);
        assert!(!c.deadlock_detector);
        assert_eq!(c.durability, Durability::Sync);
        assert!(c.checkpoint.due(1 << 20));
    }

    #[test]
    fn adaptive_policy_has_a_hysteresis_band() {
        let c = MvConfig::adaptive();
        assert_eq!(c.cc.static_mode(), None);
        let CcPolicy::Adaptive {
            window,
            enter,
            exit,
        } = c.cc
        else {
            panic!("adaptive() must install CcPolicy::Adaptive");
        };
        assert!(window > 0);
        assert!(exit < enter, "hysteresis band must be non-empty");
    }
}
