//! Engine configuration.

use std::time::Duration;

use mmdb_common::durability::{CheckpointPolicy, Durability};
use mmdb_common::isolation::ConcurrencyMode;

/// Configuration of the multiversion engine.
#[derive(Debug, Clone)]
pub struct MvConfig {
    /// Default concurrency mode for transactions started through the generic
    /// [`Engine::begin`](mmdb_common::engine::Engine::begin) entry point.
    /// Individual transactions can override it via
    /// [`MvEngine::begin_with`](crate::engine::MvEngine::begin_with) — the two
    /// schemes coexist (§4.5).
    pub default_mode: ConcurrencyMode,
    /// Upper bound on the time a transaction will wait for outstanding
    /// wait-for or commit dependencies before giving up and aborting. This is
    /// a safety net (the deadlock detector normally resolves cycles first).
    pub wait_timeout: Duration,
    /// Run a cooperative garbage-collection step after this many commits on a
    /// worker thread (0 disables cooperative collection; call
    /// [`MvEngine::collect_garbage`](crate::engine::MvEngine::collect_garbage)
    /// manually instead).
    pub gc_every_n_commits: u64,
    /// Maximum number of versions examined per garbage-collection step.
    pub gc_batch: usize,
    /// How often the background deadlock detector wakes up.
    pub deadlock_interval: Duration,
    /// Whether to run the background deadlock detector thread. Wait-for
    /// dependencies (pessimistic scheme) can deadlock; with the detector
    /// disabled, cycles are broken only by `wait_timeout`.
    pub deadlock_detector: bool,
    /// Default commit durability for transactions started on this engine
    /// ([`Durability::Async`] is the paper's model: commit never waits for
    /// log I/O). Individual transactions override it via
    /// [`MvTransaction::set_durability`](crate::txn::MvTransaction::set_durability).
    pub durability: Durability,
    /// When checkpoints should be taken (the policy is consulted by whoever
    /// drives maintenance through
    /// `CheckpointStore::checkpoint_due`; the default is
    /// manual-only). The engine itself never checkpoints spontaneously —
    /// [`MvEngine::checkpoint`](crate::engine::MvEngine::checkpoint) is an
    /// explicit entry point.
    pub checkpoint: CheckpointPolicy,
}

impl Default for MvConfig {
    fn default() -> Self {
        MvConfig {
            default_mode: ConcurrencyMode::Optimistic,
            wait_timeout: Duration::from_secs(2),
            gc_every_n_commits: 128,
            gc_batch: 256,
            deadlock_interval: Duration::from_millis(5),
            deadlock_detector: true,
            durability: Durability::Async,
            checkpoint: CheckpointPolicy::MANUAL,
        }
    }
}

impl MvConfig {
    /// Configuration whose default transactions run the optimistic scheme.
    pub fn optimistic() -> Self {
        MvConfig {
            default_mode: ConcurrencyMode::Optimistic,
            ..Default::default()
        }
    }

    /// Configuration whose default transactions run the pessimistic scheme.
    pub fn pessimistic() -> Self {
        MvConfig {
            default_mode: ConcurrencyMode::Pessimistic,
            ..Default::default()
        }
    }

    /// Builder-style override of the wait timeout.
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Builder-style override of the cooperative GC frequency.
    pub fn with_gc_every(mut self, commits: u64) -> Self {
        self.gc_every_n_commits = commits;
        self
    }

    /// Builder-style toggle for the deadlock detector.
    pub fn with_deadlock_detector(mut self, enabled: bool) -> Self {
        self.deadlock_detector = enabled;
        self
    }

    /// Builder-style override of the default commit durability.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style override of the checkpoint policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MvConfig::default();
        assert_eq!(c.default_mode, ConcurrencyMode::Optimistic);
        assert!(c.wait_timeout > Duration::from_millis(100));
        assert!(c.gc_batch > 0);
        assert!(c.deadlock_detector);
        // Paper-faithful: transactions never wait for log I/O by default.
        assert_eq!(c.durability, Durability::Async);
        // Checkpoints are explicit unless a policy is configured.
        assert_eq!(c.checkpoint, CheckpointPolicy::MANUAL);
    }

    #[test]
    fn builders_override() {
        let c = MvConfig::pessimistic()
            .with_wait_timeout(Duration::from_millis(50))
            .with_gc_every(1)
            .with_deadlock_detector(false)
            .with_durability(Durability::Sync)
            .with_checkpoint(CheckpointPolicy::every_log_bytes(1 << 20));
        assert_eq!(c.default_mode, ConcurrencyMode::Pessimistic);
        assert_eq!(c.wait_timeout, Duration::from_millis(50));
        assert_eq!(c.gc_every_n_commits, 1);
        assert!(!c.deadlock_detector);
        assert_eq!(c.durability, Durability::Sync);
        assert!(c.checkpoint.due(1 << 20));
    }
}
