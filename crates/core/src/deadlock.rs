//! Deadlock detection for wait-for dependencies (§4.4).
//!
//! Commit dependencies cannot deadlock (an older transaction never waits on a
//! younger one), but wait-for dependencies can. The detector periodically
//! builds a wait-for graph over the transactions that are currently blocked
//! waiting for their `WaitForCounter` to drain, finds strongly connected
//! components with Tarjan's algorithm, re-verifies that candidate cycles are
//! still blocked (the graph is built while processing continues, so it can be
//! imprecise), and aborts the youngest member of each genuine cycle.
//!
//! Graph construction follows the paper:
//!
//! 1. **Nodes** — transactions that have finished normal processing and are
//!    blocked on wait-for dependencies (here: `NoMoreWaitFors` set and
//!    `WaitForCounter > 0`).
//! 2. **Explicit edges** — for each transaction `T1` and each `T2` in `T1`'s
//!    WaitingTxnList, an edge `T2 → T1` (`T2` waits for `T1`).
//! 3. **Implicit edges** — for each transaction `T1` and each version `V`
//!    that `T1` has read-locked: if `V` is write-locked by `T2`, an edge
//!    `T2 → T1` (the updater waits for the readers).

use std::collections::HashMap;

use mmdb_common::ids::TxnId;
use mmdb_storage::store::MvStore;
use mmdb_storage::txn_table::TxnHandle;
use std::sync::Arc;

/// A snapshot of the wait-for graph.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    /// Adjacency: `edges[a]` contains `b` when a → b (a waits for b).
    edges: HashMap<TxnId, Vec<TxnId>>,
    nodes: Vec<TxnId>,
}

impl WaitForGraph {
    /// Build the graph from the current state of the transaction table.
    pub fn build(store: &MvStore) -> (WaitForGraph, HashMap<TxnId, Arc<TxnHandle>>) {
        let snapshot = store.txns().snapshot();
        let mut handles: HashMap<TxnId, Arc<TxnHandle>> = HashMap::new();
        let mut graph = WaitForGraph::default();

        // Step 1: nodes — blocked transactions.
        for handle in &snapshot {
            if handle.no_more_wait_fors() && handle.wait_for_count() > 0 {
                graph.nodes.push(handle.id());
            }
            handles.insert(handle.id(), Arc::clone(handle));
        }
        let in_graph: std::collections::HashSet<TxnId> = graph.nodes.iter().copied().collect();

        // Step 2: explicit edges from WaitingTxnLists.
        for &t1 in &graph.nodes {
            let Some(h1) = handles.get(&t1) else { continue };
            for t2 in h1.peek_waiting_txns() {
                if in_graph.contains(&t2) {
                    graph.edges.entry(t2).or_default().push(t1);
                }
            }
        }

        // Step 3: implicit edges from read-locked versions.
        for &t1 in &graph.nodes {
            let Some(h1) = handles.get(&t1) else { continue };
            for version in h1.read_locked_versions() {
                if let Some(t2) = version.get().end_word().writer() {
                    if t2 != t1 && in_graph.contains(&t2) {
                        graph.edges.entry(t2).or_default().push(t1);
                    }
                }
            }
        }

        (graph, handles)
    }

    /// Add an edge (used by unit tests).
    pub fn add_edge(&mut self, from: TxnId, to: TxnId) {
        if !self.nodes.contains(&from) {
            self.nodes.push(from);
        }
        if !self.nodes.contains(&to) {
            self.nodes.push(to);
        }
        self.edges.entry(from).or_default().push(to);
    }

    /// Find cycles: every strongly connected component with more than one
    /// node, or with a self-loop, is a deadlock candidate. Implemented with
    /// an iterative version of Tarjan's algorithm (the paper's choice, \[25\]).
    pub fn cycles(&self) -> Vec<Vec<TxnId>> {
        #[derive(Default, Clone)]
        struct NodeState {
            index: Option<usize>,
            lowlink: usize,
            on_stack: bool,
        }

        let mut state: HashMap<TxnId, NodeState> = self
            .nodes
            .iter()
            .map(|&n| (n, NodeState::default()))
            .collect();
        let mut index = 0usize;
        let mut stack: Vec<TxnId> = Vec::new();
        let mut sccs: Vec<Vec<TxnId>> = Vec::new();
        let empty: Vec<TxnId> = Vec::new();

        // Iterative Tarjan: (node, neighbour cursor).
        for &root in &self.nodes {
            if state[&root].index.is_some() {
                continue;
            }
            let mut call_stack: Vec<(TxnId, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
                if *cursor == 0 {
                    let s = state.get_mut(&v).expect("node registered");
                    s.index = Some(index);
                    s.lowlink = index;
                    s.on_stack = true;
                    index += 1;
                    stack.push(v);
                }
                let neighbours = self.edges.get(&v).unwrap_or(&empty);
                if *cursor < neighbours.len() {
                    let w = neighbours[*cursor];
                    *cursor += 1;
                    if !state.contains_key(&w) {
                        continue;
                    }
                    if state[&w].index.is_none() {
                        call_stack.push((w, 0));
                    } else if state[&w].on_stack {
                        let w_index = state[&w].index.expect("visited");
                        let sv = state.get_mut(&v).expect("node registered");
                        sv.lowlink = sv.lowlink.min(w_index);
                    }
                } else {
                    // All neighbours processed: close v.
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        let v_low = state[&v].lowlink;
                        let sp = state.get_mut(&parent).expect("node registered");
                        sp.lowlink = sp.lowlink.min(v_low);
                    }
                    if state[&v].lowlink == state[&v].index.expect("visited") {
                        // Root of an SCC: pop it off the stack.
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            state.get_mut(&w).expect("node registered").on_stack = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let is_cycle = component.len() > 1
                            || self
                                .edges
                                .get(&component[0])
                                .map(|es| es.contains(&component[0]))
                                .unwrap_or(false);
                        if is_cycle {
                            sccs.push(component);
                        }
                    }
                }
            }
        }
        sccs
    }

    /// Number of blocked transactions considered.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Run one detection pass over `store`: find genuine deadlock cycles and
/// abort the youngest member (highest transaction ID) of each. Returns the
/// number of victims chosen.
pub fn detect_and_resolve(store: &MvStore) -> usize {
    let (graph, handles) = WaitForGraph::build(store);
    if graph.node_count() < 2 {
        return 0;
    }
    let mut victims = 0;
    for cycle in graph.cycles() {
        // Verify the members are still blocked (the graph may be imprecise).
        let still_blocked = cycle.iter().all(|id| {
            handles
                .get(id)
                .map(|h| h.wait_for_count() > 0 && !h.abort_requested())
                .unwrap_or(false)
        });
        if !still_blocked {
            continue;
        }
        if let Some(victim) = cycle.iter().max_by_key(|id| id.0) {
            if let Some(h) = handles.get(victim) {
                h.request_abort();
                victims += 1;
            }
        }
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let mut g = WaitForGraph::default();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(3));
        g.add_edge(TxnId(3), TxnId(4));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::default();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(1));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let mut members = cycles[0].clone();
        members.sort_by_key(|t| t.0);
        assert_eq!(members, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn long_cycle_detected() {
        let mut g = WaitForGraph::default();
        for i in 1..=5u64 {
            g.add_edge(TxnId(i), TxnId(i % 5 + 1));
        }
        // Plus an acyclic appendix.
        g.add_edge(TxnId(10), TxnId(1));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 5);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let mut g = WaitForGraph::default();
        g.add_edge(TxnId(7), TxnId(7));
        assert_eq!(g.cycles().len(), 1);
    }

    #[test]
    fn multiple_independent_cycles() {
        let mut g = WaitForGraph::default();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(1));
        g.add_edge(TxnId(3), TxnId(4));
        g.add_edge(TxnId(4), TxnId(5));
        g.add_edge(TxnId(5), TxnId(3));
        g.add_edge(TxnId(6), TxnId(1));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn diamond_without_back_edge_is_acyclic() {
        let mut g = WaitForGraph::default();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(1), TxnId(3));
        g.add_edge(TxnId(2), TxnId(4));
        g.add_edge(TxnId(3), TxnId(4));
        assert!(g.cycles().is_empty());
    }
}
