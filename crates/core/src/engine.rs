//! The multiversion engine: public entry point tying the storage substrate
//! and the two concurrency-control schemes together.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use mmdb_common::engine::Engine;
use mmdb_common::error::Result;
use mmdb_common::ids::TableId;
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
use mmdb_common::row::{Row, TableSpec};
use mmdb_common::stats::EngineStats;

use mmdb_storage::log::RedoLogger;
use mmdb_storage::store::MvStore;
use mmdb_storage::txn_table::{TxnHandle, TxnState};

use crate::config::{CcPolicy, MvConfig};
use crate::deadlock;
use crate::txn::{MvTransaction, TxnBuffers};

/// Upper bound on pooled transaction handles / buffer sets. Bounds idle
/// memory; under higher concurrency the pools simply miss and `begin` falls
/// back to a fresh allocation.
const TXN_POOL_CAP: usize = 256;

/// Shared engine internals (store + configuration + background machinery).
pub(crate) struct MvInner {
    pub(crate) store: MvStore,
    pub(crate) config: MvConfig,
    /// Commits since the last cooperative garbage-collection step.
    commits_since_gc: AtomicU64,
    /// Tells the background deadlock detector to stop.
    stop: AtomicBool,
    /// Recycled transaction handles: a terminated transaction's handle goes
    /// back here, and `begin` reuses it once its reference count has drained
    /// to one (the epoch-deferred release of its transaction-table slot —
    /// and any lingering `get` clone — keeps recycling safe: a handle still
    /// borrowed by a lock-free lookup can never be reset). Together with
    /// `buffers` this makes a warmed begin→commit cycle allocation-free.
    handles: parking_lot::Mutex<Vec<Arc<TxnHandle>>>,
    /// Recycled per-transaction buffer sets (cleared, capacity retained).
    buffers: parking_lot::Mutex<Vec<TxnBuffers>>,
}

impl MvInner {
    /// Cooperative maintenance performed by the committing thread itself: a
    /// bounded garbage-collection step every `gc_every_n_commits` commits.
    pub(crate) fn after_commit(&self) {
        let every = self.config.gc_every_n_commits;
        if every == 0 {
            return;
        }
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.store.collect_garbage(self.config.gc_batch);
        }
    }

    /// Obtain a handle for a new transaction, recycling a pooled one when it
    /// is exclusively ours (steady state: no allocation).
    fn take_handle(
        &self,
        id: mmdb_common::ids::TxnId,
        begin_ts: mmdb_common::ids::Timestamp,
        mode: ConcurrencyMode,
        isolation: IsolationLevel,
    ) -> Arc<TxnHandle> {
        // NB: pop in its own scope — an `if let` on `lock().pop()` would
        // extend the guard's lifetime across the body, and the fallback path
        // below re-locks the pool (self-deadlock).
        let recycled = self.handles.lock().pop();
        if let Some(mut handle) = recycled {
            if let Some(exclusive) = Arc::get_mut(&mut handle) {
                exclusive.reset_for(id, begin_ts, mode, isolation);
                return handle;
            }
            // Still referenced elsewhere (an epoch-deferred slot release, a
            // deadlock-detector snapshot, ...): park it at the cold end of
            // the pool and allocate fresh.
            let mut pool = self.handles.lock();
            if pool.len() < TXN_POOL_CAP {
                pool.insert(0, handle);
            }
        }
        TxnHandle::new(id, begin_ts, mode, isolation)
    }

    /// Return a terminated transaction's handle to the pool.
    pub(crate) fn return_handle(&self, handle: Arc<TxnHandle>) {
        let mut pool = self.handles.lock();
        if pool.len() < TXN_POOL_CAP {
            pool.push(handle);
        }
    }

    /// Obtain a (cleared, warmed) buffer set for a new transaction.
    fn take_buffers(&self) -> TxnBuffers {
        self.buffers.lock().pop().unwrap_or_default()
    }

    /// Return a cleared buffer set to the pool.
    pub(crate) fn return_buffers(&self, bufs: TxnBuffers) {
        let mut pool = self.buffers.lock();
        if pool.len() < TXN_POOL_CAP {
            pool.push(bufs);
        }
    }
}

/// The multiversion engine ("MV/O", "MV/L" or adaptive "MV/A" depending on
/// the configured [`CcPolicy`], with per-transaction overrides).
///
/// Cloning is cheap (an `Arc` clone) and all clones share the same database.
#[derive(Clone)]
pub struct MvEngine {
    inner: Arc<MvInner>,
    /// Join handle of the deadlock detector (shared; joined on last drop).
    detector: Option<Arc<ServiceHandle>>,
    /// Join handle of the automatic checkpoint tick (shared; joined on last
    /// drop). Only present for engines created via
    /// [`MvEngine::with_checkpoint_store`] under a non-manual
    /// [`CheckpointPolicy`](mmdb_common::durability::CheckpointPolicy).
    checkpointer: Option<Arc<ServiceHandle>>,
}

/// Join-on-last-drop handle for a background service thread (the deadlock
/// detector, the checkpoint tick). All services share `MvInner::stop`, so
/// dropping the last engine clone stops every service before joining.
struct ServiceHandle {
    inner: Weak<MvInner>,
    thread: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.upgrade() {
            inner.stop.store(true, Ordering::Release);
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl MvEngine {
    /// Create an engine with the given configuration and a discarding logger.
    pub fn new(config: MvConfig) -> MvEngine {
        Self::with_logger(config, Arc::new(mmdb_storage::log::NullLogger::new()))
    }

    /// Create an engine whose default transactions run optimistically (MV/O).
    pub fn optimistic(mut config: MvConfig) -> MvEngine {
        config.cc = CcPolicy::Static(ConcurrencyMode::Optimistic);
        Self::new(config)
    }

    /// Create an engine whose default transactions run pessimistically (MV/L).
    pub fn pessimistic(mut config: MvConfig) -> MvEngine {
        config.cc = CcPolicy::Static(ConcurrencyMode::Pessimistic);
        Self::new(config)
    }

    /// Create an engine that picks each default transaction's scheme from
    /// live contention telemetry (MV/A, [`CcPolicy::ADAPTIVE`]).
    pub fn adaptive(mut config: MvConfig) -> MvEngine {
        if config.cc.static_mode().is_some() {
            config.cc = CcPolicy::ADAPTIVE;
        }
        Self::new(config)
    }

    /// Create an engine writing redo records to `logger`.
    pub fn with_logger(config: MvConfig, logger: Arc<dyn RedoLogger>) -> MvEngine {
        let inner = Arc::new(MvInner {
            store: MvStore::new(logger),
            config: config.clone(),
            commits_since_gc: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            handles: parking_lot::Mutex::new(Vec::new()),
            buffers: parking_lot::Mutex::new(Vec::new()),
        });
        if let CcPolicy::Adaptive {
            window,
            enter,
            exit,
        } = config.cc
        {
            inner
                .store
                .stats()
                .contention
                .configure(window, enter, exit);
        }
        let detector = if config.deadlock_detector {
            let weak = Arc::downgrade(&inner);
            let interval = config.deadlock_interval;
            let thread = std::thread::Builder::new()
                .name("mmdb-deadlock-detector".into())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(inner) = weak.upgrade() else { break };
                    if inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let victims = deadlock::detect_and_resolve(&inner.store);
                    if victims > 0 {
                        EngineStats::add(&inner.store.stats().deadlock_aborts, victims as u64);
                    }
                })
                .expect("spawn deadlock detector");
            Some(Arc::new(ServiceHandle {
                inner: Arc::downgrade(&inner),
                thread: parking_lot::Mutex::new(Some(thread)),
            }))
        } else {
            None
        };
        MvEngine {
            inner,
            detector,
            checkpointer: None,
        }
    }

    /// Create an engine whose redo records go to `store`'s group-commit log
    /// and whose [`CheckpointPolicy`](mmdb_common::durability::CheckpointPolicy)
    /// (from `config.checkpoint`) actually drives checkpoints: a background
    /// tick consults [`CheckpointStore::checkpoint_due`] and runs
    /// [`MvEngine::checkpoint_auto`] — delta images while the chain has
    /// room under `policy.max_chain`, a full base image (compaction)
    /// otherwise — automatically once the configured log growth accrues.
    /// Under
    /// [`CheckpointPolicy::MANUAL`](mmdb_common::durability::CheckpointPolicy::MANUAL)
    /// no tick is spawned and `checkpoint()` remains an explicit call.
    ///
    /// [`CheckpointStore::checkpoint_due`]: mmdb_storage::checkpoint::CheckpointStore::checkpoint_due
    pub fn with_checkpoint_store(
        config: MvConfig,
        store: Arc<mmdb_storage::checkpoint::CheckpointStore>,
    ) -> MvEngine {
        let logger: Arc<dyn RedoLogger> = Arc::clone(store.logger()) as _;
        let mut engine = Self::with_logger(config, logger);
        let policy = engine.inner.config.checkpoint;
        if policy == mmdb_common::durability::CheckpointPolicy::MANUAL {
            return engine;
        }
        let weak = Arc::downgrade(&engine.inner);
        // The tick only *checks* a counter (cheap relaxed read through the
        // group-commit log); actual checkpoints are rare, so a short period
        // keeps the log bound tight without measurable overhead.
        let interval = std::time::Duration::from_millis(10);
        let thread = std::thread::Builder::new()
            .name("mmdb-checkpointer".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(inner) = weak.upgrade() else { break };
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                if store.checkpoint_due(&policy) {
                    let engine = MvEngine {
                        inner,
                        detector: None,
                        checkpointer: None,
                    };
                    // A failed automatic checkpoint (e.g. disk error) is not
                    // fatal to the engine: the log keeps growing and the
                    // next tick retries.
                    let _ = engine.checkpoint_auto(&store, &policy);
                }
            })
            .expect("spawn checkpointer");
        engine.checkpointer = Some(Arc::new(ServiceHandle {
            inner: Arc::downgrade(&engine.inner),
            thread: parking_lot::Mutex::new(Some(thread)),
        }));
        engine
    }

    /// The engine configuration.
    pub fn config(&self) -> &MvConfig {
        &self.inner.config
    }

    /// Direct access to the underlying store (diagnostics, tests).
    pub fn store(&self) -> &MvStore {
        &self.inner.store
    }

    /// Begin a transaction with an explicit concurrency mode, overriding the
    /// engine default. Optimistic and pessimistic transactions may run
    /// concurrently against the same database (§4.5).
    pub fn begin_with(&self, mode: ConcurrencyMode, isolation: IsolationLevel) -> MvTransaction {
        let store = &self.inner.store;
        // Hold the pending-begin guard across draw + register: without it a
        // thread preempted here is invisible to the GC watermark, and
        // versions its snapshot needs can be reclaimed out from under it
        // (reads then come up empty — caught by the concurrency stress
        // tests).
        let pending = store.txns().pending_begin();
        let id = store.clock().next_txn_id();
        let begin_ts = store.clock().next_timestamp();
        let handle = self.inner.take_handle(id, begin_ts, mode, isolation);
        store.txns().register(Arc::clone(&handle));
        drop(pending);
        MvTransaction::new(Arc::clone(&self.inner), handle, self.inner.take_buffers())
    }

    /// Begin a transaction whose concurrency mode is chosen by the engine's
    /// [`CcPolicy`], refined by a declared transaction shape: read-only
    /// transactions always run optimistically (they cannot lose a write
    /// conflict, and MV/O never makes readers block writers — §3.4), and an
    /// update transaction consults the contention cells of the tables it
    /// declares in addition to the global signal. Under a static policy the
    /// hints are ignored and the fixed mode applies.
    pub fn begin_hinted(
        &self,
        read_only: bool,
        tables: &[TableId],
        isolation: IsolationLevel,
    ) -> MvTransaction {
        let mode = match self.inner.config.cc {
            CcPolicy::Static(mode) => mode,
            CcPolicy::Adaptive { .. } => self
                .inner
                .store
                .stats()
                .contention
                .recommend(read_only, tables),
        };
        self.begin_with(mode, isolation)
    }

    /// Bulk-load committed rows outside of any transaction (initial database
    /// population).
    pub fn populate<I>(&self, table: TableId, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Row>,
    {
        self.inner.store.populate(table, rows)
    }

    /// Run a bounded garbage-collection step now. Returns the number of
    /// versions reclaimed.
    pub fn collect_garbage(&self) -> usize {
        self.inner.store.collect_garbage(self.inner.config.gc_batch)
    }

    /// Number of versions currently reachable in `table`'s primary index
    /// (diagnostic).
    pub fn version_count(&self, table: TableId) -> Result<usize> {
        Ok(self.inner.store.table(table)?.version_count())
    }

    /// Replay redo-log records into this (freshly created) engine.
    ///
    /// The paper's engines log each committed transaction's new versions and
    /// deleted keys together with its end timestamp, and note that "commit
    /// ordering is determined by transaction end timestamps" (§3.2). Recovery
    /// therefore sorts the records by end timestamp and re-applies them in
    /// that order: a `Write` op upserts the row by primary key, a `Delete` op
    /// removes it. Tables must have been re-created (same IDs) before
    /// replaying.
    ///
    /// Returns the number of log records applied.
    pub fn replay_log<I>(&self, records: I) -> Result<usize>
    where
        I: IntoIterator<Item = mmdb_storage::log::LogRecord>,
    {
        use mmdb_common::engine::{Engine as _, EngineTxn as _};
        use mmdb_common::ids::IndexId;
        use mmdb_storage::log::LogOp;

        let mut records: Vec<_> = records.into_iter().collect();
        records.sort_by_key(|r| r.end_ts);
        let mut applied = 0;
        for record in records {
            let mut txn = self.begin(IsolationLevel::ReadCommitted);
            for op in record.ops {
                match op {
                    LogOp::Write { table, row } => {
                        let key = self.inner.store.table(table)?.key_of(IndexId(0), &row)?;
                        if !txn.update(table, IndexId(0), key, row.clone())? {
                            txn.insert(table, row)?;
                        }
                    }
                    LogOp::Delete { table, key } => {
                        txn.delete(table, IndexId(0), key)?;
                    }
                }
            }
            txn.commit()?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Take a checkpoint into `store` and truncate the redo log below it.
    ///
    /// The engine must have been created with `store`'s group-commit log as
    /// its redo logger ([`MvEngine::with_logger`] of
    /// `CheckpointStore::logger`), so the checkpoint LSN and the engine's
    /// commit frames live on the same stream.
    ///
    /// The image is a snapshot-isolation read of every table and **never
    /// blocks writers**: the walk is an ordinary registered transaction, so
    /// concurrent commits proceed (multiversioning gives the reader its own
    /// stable view) and the GC watermark keeps the snapshot's versions
    /// alive. Consistency with the log comes from ordering: the checkpoint
    /// LSN is captured *before* the snapshot timestamp is drawn, and every
    /// commit draws its end timestamp *before* appending its frame, so
    /// every frame wholly below the LSN commits inside the snapshot.
    /// Recovery replays the tail above the LSN, skipping records at or
    /// below the snapshot timestamp.
    pub fn checkpoint(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        use mmdb_common::engine::EngineTxn as _;
        use mmdb_common::ids::IndexId;

        // Order matters (see above): log high-water mark first, snapshot
        // timestamp second.
        let ckpt_lsn = store.logger().appended_lsn();
        let txn = self.begin_with(
            ConcurrencyMode::Optimistic,
            IsolationLevel::SnapshotIsolation,
        );
        let read_ts = txn.begin_ts();
        let me = txn.me();
        let mut writer = store.begin_checkpoint(ckpt_lsn, read_ts)?;
        let mvstore = &self.inner.store;
        for idx in 0..mvstore.table_count() {
            let table_id = TableId(idx as u32);
            // One epoch pin per table: long enough to keep lookups cheap,
            // short enough not to stall epoch advancement for the whole
            // walk.
            let guard = crossbeam::epoch::pin();
            let table = mvstore.table_in(table_id, &guard)?;
            for version in table.scan_versions(IndexId(0), &guard)? {
                loop {
                    let vis = crate::visibility::check_visibility(
                        version,
                        read_ts,
                        me,
                        mvstore.txns(),
                        &guard,
                    );
                    if vis.dependency.is_some() {
                        // The owning transaction is mid-commit; its fate is
                        // decided within a few instructions. A checkpoint
                        // has no abort path to cascade, so wait it out
                        // instead of taking a commit dependency.
                        std::thread::yield_now();
                        continue;
                    }
                    if vis.visible {
                        writer.write_row(table_id, version.data())?;
                    }
                    break;
                }
            }
        }
        // The walk is read-only; committing just deregisters the snapshot
        // (releasing the GC watermark).
        txn.commit()?;
        let installed = store.install_checkpoint(writer.finish()?)?;
        store.truncate_log()?;
        Ok(installed)
    }

    /// Take a *delta* checkpoint into `store`: an image holding only the
    /// rows and deletions whose commit timestamps moved past the previous
    /// chain element's snapshot, appended to the chain instead of rewriting
    /// the full database. Requires an installed chain
    /// ([`MvEngine::checkpoint`] first).
    ///
    /// Like the base walk this never blocks writers. Three mechanisms make
    /// the *incremental* part sound; `P` is the parent snapshot and `R` the
    /// delta's own snapshot timestamp:
    ///
    /// * **Dirty watermarks.** Every committing transaction raises each
    ///   written table's watermark to its end timestamp *before* publishing
    ///   `Committed`, so after quiescing (below) a table whose watermark is
    ///   still below `P` provably saw no commit in `(P, R]` and contributes
    ///   zero bytes.
    /// * **Precommit quiescing.** After drawing `R` the walk waits for every
    ///   registered transaction whose end timestamp is (or may still land)
    ///   at or below `R` to finish postprocessing. Anything that draws its
    ///   end timestamp afterwards necessarily lands above `R` (the clock is
    ///   monotone) and belongs to the log tail, not this delta. Quiescing
    ///   also means every version the walk meets has its final begin/end
    ///   words published, so "did it change after `P`?" is a plain
    ///   timestamp comparison.
    /// * **Tombstones from two sources.** A row deleted in `(P, R]` has no
    ///   visible version to write, so the walk harvests dead versions whose
    ///   end timestamp falls in the window — kept reachable by registering
    ///   a GC pin at `P` for the walk's duration — and unions them with the
    ///   `Delete` ops scanned from the log prefix below the captured LSN
    ///   (which covers versions already reclaimed before the pin existed:
    ///   a commit appends its frame before its garbage is enqueued, so any
    ///   such version's frame sits wholly below the LSN). Tombstones for
    ///   keys the delta also writes are dropped.
    pub fn checkpoint_delta(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        use mmdb_common::engine::EngineTxn as _;
        use mmdb_common::ids::IndexId;
        use mmdb_common::word::{BeginWord, EndWord};

        let parent =
            store
                .last_checkpoint()
                .ok_or(mmdb_common::error::MmdbError::CheckpointInvalid {
                    reason: "no checkpoint installed to delta against",
                })?;
        let parent_ts = parent.read_ts;
        let mvstore = &self.inner.store;

        // GC pin at the parent snapshot: keeps versions that died after `P`
        // linked until the walk has harvested their tombstones. Registered
        // like any transaction (under the pending-begin guard) and removed
        // on every exit path by the drop guard.
        struct GcPin<'a> {
            txns: &'a mmdb_storage::txn_table::TxnTable,
            id: mmdb_common::ids::TxnId,
        }
        impl Drop for GcPin<'_> {
            fn drop(&mut self) {
                self.txns.remove(self.id);
            }
        }
        let _pin = {
            let txns = mvstore.txns();
            let pending = txns.pending_begin();
            let id = mvstore.clock().next_txn_id();
            txns.register(TxnHandle::new(
                id,
                parent_ts,
                ConcurrencyMode::Optimistic,
                IsolationLevel::SnapshotIsolation,
            ));
            drop(pending);
            GcPin { txns, id }
        };

        // Same ordering contract as the base walk: LSN first, snapshot
        // timestamp second.
        let ckpt_lsn = store.logger().appended_lsn();
        let txn = self.begin_with(
            ConcurrencyMode::Optimistic,
            IsolationLevel::SnapshotIsolation,
        );
        let read_ts = txn.begin_ts();
        let me = txn.me();
        self.quiesce_precommits(read_ts);
        let mut writer = store.begin_delta(ckpt_lsn, read_ts)?;

        let mut written: std::collections::HashSet<(TableId, u64)> =
            std::collections::HashSet::new();
        let mut tombstones: Vec<(TableId, u64)> = Vec::new();
        for idx in 0..mvstore.table_count() {
            let table_id = TableId(idx as u32);
            let guard = crossbeam::epoch::pin();
            let table = mvstore.table_in(table_id, &guard)?;
            // Strictly below `P` means no commit touched the table in the
            // window (the watermark was raised before any such commit
            // published, and quiescing ordered those raises before this
            // read): the whole table contributes nothing.
            if table.dirty_ts() < parent_ts {
                continue;
            }
            for version in table.scan_versions(IndexId(0), &guard)? {
                loop {
                    let vis = crate::visibility::check_visibility(
                        version,
                        read_ts,
                        me,
                        mvstore.txns(),
                        &guard,
                    );
                    if vis.dependency.is_some() {
                        std::thread::yield_now();
                        continue;
                    }
                    if vis.visible {
                        // Committed at or below `P` ⇒ already in the parent
                        // image. An unpublished begin word can only belong
                        // to a post-`R` writer's in-flight version (which is
                        // never visible at `R`), but stay conservative: a
                        // duplicate row costs bytes, not correctness.
                        let include = match version.begin_word() {
                            BeginWord::Timestamp(begin) => begin > parent_ts,
                            _ => true,
                        };
                        if include {
                            writer.write_row(table_id, version.data())?;
                            written.insert((table_id, version.index_key(0)));
                        }
                    } else if let EndWord::Timestamp(end) = version.end_word() {
                        // A version that died inside the window and was not
                        // superseded by a visible successor marks a delete;
                        // supersessions are deduplicated against `written`
                        // below.
                        if end > parent_ts && end <= read_ts {
                            tombstones.push((table_id, version.index_key(0)));
                        }
                    }
                    break;
                }
            }
        }
        txn.commit()?;

        // Second tombstone source: `Delete` ops in the log prefix below the
        // captured LSN whose commits postdate `P` (their dead versions may
        // have been reclaimed before the GC pin registered). Flush first so
        // the prefix is readable from the file.
        store.logger().flush()?;
        let limit = ckpt_lsn.0.saturating_sub(store.logger().base_lsn().0);
        if limit > 0 {
            let prefix = mmdb_storage::log::read_log_prefix(store.log_path(), limit)?;
            for record in prefix.records {
                if record.end_ts <= parent_ts {
                    continue;
                }
                for op in record.ops {
                    if let mmdb_storage::log::LogOp::Delete { table, key } = op {
                        tombstones.push((table, key));
                    }
                }
            }
        }
        let mut emitted: std::collections::HashSet<(TableId, u64)> =
            std::collections::HashSet::new();
        for (table, key) in tombstones {
            if !written.contains(&(table, key)) && emitted.insert((table, key)) {
                writer.write_delete(table, key)?;
            }
        }

        let installed = store.install_delta(writer.finish()?)?;
        store.truncate_log()?;
        Ok(installed)
    }

    /// Take whichever checkpoint `policy` calls for next: a delta while the
    /// chain is still below `policy.max_chain` files, a full base image
    /// otherwise (the first checkpoint, deltas disabled, or a compaction
    /// once the chain is full). This is what the automatic tick spawned by
    /// [`MvEngine::with_checkpoint_store`] runs.
    pub fn checkpoint_auto(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
        policy: &mmdb_common::durability::CheckpointPolicy,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        if store.delta_due(policy) {
            self.checkpoint_delta(store)
        } else {
            self.checkpoint(store)
        }
    }

    /// Wait until every registered transaction that holds — or may still
    /// claim — an end timestamp at or below `read_ts` has finished
    /// postprocessing (reached `Terminated`).
    ///
    /// `read_ts` must already be drawn: a transaction observed without an
    /// end timestamp can only draw one *after* this point, and the monotone
    /// clock puts that draw above `read_ts`. The shard sweep misses only
    /// transactions registering concurrently, whose end timestamps are
    /// likewise above `read_ts`. Waits are short (a precommit's fate
    /// resolves within its validation + log append) and resolve among the
    /// waited-on transactions themselves, never on this thread.
    fn quiesce_precommits(&self, read_ts: mmdb_common::ids::Timestamp) {
        use mmdb_storage::txn_table::EndTs;
        for handle in self.inner.store.txns().snapshot() {
            loop {
                match handle.end_ts_state() {
                    // Any future end timestamp postdates `read_ts`.
                    EndTs::None => break,
                    EndTs::At(end) if end > read_ts => break,
                    // Pending, or committed/aborting inside the window:
                    // wait for postprocessing to publish its words.
                    _ => {
                        if handle.state() == TxnState::Terminated {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Recover this (freshly created, tables re-created) engine from a
    /// [`RecoveryPlan`](mmdb_storage::checkpoint::RecoveryPlan): bulk-load
    /// the checkpoint chain (base image plus deltas, if any), then replay
    /// the log tail above the last chain element's LSN, skipping records
    /// already inside the chain (`end_ts <= read_ts`).
    ///
    /// The load is partitioned: tables are sharded across a worker pool
    /// (`MMDB_RECOVERY_WORKERS`, defaulting to the machine's parallelism
    /// capped at 8) and every op — chain rows, chain tombstones, tail
    /// writes and deletes — is collapsed into one `populate` per table.
    /// The result is identical for any worker count. `populate` bypasses
    /// the redo logger, so replaying a log the engine is attached to never
    /// re-appends the tail.
    ///
    /// The report's `valid_bytes` is the *physical* clean prefix of the
    /// live log segment — exactly what
    /// `CheckpointStore::open` takes to resume appending.
    pub fn recover_from_checkpoint(
        &self,
        plan: &mmdb_storage::checkpoint::RecoveryPlan,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        self.recover_from_checkpoint_with(plan, mmdb_storage::recovery::default_workers())
    }

    /// [`MvEngine::recover_from_checkpoint`] with an explicit worker count
    /// (tests pin determinism by comparing worker counts; 1 degenerates to
    /// the serial load).
    pub fn recover_from_checkpoint_with(
        &self,
        plan: &mmdb_storage::checkpoint::RecoveryPlan,
        workers: usize,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        use mmdb_common::ids::IndexId;

        let mvstore = &self.inner.store;
        let key_of = |table: TableId, row: &Row| mvstore.table(table)?.key_of(IndexId(0), row);
        let apply = |table: TableId, rows: Vec<Row>| self.populate(table, rows).map(|_| ());
        let image = mmdb_storage::recovery::recover_partitioned(plan, workers, &key_of, &apply)?;
        // The recovered timestamps came from the previous process's clock;
        // everything this engine draws from now on (snapshots, commit
        // timestamps, delta-checkpoint windows) must postdate them.
        mvstore.clock().advance_past(image.max_end_ts);
        Ok(mmdb_storage::log::RecoveryReport {
            records_applied: image.tail_records,
            valid_bytes: image.valid_bytes,
            torn_bytes: image.torn_bytes,
        })
    }

    /// Recover from the framed bytes of a redo log: decode every complete
    /// record — tolerating a torn tail left by a crash mid-append — and
    /// replay them through [`MvEngine::replay_log`]. Tables must have been
    /// re-created (same IDs) on this fresh engine first.
    pub fn recover_bytes(&self, bytes: &[u8]) -> Result<mmdb_storage::log::RecoveryReport> {
        let outcome = mmdb_storage::log::read_log_bytes(bytes)?;
        let records_applied = self.replay_log(outcome.records)?;
        Ok(mmdb_storage::log::RecoveryReport {
            records_applied,
            valid_bytes: outcome.valid_bytes,
            torn_bytes: outcome.torn_bytes,
        })
    }

    /// Recover from the redo-log file at `path` (see
    /// [`MvEngine::recover_bytes`]).
    pub fn recover_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        let bytes =
            std::fs::read(path).map_err(|e| mmdb_common::error::MmdbError::LogIo(e.to_string()))?;
        self.recover_bytes(&bytes)
    }
}

impl Engine for MvEngine {
    type Txn = MvTransaction;

    fn create_table(&self, spec: TableSpec) -> Result<TableId> {
        self.inner.store.create_table(spec)
    }

    fn begin(&self, isolation: IsolationLevel) -> MvTransaction {
        self.begin_hinted(false, &[], isolation)
    }

    fn begin_hinted(
        &self,
        read_only: bool,
        tables: &[TableId],
        isolation: IsolationLevel,
    ) -> MvTransaction {
        MvEngine::begin_hinted(self, read_only, tables, isolation)
    }

    fn stats(&self) -> &EngineStats {
        self.inner.store.stats()
    }

    fn label(&self) -> &'static str {
        match self.inner.config.cc {
            CcPolicy::Static(ConcurrencyMode::Optimistic) => "MV/O",
            CcPolicy::Static(ConcurrencyMode::Pessimistic) => "MV/L",
            CcPolicy::Adaptive { .. } => "MV/A",
        }
    }

    fn maintenance(&self) {
        self.inner.store.collect_garbage(self.inner.config.gc_batch);
    }
}

impl std::fmt::Debug for MvEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvEngine")
            .field("cc", &self.inner.config.cc)
            .field("store", &self.inner.store)
            .field("detector", &self.detector.is_some())
            .field("checkpointer", &self.checkpointer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod snapshot_stability_stress {
    //! Regression net for three races this suite caught during bootstrap
    //! (all fixed): the begin-draw/registration GC-watermark race, the
    //! non-atomic watermark shard sweep, and the drawn-but-unpublished end
    //! timestamp window at precommit. Each made reads of permanently-present
    //! keys transiently return `None` under heavy concurrent updates.
    //!
    //! Two entry points share one stress round:
    //!
    //! * [`snapshot_stability_short_deadline`] runs in CI on every push. Its
    //!   total budget is env-tunable via `MMDB_GC_STRESS_MS` (default
    //!   600 ms).
    //! * [`reads_of_permanent_keys_never_return_none`] is the original long
    //!   soak (~40 s), still ignored by default; run with
    //!   `cargo test -p mmdb-core --lib snapshot_stability -- --ignored`.
    //!
    //! Each round races updaters and snapshot readers over permanent keys,
    //! plus a delete/re-insert churner and a dedicated `collect_garbage`
    //! hammer over a disjoint key range; after quiescing and draining GC it
    //! asserts the **version-count watermark**: every visible key is down to
    //! exactly one version (no watermark leak keeps superseded, deleted or
    //! poisoned versions reachable).

    use super::*;
    use mmdb_common::engine::{Engine, EngineTxn};
    use mmdb_common::ids::IndexId;
    use mmdb_common::isolation::IsolationLevel;
    use mmdb_common::row::{rowbuf, TableSpec};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const ROWS: u64 = 128;
    /// Churn range for the delete/re-insert worker (disjoint from the
    /// permanent keys so the stability invariant stays checkable).
    const EXTRA: u64 = 32;

    fn stress_round(round: u64, millis: u64) {
        let engine = MvEngine::optimistic(MvConfig::default());
        let table = engine.create_table(TableSpec::keyed_u64("t", 512)).unwrap();
        engine
            .populate(
                table,
                (0..ROWS + EXTRA).map(|id| rowbuf::keyed_row(id, 16, 1)),
            )
            .unwrap();
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for w in 0..2u64 {
                let engine = engine.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut x = w;
                    while stop.load(Ordering::Relaxed) == 0 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let a = (x >> 33) % ROWS;
                        let b = (a + 1) % ROWS;
                        let mut txn = engine.begin(IsolationLevel::Serializable);
                        let r: mmdb_common::error::Result<()> = (|| {
                            let ra = txn.read(table, IndexId(0), a)?;
                            let rb = txn.read(table, IndexId(0), b)?;
                            let (Some(ra), Some(rb)) = (ra, rb) else {
                                panic!("round {round}: writer read None for a permanent key (a={a}, b={b})");
                            };
                            let fa = rowbuf::fill_of(&ra);
                            let fb = rowbuf::fill_of(&rb);
                            if fa > 0 {
                                txn.update(table, IndexId(0), a, rowbuf::keyed_row(a, 16, fa.wrapping_sub(1).max(1)))?;
                                txn.update(table, IndexId(0), b, rowbuf::keyed_row(b, 16, fb.wrapping_add(1).max(1)))?;
                            }
                            Ok(())
                        })();
                        match r {
                            Ok(()) => {
                                let _ = txn.commit();
                            }
                            Err(_) => txn.abort(),
                        }
                    }
                });
            }
            for _ in 0..2u64 {
                let engine = engine.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || loop {
                    let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
                    for id in 0..ROWS {
                        assert!(
                            txn.read(table, IndexId(0), id).unwrap().is_some(),
                            "round {round}: snapshot read None for permanent key {id}"
                        );
                    }
                    txn.commit().unwrap();
                    if stop.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                });
            }
            // Delete/re-insert churner racing GC over the extra key range:
            // deleted versions must be reclaimed without ever making a
            // concurrent snapshot read of a *permanent* key fail, and
            // without leaking versions past the watermark.
            {
                let engine = engine.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut x = 0xDEC0_DE00u64 | round;
                    while stop.load(Ordering::Relaxed) == 0 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = ROWS + (x >> 33) % EXTRA;
                        let mut txn = engine.begin(IsolationLevel::Serializable);
                        let r: mmdb_common::error::Result<()> = (|| {
                            if txn.read(table, IndexId(0), k)?.is_some() {
                                txn.delete(table, IndexId(0), k)?;
                            } else {
                                txn.insert(table, rowbuf::keyed_row(k, 16, 2))?;
                            }
                            Ok(())
                        })();
                        match r {
                            Ok(()) => {
                                let _ = txn.commit();
                            }
                            Err(_) => txn.abort(),
                        }
                    }
                });
            }
            // A dedicated collector hammering GC while deletes are in
            // flight (the cooperative after-commit step only runs every
            // `gc_every_n_commits`; this thread makes the race constant).
            {
                let engine = engine.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        engine.collect_garbage();
                        std::thread::yield_now();
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(millis));
            stop.store(1, Ordering::Relaxed);
        });

        // Quiesced: drain the GC queue completely, then assert the
        // version-count watermark — exactly one reachable version per
        // visible key, i.e. GC reclaimed every superseded, deleted and
        // poisoned version once no transaction could need it.
        while engine.collect_garbage() > 0 {}
        let mut visible = 0usize;
        let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
        for id in 0..ROWS + EXTRA {
            if txn.read(table, IndexId(0), id).unwrap().is_some() {
                visible += 1;
            }
        }
        txn.commit().unwrap();
        assert!(
            visible >= ROWS as usize,
            "round {round}: permanent keys went missing ({visible} < {ROWS})"
        );
        assert_eq!(
            engine.version_count(table).unwrap(),
            visible,
            "round {round}: after a full GC drain each visible key must be down to \
             exactly one reachable version (version-count watermark leak)"
        );
    }

    /// CI-sized variant: total budget in milliseconds comes from
    /// `MMDB_GC_STRESS_MS` (default 600), split into short rounds.
    #[test]
    fn snapshot_stability_short_deadline() {
        let budget_ms: u64 = std::env::var("MMDB_GC_STRESS_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(600);
        let round_ms = 50;
        let rounds = (budget_ms / round_ms).max(1);
        for round in 0..rounds {
            stress_round(round, round_ms);
        }
    }

    #[test]
    #[ignore = "long-running stress loop; run explicitly"]
    fn reads_of_permanent_keys_never_return_none() {
        for round in 0..400u64 {
            stress_round(round, 100);
        }
    }
}
