//! # mmdb-core
//!
//! The paper's primary contribution: two multiversion concurrency-control
//! schemes for main-memory databases — an **optimistic** scheme based on
//! validation (MV/O, §3) and a **pessimistic** scheme based on multiversion
//! locking (MV/L, §4) — built on the shared storage substrate of
//! `mmdb-storage` and mutually compatible (§4.5), so a single database can
//! run both kinds of transactions concurrently.
//!
//! ## Quick tour
//!
//! ```
//! use mmdb_common::engine::{Engine, EngineTxn};
//! use mmdb_common::row::rowbuf;
//! use mmdb_common::{IndexId, IsolationLevel, TableSpec};
//! use mmdb_core::{MvConfig, MvEngine};
//!
//! let engine = MvEngine::optimistic(MvConfig::default());
//! let table = engine.create_table(TableSpec::keyed_u64("accounts", 1024)).unwrap();
//! engine.populate(table, (0..100u64).map(|k| rowbuf::keyed_row(k, 16, 10))).unwrap();
//!
//! let mut txn = engine.begin(IsolationLevel::Serializable);
//! let row = txn.read(table, IndexId(0), 7).unwrap().unwrap();
//! txn.update(table, IndexId(0), 7, rowbuf::keyed_row(7, 16, rowbuf::fill_of(&row) + 1)).unwrap();
//! txn.commit().unwrap();
//! ```
//!
//! ## Module map
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`config`] | — | [`MvConfig`] |
//! | [`engine`] | — | [`MvEngine`], background deadlock detector, cooperative GC hook |
//! | [`txn`] | §2.4, §3.1, §4.3.1 | [`MvTransaction`], normal-processing operations, read/bucket locks, wait-for and commit dependencies |
//! | [`commit`] | §3.2–3.3, §4.3.2–4.3.3 | precommit, optimistic validation, logging, postprocessing, abort |
//! | [`visibility`] | §2.5, §2.6 | version visibility and updatability (Tables 1 & 2) |
//! | [`deadlock`] | §4.4 | wait-for graph construction and Tarjan-based cycle detection |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commit;
pub mod config;
pub mod deadlock;
pub mod engine;
#[cfg(test)]
mod phantom_regression;
pub mod txn;
pub mod visibility;

pub use config::{CcPolicy, MvConfig};
pub use engine::MvEngine;
pub use txn::MvTransaction;
pub use visibility::{check_updatable, check_visibility, Updatability, Visibility};

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::engine::{Engine, EngineTxn};
    use mmdb_common::error::MmdbError;
    use mmdb_common::ids::IndexId;
    use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
    use mmdb_common::row::{rowbuf, TableSpec};

    fn engine(mode: ConcurrencyMode) -> (MvEngine, mmdb_common::ids::TableId) {
        let engine = match mode {
            ConcurrencyMode::Optimistic => MvEngine::optimistic(MvConfig::default()),
            ConcurrencyMode::Pessimistic => MvEngine::pessimistic(MvConfig::default()),
        };
        let table = engine.create_table(TableSpec::keyed_u64("t", 256)).unwrap();
        engine
            .populate(table, (0..100u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        (engine, table)
    }

    fn both_modes() -> Vec<ConcurrencyMode> {
        vec![ConcurrencyMode::Optimistic, ConcurrencyMode::Pessimistic]
    }

    #[test]
    fn read_your_own_writes() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut txn = engine.begin(IsolationLevel::Serializable);
            assert_eq!(
                txn.read(t, IndexId(0), 5)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(1)
            );
            txn.update(t, IndexId(0), 5, rowbuf::keyed_row(5, 16, 99))
                .unwrap();
            assert_eq!(
                txn.read(t, IndexId(0), 5)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(99)
            );
            txn.commit().unwrap();

            let mut check = engine.begin(IsolationLevel::ReadCommitted);
            assert_eq!(
                check
                    .read(t, IndexId(0), 5)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(99)
            );
            check.commit().unwrap();
        }
    }

    #[test]
    fn aborted_writes_are_invisible() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut txn = engine.begin(IsolationLevel::Serializable);
            txn.update(t, IndexId(0), 5, rowbuf::keyed_row(5, 16, 99))
                .unwrap();
            txn.insert(t, rowbuf::keyed_row(1000, 16, 7)).unwrap();
            txn.abort();

            let mut check = engine.begin(IsolationLevel::ReadCommitted);
            assert_eq!(
                check
                    .read(t, IndexId(0), 5)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(1)
            );
            assert!(check.read(t, IndexId(0), 1000).unwrap().is_none());
            check.commit().unwrap();
        }
    }

    #[test]
    fn insert_then_read_and_delete() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            txn.insert(t, rowbuf::keyed_row(500, 16, 42)).unwrap();
            txn.commit().unwrap();

            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            assert_eq!(
                txn.read(t, IndexId(0), 500)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(42)
            );
            assert!(txn.delete(t, IndexId(0), 500).unwrap());
            assert!(txn.read(t, IndexId(0), 500).unwrap().is_none());
            txn.commit().unwrap();

            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            assert!(txn.read(t, IndexId(0), 500).unwrap().is_none());
            assert!(!txn.delete(t, IndexId(0), 500).unwrap());
            txn.commit().unwrap();
        }
    }

    #[test]
    fn duplicate_insert_rejected() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            let err = txn.insert(t, rowbuf::keyed_row(5, 16, 3)).unwrap_err();
            assert!(matches!(err, MmdbError::DuplicateKey { .. }));
            txn.abort();
        }
    }

    #[test]
    fn write_write_conflict_first_writer_wins() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut t1 = engine.begin(IsolationLevel::ReadCommitted);
            let mut t2 = engine.begin(IsolationLevel::ReadCommitted);
            assert!(t1
                .update(t, IndexId(0), 10, rowbuf::keyed_row(10, 16, 2))
                .unwrap());
            let err = t2
                .update(t, IndexId(0), 10, rowbuf::keyed_row(10, 16, 3))
                .unwrap_err();
            assert!(
                matches!(err, MmdbError::WriteWriteConflict { .. }),
                "{mode:?}: {err:?}"
            );
            t2.abort();
            t1.commit().unwrap();

            let mut check = engine.begin(IsolationLevel::ReadCommitted);
            assert_eq!(
                check
                    .read(t, IndexId(0), 10)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(2)
            );
            check.commit().unwrap();
        }
    }

    #[test]
    fn snapshot_isolation_reads_as_of_begin() {
        for mode in both_modes() {
            let (engine, t) = engine(mode);
            let mut snapshot = engine.begin(IsolationLevel::SnapshotIsolation);
            // Touch the snapshot so its begin time is pinned by a read.
            assert_eq!(
                snapshot
                    .read(t, IndexId(0), 3)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(1)
            );

            // A later writer commits a change.
            let mut writer = engine.begin(IsolationLevel::ReadCommitted);
            writer
                .update(t, IndexId(0), 3, rowbuf::keyed_row(3, 16, 77))
                .unwrap();
            writer.commit().unwrap();

            // The snapshot still sees the old value; a read-committed reader
            // sees the new one.
            assert_eq!(
                snapshot
                    .read(t, IndexId(0), 3)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(1)
            );
            snapshot.commit().unwrap();

            let mut rc = engine.begin(IsolationLevel::ReadCommitted);
            assert_eq!(
                rc.read(t, IndexId(0), 3)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(77)
            );
            rc.commit().unwrap();
        }
    }

    #[test]
    fn optimistic_serializable_detects_non_repeatable_read() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        let mut reader = engine.begin(IsolationLevel::Serializable);
        assert!(reader.read(t, IndexId(0), 20).unwrap().is_some());

        let mut writer = engine.begin(IsolationLevel::ReadCommitted);
        writer
            .update(t, IndexId(0), 20, rowbuf::keyed_row(20, 16, 9))
            .unwrap();
        writer.commit().unwrap();

        let err = reader.commit().unwrap_err();
        assert_eq!(err, MmdbError::ReadValidationFailed);
    }

    #[test]
    fn optimistic_serializable_detects_phantom() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        let mut scanner = engine.begin(IsolationLevel::Serializable);
        // Key 1234 does not exist yet; the scan is registered.
        assert!(scanner.read(t, IndexId(0), 1234).unwrap().is_none());

        let mut inserter = engine.begin(IsolationLevel::ReadCommitted);
        inserter.insert(t, rowbuf::keyed_row(1234, 16, 1)).unwrap();
        inserter.commit().unwrap();

        let err = scanner.commit().unwrap_err();
        assert_eq!(err, MmdbError::PhantomDetected);
    }

    #[test]
    fn pessimistic_read_lock_blocks_writer_until_reader_finishes() {
        let (engine, t) = engine(ConcurrencyMode::Pessimistic);
        let mut reader = engine.begin(IsolationLevel::RepeatableRead);
        assert!(reader.read(t, IndexId(0), 30).unwrap().is_some());

        // The writer eagerly updates but must wait for the reader at commit.
        let engine2 = engine.clone();
        let writer_thread = std::thread::spawn(move || {
            let mut writer =
                engine2.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::ReadCommitted);
            writer
                .update(t, IndexId(0), 30, rowbuf::keyed_row(30, 16, 55))
                .unwrap();
            writer.commit()
        });

        // Give the writer time to reach its commit wait, then finish reading.
        std::thread::sleep(std::time::Duration::from_millis(50));
        reader.commit().unwrap();
        let commit_result = writer_thread.join().unwrap();
        assert!(
            commit_result.is_ok(),
            "writer should commit after the read lock drains: {commit_result:?}"
        );

        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 30)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(55)
        );
        check.commit().unwrap();
    }

    #[test]
    fn mixed_modes_share_one_database() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        let mut opt = engine.begin_with(ConcurrencyMode::Optimistic, IsolationLevel::Serializable);
        let mut pes = engine.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::Serializable);
        opt.update(t, IndexId(0), 40, rowbuf::keyed_row(40, 16, 2))
            .unwrap();
        pes.update(t, IndexId(0), 41, rowbuf::keyed_row(41, 16, 3))
            .unwrap();
        opt.commit().unwrap();
        pes.commit().unwrap();

        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 40)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(2)
        );
        assert_eq!(
            check
                .read(t, IndexId(0), 41)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(3)
        );
        check.commit().unwrap();
    }

    #[test]
    fn garbage_collection_reclaims_superseded_versions() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        assert_eq!(engine.version_count(t).unwrap(), 100);
        for round in 0..5u8 {
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            for key in 0..20u64 {
                txn.update(t, IndexId(0), key, rowbuf::keyed_row(key, 16, round + 2))
                    .unwrap();
            }
            txn.commit().unwrap();
        }
        // 100 rows + 100 superseded versions linger until GC runs.
        assert_eq!(engine.version_count(t).unwrap(), 200);
        let mut reclaimed = 0;
        for _ in 0..10 {
            reclaimed += engine.collect_garbage();
        }
        assert_eq!(reclaimed, 100);
        assert_eq!(engine.version_count(t).unwrap(), 100);
        // Data is intact after collection.
        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        for key in 0..20u64 {
            assert_eq!(
                check
                    .read(t, IndexId(0), key)
                    .unwrap()
                    .map(|r| rowbuf::fill_of(&r)),
                Some(6)
            );
        }
        check.commit().unwrap();
    }

    #[test]
    fn dropping_a_transaction_aborts_it() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        {
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            txn.update(t, IndexId(0), 50, rowbuf::keyed_row(50, 16, 123))
                .unwrap();
            // Dropped without commit.
        }
        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 50)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(1)
        );
        check.commit().unwrap();
        assert!(engine.stats().snapshot().aborts >= 1);
    }

    #[test]
    fn adaptive_engine_flips_to_pessimistic_under_conflicts_and_back() {
        let config = MvConfig::default().with_cc(crate::config::CcPolicy::Adaptive {
            window: 8,
            enter: 0.2,
            exit: 0.05,
        });
        let engine = MvEngine::new(config);
        let t = engine.create_table(TableSpec::keyed_u64("t", 256)).unwrap();
        engine
            .populate(t, (0..8u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        assert_eq!(engine.label(), "MV/A");
        let probe = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(probe.mode(), ConcurrencyMode::Optimistic);
        probe.abort();

        // Synthetic hotspot: every round a winner commits and a loser takes
        // a first-writer-wins conflict on key 0 (~50% conflict rate).
        for round in 0..64u8 {
            let mut w1 =
                engine.begin_with(ConcurrencyMode::Optimistic, IsolationLevel::ReadCommitted);
            let mut w2 =
                engine.begin_with(ConcurrencyMode::Optimistic, IsolationLevel::ReadCommitted);
            w1.update(t, IndexId(0), 0, rowbuf::keyed_row(0, 16, round))
                .unwrap();
            assert!(w2
                .update(t, IndexId(0), 0, rowbuf::keyed_row(0, 16, round))
                .is_err());
            w2.abort();
            w1.commit().unwrap();
        }
        let hot = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            hot.mode(),
            ConcurrencyMode::Pessimistic,
            "hotspot must flip default transactions to MV/L"
        );
        hot.abort();
        // Read-only transactions stay optimistic even during the hotspot.
        let ro = engine.begin_hinted(true, &[], IsolationLevel::Serializable);
        assert_eq!(ro.mode(), ConcurrencyMode::Optimistic);
        ro.abort();

        // Hotspot drains: conflict-free traffic decays the score below exit.
        for i in 0..400u64 {
            let mut txn =
                engine.begin_with(ConcurrencyMode::Optimistic, IsolationLevel::ReadCommitted);
            txn.update(t, IndexId(0), i % 8, rowbuf::keyed_row(i % 8, 16, 1))
                .unwrap();
            txn.commit().unwrap();
        }
        let cooled = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            cooled.mode(),
            ConcurrencyMode::Optimistic,
            "drained hotspot must flip default transactions back to MV/O"
        );
        cooled.abort();
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let (engine, t) = engine(ConcurrencyMode::Optimistic);
        let before = engine.stats().snapshot();
        let mut ok = engine.begin(IsolationLevel::ReadCommitted);
        ok.update(t, IndexId(0), 60, rowbuf::keyed_row(60, 16, 2))
            .unwrap();
        ok.commit().unwrap();
        let bad = engine.begin(IsolationLevel::ReadCommitted);
        bad.abort();
        let delta = engine.stats().snapshot().delta_since(&before);
        assert_eq!(delta.commits, 1);
        assert_eq!(delta.aborts, 1);
        assert!(delta.versions_created >= 1);
    }
}
