//! Deterministic regression tests for the MV/L serializable phantom race.
//!
//! **The bug**: `add_new_version` used to honor scan locks *before* linking
//! the new version into the indexes. A serializable pessimistic scanner
//! could lock the bucket/range and complete its entire chain walk inside
//! that window: the scanner's §4.3.1 wait-for could not fire (the version
//! was not yet reachable), and the inserter's lock check had already come up
//! empty — so neither side delayed the other, the inserter drew an *earlier*
//! end timestamp than the scanner, and commit-timestamp order stopped being
//! a valid serialization order. The differential harness observed this as a
//! replayed history containing a key the live scan never saw (a phantom),
//! roughly once per couple hundred seeded runs on multicore hardware.
//!
//! **Why the tests are deterministic**: the window is a handful of
//! instructions wide and this project's CI container is single-core —
//! thousands of seeded stochastic runs never preempt inside it. Instead the
//! inserter thread installs a [`crate::txn::race_hooks`] callback that fires
//! exactly between `link_version` and `honor_scan_locks`, parks there on a
//! rendezvous channel, and the test runs a *complete* serializable scan
//! while it is parked — the precise interleaving the old code lost. With
//! the link-first ordering the scanner finds the (invisible) linked version
//! and imposes a wait-for dependency, and the resumed inserter additionally
//! sees the scanner's bucket/range lock; either mechanism alone forces the
//! inserter to precommit after the scanner.
//!
//! Two variants pin both insert paths: the hash-bucket lock path (equality
//! probe of a missing key) and the ordered-index range lock path (range
//! scan), the latter being the hole the ordered index would have reopened.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::ids::IndexId;
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
use mmdb_common::row::{rowbuf, IndexSpec, TableSpec};

use crate::config::MvConfig;
use crate::engine::MvEngine;
use crate::txn::race_hooks;

/// Which scan shape the scanner uses (and therefore which lock table the
/// inserter must honor).
#[derive(Clone, Copy)]
enum ScanShape {
    /// Equality probe of a missing key on the hash primary index.
    HashBucket,
    /// Range scan `[15, 35]` on an ordered secondary index.
    OrderedRange,
}

/// The pinned interleaving:
///
/// 1. inserter links its version for key 25, then parks in the
///    link→honor window;
/// 2. the scanner runs its complete serializable scan (25 is absent /
///    outside the committed keys) while the inserter is parked;
/// 3. the inserter resumes, honors the scan locks, and calls `commit()`;
/// 4. the scanner re-runs its scan (must be unchanged), then commits;
/// 5. the inserter's commit completes — with a *later* end timestamp.
fn pinned_insert_scan_interleaving(shape: ScanShape) {
    let config = MvConfig::pessimistic().with_wait_timeout(Duration::from_secs(30));
    let engine = MvEngine::new(config);
    let spec = match shape {
        ScanShape::HashBucket => TableSpec::keyed_u64("t", 64),
        ScanShape::OrderedRange => {
            TableSpec::keyed_u64("t", 64).with_index(IndexSpec::ordered_u64("by_key", 0))
        }
    };
    let table = engine.create_table(spec).unwrap();
    engine
        .populate(
            table,
            [10u64, 20, 30].map(|k| rowbuf::keyed_row(k, 16, k as u8)),
        )
        .unwrap();

    let (entered_tx, entered_rx) = mpsc::channel::<mmdb_common::ids::TxnId>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let (linked_tx, linked_rx) = mpsc::channel::<()>();
    // Inserter's end timestamp once its commit returns; 0 = still blocked.
    let committed_at = Arc::new(AtomicU64::new(0));

    let engine2 = engine.clone();
    let committed_at2 = Arc::clone(&committed_at);
    let inserter = std::thread::spawn(move || {
        let mut txn =
            engine2.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::ReadCommitted);
        let me = txn.id();
        race_hooks::set_link_honor_gap(Box::new(move || {
            let _ = entered_tx.send(me);
            let _ = resume_rx.recv();
        }));
        txn.insert(table, rowbuf::keyed_row(25, 16, 99)).unwrap();
        race_hooks::clear_link_honor_gap();
        let _ = linked_tx.send(());
        let end_ts = txn.commit().unwrap();
        committed_at2.store(end_ts.0, Ordering::SeqCst);
        end_ts
    });

    // Wait until the inserter is parked with its version linked but the
    // scan locks not yet honored.
    let inserter_id = entered_rx.recv().unwrap();

    // Run the complete serializable scan inside the window.
    let mut scanner = engine.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::Serializable);
    let scan_once = |scanner: &mut crate::txn::MvTransaction| -> Vec<u64> {
        match shape {
            ScanShape::HashBucket => {
                assert!(
                    scanner.read(table, IndexId(0), 25).unwrap().is_none(),
                    "the uncommitted insert of key 25 must not be visible"
                );
                Vec::new()
            }
            ScanShape::OrderedRange => scanner
                .scan_range(table, IndexId(1), 15, 35)
                .unwrap()
                .iter()
                .map(|row| rowbuf::key_of(row))
                .collect(),
        }
    };
    let first = scan_once(&mut scanner);
    if matches!(shape, ScanShape::OrderedRange) {
        assert_eq!(first, vec![20, 30], "only committed keys in [15, 35]");
    }
    // §4.3.1: the scanner saw the linked-but-uncommitted version and must
    // have delayed its creator's precommit.
    assert!(
        scanner.handle.waiting_txns_contain(inserter_id),
        "scanner must have imposed a wait-for on the pending inserter"
    );

    // Resume the inserter: it honors our scan lock and calls commit().
    resume_tx.send(()).unwrap();
    linked_rx.recv().unwrap();

    // The inserter is now stuck in its pre-precommit wait. Give it ample
    // time to misbehave: with the old check-locks-then-link ordering its
    // commit sailed through right here.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        committed_at.load(Ordering::SeqCst),
        0,
        "inserter committed while a serializable scanner that missed its row \
         was still live — the §4.3 phantom window is open again"
    );

    // The scan must repeat exactly (the serializable guarantee the locks
    // exist to provide).
    let repeat = scan_once(&mut scanner);
    assert_eq!(
        first, repeat,
        "scan stopped being repeatable mid-transaction"
    );

    let scanner_end = scanner.commit().unwrap();
    let inserter_end = inserter.join().unwrap();
    assert!(
        inserter_end > scanner_end,
        "the delayed inserter must serialize after the scanner \
         (inserter {inserter_end:?} vs scanner {scanner_end:?})"
    );

    // And afterwards the insert is an ordinary, visible row.
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        check
            .read(table, IndexId(0), 25)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(99)
    );
    check.commit().unwrap();
}

#[test]
fn mvl_serializable_insert_cannot_slip_past_bucket_scanner_in_link_honor_window() {
    pinned_insert_scan_interleaving(ScanShape::HashBucket);
}

#[test]
fn mvl_serializable_insert_cannot_slip_past_range_scanner_in_link_honor_window() {
    pinned_insert_scan_interleaving(ScanShape::OrderedRange);
}
