//! The multiversion transaction: shared infrastructure and the normal
//! processing phase (§2.4 step 2, §3.1, §4.3.1).
//!
//! One [`MvTransaction`] type serves both concurrency-control schemes; the
//! [`ConcurrencyMode`] chosen at `begin` decides which extra steps run:
//!
//! * **Optimistic (MV/O, §3)** — reads and scans are recorded in the ReadSet
//!   and ScanSet for validation at commit; no locks are taken.
//! * **Pessimistic (MV/L, §4)** — reads of latest versions take record read
//!   locks, serializable scans take bucket locks, and eager updates/inserts
//!   install wait-for dependencies instead of blocking.
//!
//! Both modes use the same visibility logic, the same write-lock installation
//! (a CAS on the version's End word) and the same commit-dependency machinery
//! for speculative reads, which is what makes them mutually compatible
//! (§4.5).

use std::sync::Arc;

use crossbeam::epoch;

use mmdb_common::durability::Durability;
use mmdb_common::engine::EngineTxn;
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{IndexId, Key, TableId, Timestamp, TxnId};
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
use mmdb_common::row::{KeyScratch, Row, SearchPred};
use mmdb_common::stats::EngineStats;
use mmdb_common::word::{BeginWord, EndWord, LockWord};

use mmdb_storage::table::{Table, VersionPtr};
use mmdb_storage::txn_table::{DepRegistration, TxnHandle, TxnState};
use mmdb_storage::version::Version;

use crate::engine::MvInner;
use crate::visibility::{check_updatable, check_visibility, Updatability, Visibility};

/// A pointer to a version the transaction read (checked again during
/// optimistic validation).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadEntry {
    pub version: VersionPtr,
}

/// A recorded index scan, sufficient to repeat it during validation
/// (§3.1 "Start scan": index plus search predicate — an equality predicate
/// on a hash or ordered index, or an inclusive range predicate on an
/// ordered index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScanEntry {
    pub table: TableId,
    pub index: IndexId,
    pub pred: SearchPred,
}

/// A recorded write: the old version (update/delete) and/or the new version
/// (insert/update), plus what to put in the redo log.
#[derive(Debug, Clone)]
pub(crate) struct WriteEntry {
    pub table: TableId,
    /// Old version superseded or deleted by this transaction, if any.
    pub old: Option<VersionPtr>,
    /// New version created by this transaction, if any.
    pub new: Option<VersionPtr>,
    /// Primary-index key logged for deletes.
    pub delete_key: Option<Key>,
}

/// A bucket lock held by a serializable pessimistic transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BucketLockRef {
    pub table: TableId,
    pub index: IndexId,
    pub bucket: usize,
}

/// A range lock held by a serializable pessimistic transaction on an
/// ordered index (the predicate-granularity sibling of [`BucketLockRef`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RangeLockRef {
    pub table: TableId,
    pub index: IndexId,
    pub lo: Key,
    pub hi: Key,
}

/// Reusable per-transaction staging buffers (§2.5's "read path nearly free of
/// overhead"): index-scan candidates are staged here before visibility
/// checks take `&mut self`, and the buffer is **cleared, not freed** between
/// operations, so steady-state reads and scans perform no heap allocation.
///
/// Usage protocol: an operation takes the buffer out of the transaction
/// (`mem::take`), works on it as a local, and puts it back when done — so the
/// borrow checker never sees the buffer and the transaction borrowed at once,
/// and nested operations (which never happen on the scan paths) would simply
/// fall back to a fresh buffer instead of corrupting state.
#[derive(Debug, Default)]
pub(crate) struct TxnScratch {
    /// Candidate versions of the current index lookup.
    pub(crate) candidates: Vec<VersionPtr>,
    /// Per-index key extraction buffer for the write path (insert/update
    /// keys, uniqueness checks, bucket locks).
    pub(crate) keys: KeyScratch,
    /// Redo-record encode buffer: commit frames the transaction's write set
    /// in place and hands `RedoLogger::append_frame` a borrow.
    pub(crate) log_buf: Vec<u8>,
}

/// The complete recyclable buffer set of a transaction. `MvEngine` keeps a
/// pool of these: `begin` takes a warmed set, commit/abort clears and
/// returns it, so a steady-state transaction performs **no allocation for
/// its private state** — the paper's "normal processing never allocates
/// beyond the version chain itself" engineering goal, pinned by
/// `crates/core/tests/alloc_free.rs`.
#[derive(Debug, Default)]
pub(crate) struct TxnBuffers {
    pub(crate) read_set: Vec<ReadEntry>,
    pub(crate) scan_set: Vec<ScanEntry>,
    pub(crate) write_set: Vec<WriteEntry>,
    pub(crate) read_locks: Vec<VersionPtr>,
    pub(crate) bucket_locks: Vec<BucketLockRef>,
    pub(crate) range_locks: Vec<RangeLockRef>,
    pub(crate) touched: Vec<TableId>,
    pub(crate) scratch: TxnScratch,
}

impl TxnBuffers {
    /// Clear every buffer without releasing capacity. Entries are plain
    /// copies (pointers, keys, ids) — nothing to drop.
    pub(crate) fn clear(&mut self) {
        self.read_set.clear();
        self.scan_set.clear();
        self.write_set.clear();
        self.read_locks.clear();
        self.bucket_locks.clear();
        self.range_locks.clear();
        self.touched.clear();
        self.scratch.candidates.clear();
        self.scratch.keys.clear();
        self.scratch.log_buf.clear();
    }
}

/// A transaction against the multiversion engine.
///
/// Obtained from [`Engine::begin`](mmdb_common::engine::Engine::begin) or
/// [`MvEngine::begin_with`](crate::engine::MvEngine::begin_with); finished
/// with [`EngineTxn::commit`] or [`EngineTxn::abort`]. Dropping an unfinished
/// transaction aborts it.
pub struct MvTransaction {
    pub(crate) inner: Arc<MvInner>,
    pub(crate) handle: Arc<TxnHandle>,
    pub(crate) read_set: Vec<ReadEntry>,
    pub(crate) scan_set: Vec<ScanEntry>,
    pub(crate) write_set: Vec<WriteEntry>,
    /// Versions read-locked by this (pessimistic) transaction.
    pub(crate) read_locks: Vec<VersionPtr>,
    /// Buckets locked by this (serializable pessimistic) transaction.
    pub(crate) bucket_locks: Vec<BucketLockRef>,
    /// Ordered-index ranges locked by this (serializable pessimistic)
    /// transaction.
    pub(crate) range_locks: Vec<RangeLockRef>,
    /// Distinct tables this transaction has touched, for contention
    /// telemetry at commit/abort. A handful of entries at most, so a linear
    /// `contains` beats any set; capacity is recycled with the buffers.
    pub(crate) touched: Vec<TableId>,
    /// Set when an operation failed in a way that forces an abort
    /// (first-writer-wins conflicts, failed dependencies, ...). `commit`
    /// refuses to proceed once set.
    pub(crate) must_abort: Option<MmdbError>,
    /// True once commit/abort processing has run.
    pub(crate) finished: bool,
    /// Reusable scan staging buffers (cleared, never freed, per operation).
    pub(crate) scratch: TxnScratch,
    /// When `commit()` may return relative to log durability (§5: the
    /// paper's transactions run `Async` and never wait for log I/O).
    pub(crate) durability: Durability,
}

impl MvTransaction {
    pub(crate) fn new(
        inner: Arc<MvInner>,
        handle: Arc<TxnHandle>,
        bufs: TxnBuffers,
    ) -> MvTransaction {
        let durability = inner.config.durability;
        MvTransaction {
            inner,
            handle,
            read_set: bufs.read_set,
            scan_set: bufs.scan_set,
            write_set: bufs.write_set,
            read_locks: bufs.read_locks,
            bucket_locks: bufs.bucket_locks,
            range_locks: bufs.range_locks,
            touched: bufs.touched,
            must_abort: None,
            finished: false,
            scratch: bufs.scratch,
            durability,
        }
    }

    /// Return the transaction's buffers and handle to the engine pools
    /// (called exactly once, at the end of commit or abort processing).
    pub(crate) fn recycle(&mut self) {
        let mut bufs = TxnBuffers {
            read_set: std::mem::take(&mut self.read_set),
            scan_set: std::mem::take(&mut self.scan_set),
            write_set: std::mem::take(&mut self.write_set),
            read_locks: std::mem::take(&mut self.read_locks),
            bucket_locks: std::mem::take(&mut self.bucket_locks),
            range_locks: std::mem::take(&mut self.range_locks),
            touched: std::mem::take(&mut self.touched),
            scratch: std::mem::take(&mut self.scratch),
        };
        bufs.clear();
        self.inner.return_buffers(bufs);
        self.inner.return_handle(Arc::clone(&self.handle));
    }

    /// The transaction's concurrency mode (optimistic or pessimistic).
    pub fn mode(&self) -> ConcurrencyMode {
        self.handle.mode()
    }

    /// The transaction's begin timestamp.
    pub fn begin_ts(&self) -> Timestamp {
        self.handle.begin_ts()
    }

    /// The commit durability this transaction will use (defaults to the
    /// engine configuration's [`MvConfig::durability`](crate::config::MvConfig)).
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Override when `commit()` may return relative to log durability.
    /// [`Durability::Sync`] makes `commit()` block until this transaction's
    /// redo bytes are on durable storage — under a
    /// [`GroupCommitLog`](mmdb_storage::group_commit::GroupCommitLog) many
    /// Sync committers share one flush; under a plain
    /// [`FileLogger`](mmdb_storage::log::FileLogger) each one pays a full
    /// per-transaction flush. If the wait reports the log's sticky I/O
    /// error, the commit is rolled back in memory and the error returned.
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
    }

    #[inline]
    pub(crate) fn me(&self) -> TxnId {
        self.handle.id()
    }

    #[inline]
    pub(crate) fn stats(&self) -> &EngineStats {
        self.inner.store.stats()
    }

    /// Remember that an operation touched `table`, so commit/abort can feed
    /// the right contention-monitor cells.
    #[inline]
    pub(crate) fn note_table(&mut self, table: TableId) {
        if !self.touched.contains(&table) {
            self.touched.push(table);
        }
    }

    /// The logical read time (§2.5, §3.4, §4.3.1): read-committed reads "now"
    /// so it always sees the latest committed version; snapshot isolation
    /// reads as of the begin time; the serializable / repeatable-read rules
    /// differ between the two schemes (the optimistic scheme reads as of the
    /// begin time and validates, the pessimistic scheme reads the latest
    /// version and locks it).
    pub(crate) fn read_time(&self) -> Timestamp {
        let iso = self.handle.isolation();
        match self.handle.mode() {
            ConcurrencyMode::Optimistic => {
                if iso.optimistic_reads_at_begin() {
                    self.handle.begin_ts()
                } else {
                    self.inner.store.clock().now()
                }
            }
            ConcurrencyMode::Pessimistic => {
                if iso == IsolationLevel::SnapshotIsolation {
                    self.handle.begin_ts()
                } else {
                    self.inner.store.clock().now()
                }
            }
        }
    }

    /// Record a fatal (abort-forcing) error and return it.
    pub(crate) fn fail(&mut self, err: MmdbError) -> MmdbError {
        if self.must_abort.is_none() {
            self.must_abort = Some(err.clone());
        }
        err
    }

    fn ensure_open(&self) -> Result<()> {
        if self.finished {
            return Err(MmdbError::TransactionClosed);
        }
        if self.handle.abort_requested() {
            return Err(MmdbError::Aborted);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Commit dependencies (§2.7)
    // ------------------------------------------------------------------

    /// Take a commit dependency on `target` because we speculatively read
    /// (`speculative_visible == true`) or speculatively ignored (`false`)
    /// `version` at read time `rt`.
    pub(crate) fn take_commit_dependency(
        &mut self,
        target: TxnId,
        version: &Version,
        speculative_visible: bool,
        rt: Timestamp,
    ) -> Result<()> {
        EngineStats::bump(&self.stats().commit_dependencies);
        self.handle.add_incoming_commit_dep();
        match self.inner.store.txns().get(target) {
            Some(t) => match t.add_commit_dependent(self.me()) {
                DepRegistration::Registered => Ok(()),
                DepRegistration::AlreadyCommitted => {
                    self.handle.resolve_incoming_commit_dep(true);
                    Ok(())
                }
                DepRegistration::AlreadyAborted => {
                    self.handle.resolve_incoming_commit_dep(true); // rebalance the counter...
                    self.handle.request_abort(); // ...but the speculation failed
                    Err(self.fail(MmdbError::CommitDependencyFailed))
                }
            },
            None => {
                // The target terminated and finalized the version's fields;
                // decide from what the field says now.
                let ok = if speculative_visible {
                    match version.begin_word().as_timestamp() {
                        Some(ts) => !ts.is_infinity() && ts <= rt,
                        None => false,
                    }
                } else {
                    match version.end_word().as_timestamp() {
                        Some(ts) => ts <= rt,
                        None => false,
                    }
                };
                self.handle.resolve_incoming_commit_dep(true);
                if ok {
                    Ok(())
                } else {
                    self.handle.request_abort();
                    Err(self.fail(MmdbError::CommitDependencyFailed))
                }
            }
        }
    }

    /// Interpret a visibility outcome, taking any required commit dependency.
    /// Returns whether the version is visible.
    pub(crate) fn resolve_visibility(
        &mut self,
        version: &Version,
        vis: Visibility,
        rt: Timestamp,
    ) -> Result<bool> {
        if let Some(dep) = vis.dependency {
            self.take_commit_dependency(dep, version, vis.visible, rt)?;
        }
        Ok(vis.visible)
    }

    // ------------------------------------------------------------------
    // Pessimistic record locks (§4.1.1, §4.2.1)
    // ------------------------------------------------------------------

    /// Acquire a read lock on `version` (which the caller determined to be a
    /// latest version visible to us). Installs a wait-for dependency on the
    /// version's write locker if we are the first reader (§4.2.1).
    ///
    /// If the version has been finalized to a committed end timestamp in the
    /// meantime (another writer committed between our visibility check and
    /// the lock attempt), the read is no longer stable and the transaction
    /// aborts — the pessimistic scheme has no validation step that could
    /// catch the stale read later.
    pub(crate) fn acquire_read_lock(&mut self, version: &Version, ptr: VersionPtr) -> Result<()> {
        let outcome = version.update_end(|word| match word {
            EndWord::Timestamp(ts) if ts.is_infinity() => Some(EndWord::Lock(
                LockWord::EMPTY.with_extra_reader().expect("0 < max"),
            )),
            // Superseded by a committed transaction after our visibility
            // check: signal "stop" and abort below.
            EndWord::Timestamp(_) => None,
            EndWord::Lock(lock) => {
                if lock.no_more_read_locks {
                    None
                } else {
                    lock.with_extra_reader().map(EndWord::Lock)
                }
            }
        });

        match outcome {
            Ok((before, _after)) => {
                if let EndWord::Lock(before_lock) = before {
                    if before_lock.read_lock_count == 0 {
                        if let Some(writer) = before_lock.writer {
                            // First read lock on a write-locked version: the
                            // writer must now wait for us (§4.2.1).
                            if !self.install_wait_for_on(writer) {
                                // The writer no longer accepts dependencies;
                                // undo our read lock and abort (the paper's
                                // starvation rule).
                                self.undo_read_lock(version);
                                return Err(self.fail(MmdbError::ReadLockUnavailable));
                            }
                        }
                    }
                }
                self.read_locks.push(ptr);
                self.handle.record_read_lock(ptr);
                Ok(())
            }
            Err(_observed) => {
                // Either the version was superseded while we were looking
                // (stale read — no lock can make it stable any more) or the
                // read-lock count is saturated / closed. The paper aborts the
                // reader in the latter cases; we abort in both.
                EngineStats::bump(&self.stats().write_conflicts);
                Err(self.fail(MmdbError::ReadLockUnavailable))
            }
        }
    }

    /// Undo a read-lock acquisition whose wait-for installation failed. Sets
    /// `NoMoreReadLocks` so the counter cannot oscillate around zero while
    /// the writer is precommitting.
    fn undo_read_lock(&self, version: &Version) {
        let _ = version.update_end(|word| match word {
            EndWord::Lock(lock) if lock.read_lock_count > 0 => {
                let mut new = lock.with_reader_released();
                new.no_more_read_locks = true;
                Some(EndWord::Lock(new))
            }
            _ => None,
        });
    }

    /// Release one read lock (end of normal processing, §4.3.1). If we are
    /// the last reader of a write-locked version we also release the writer's
    /// wait-for dependency (§4.2.1).
    pub(crate) fn release_read_lock(&self, ptr: VersionPtr) {
        let version = ptr.get();
        let outcome = version.update_end(|word| match word {
            EndWord::Lock(lock) if lock.read_lock_count > 0 => {
                let mut new = lock.with_reader_released();
                if new.read_lock_count == 0 && new.writer.is_some() {
                    // Prevent further read locks: the writer is about to be
                    // released and new read locks could not delay it anyway.
                    new.no_more_read_locks = true;
                }
                Some(EndWord::Lock(new))
            }
            // Already finalized to a timestamp (the writer committed and
            // postprocessed) or the lock vanished: nothing to release.
            _ => None,
        });
        if let Ok((EndWord::Lock(before), EndWord::Lock(after))) = outcome {
            if before.read_lock_count == 1 && after.read_lock_count == 0 {
                if let Some(writer) = before.writer {
                    if let Some(w) = self.inner.store.txns().get(writer) {
                        w.release_wait_for();
                    }
                }
            }
        }
        self.handle.forget_read_lock(ptr);
    }

    /// Install a wait-for dependency *on ourselves* held by `holder`: we may
    /// not precommit until `holder` completes. Registers us in nobody's list
    /// — the dependency is released by whoever owns the triggering resource
    /// (see callers). Returns false if our own counter may no longer grow.
    pub(crate) fn self_wait_on_version(&mut self) -> bool {
        EngineStats::bump(&self.stats().wait_for_dependencies);
        self.handle.try_add_wait_for()
    }

    /// Make `target` wait for us: increments `target`'s WaitForCounter and
    /// remembers it in our WaitingTxnList so our precommit releases it.
    /// Returns false if `target` no longer accepts wait-for dependencies.
    pub(crate) fn impose_wait_for_on(&mut self, target: TxnId) -> bool {
        if self.handle.waiting_txns_contain(target) {
            // Already delayed by us (e.g. it waits on our bucket lock, or a
            // previous scan found the same pending version). One wait-for
            // suffices, and re-registering could be refused spuriously once
            // the target has closed its wait-fors for its own precommit wait.
            return true;
        }
        let Some(t) = self.inner.store.txns().get(target) else {
            // Target already terminated: nothing to delay.
            return true;
        };
        if !t.try_add_wait_for() {
            return false;
        }
        EngineStats::bump(&self.stats().wait_for_dependencies);
        self.handle.add_waiting_txn(target);
        true
    }

    /// Make ourselves wait for `holder` (bucket-lock case, §4.2.2): increment
    /// our WaitForCounter and register in `holder`'s WaitingTxnList so that
    /// `holder`'s precommit releases us.
    pub(crate) fn wait_for_holder(&mut self, holder: TxnId) -> Result<()> {
        if holder == self.me() {
            return Ok(());
        }
        let Some(h) = self.inner.store.txns().get(holder) else {
            return Ok(());
        };
        if !self.handle.try_add_wait_for() {
            return Err(self.fail(MmdbError::WaitForRefused));
        }
        EngineStats::bump(&self.stats().wait_for_dependencies);
        if !h.add_waiting_txn(self.me()) {
            // Holder already completed; no need to wait after all.
            self.handle.release_wait_for();
        }
        Ok(())
    }

    /// Install a wait-for dependency on `writer` on behalf of ourselves as a
    /// first reader (§4.2.1): `writer` may not precommit until we release our
    /// read lock. The release happens through the lock word (last reader
    /// decrements), so the writer is *not* added to our WaitingTxnList.
    fn install_wait_for_on(&mut self, writer: TxnId) -> bool {
        let Some(w) = self.inner.store.txns().get(writer) else {
            // Writer terminated; it has already precommitted, nothing to delay.
            return true;
        };
        EngineStats::bump(&self.stats().wait_for_dependencies);
        w.try_add_wait_for()
    }

    // ------------------------------------------------------------------
    // Write-lock installation and new-version linking
    // ------------------------------------------------------------------

    /// Install our write lock on the version `ptr` points at, which the
    /// updatability check said was updatable with End word `observed`.
    /// Preserves any read-lock bits (both schemes honor read locks, §4.5).
    ///
    /// If we hold read locks on the version ourselves they are *upgraded*:
    /// released immediately, because the write lock now guarantees the read's
    /// stability (first-writer-wins — nobody else can supersede the version).
    /// If other transactions still hold read locks after the upgrade, we take
    /// a wait-for dependency: we cannot precommit until their locks drain,
    /// and the last reader to release decrements our counter (§4.2.1).
    pub(crate) fn install_write_lock(&mut self, ptr: VersionPtr, observed: EndWord) -> Result<()> {
        let version = ptr.get();
        let new_word = match observed {
            EndWord::Timestamp(ts) if ts.is_infinity() => {
                EndWord::Lock(LockWord::write_locked(self.me()))
            }
            EndWord::Lock(lock) => EndWord::Lock(lock.with_writer(self.me())),
            EndWord::Timestamp(_) => {
                return Err(self.fail(MmdbError::WriteWriteConflict {
                    txn: self.me(),
                    holder: None,
                }))
            }
        };
        if !version.cas_end(observed, new_word) {
            EngineStats::bump(&self.stats().write_conflicts);
            return Err(self.fail(MmdbError::WriteWriteConflict {
                txn: self.me(),
                holder: version.write_locker(),
            }));
        }
        if let EndWord::Lock(lock) = observed {
            let own = self.read_locks.iter().filter(|p| **p == ptr).count() as u8;
            let others = lock.read_lock_count.saturating_sub(own);
            if others > 0 {
                // Eager update of a version read-locked by others: we cannot
                // precommit until their locks drain. Register the wait-for
                // *before* touching the lock word, so the decrement fired by
                // the drain-to-zero transition (release_read_lock, which sees
                // our writer bit after the CAS above) always pairs with this
                // registration — registering afterwards can leave the counter
                // permanently at -1 when the last reader drains in between,
                // silently absorbing one future wait-for dependency.
                self.self_wait_on_version();
            }
            if own > 0 {
                // Upgrade: drop our own read locks — the write lock now
                // guarantees the read's stability, and waiting on our own
                // read lock would deadlock us with ourselves.
                self.read_locks.retain(|p| *p != ptr);
                for _ in 0..own {
                    self.handle.forget_read_lock(ptr);
                }
                let removed = version.update_end(|word| match word {
                    EndWord::Lock(l) if l.read_lock_count >= own => {
                        let mut upgraded = l;
                        upgraded.read_lock_count -= own;
                        Some(EndWord::Lock(upgraded))
                    }
                    _ => None,
                });
                if others > 0 {
                    if let Ok((_, after)) = removed {
                        let left = after.as_lock().map(|l| l.read_lock_count).unwrap_or(0);
                        if left == 0 {
                            // Our own removal (not a reader's release) brought
                            // the count to zero, so the drain-to-zero wake-up
                            // never fires: undo the registration ourselves.
                            self.handle.release_wait_for();
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Honor scan locks when adding a new version to the indexes (§4.2.2,
    /// generalized to predicate granularity): for every locked hash bucket
    /// the new version lands in, and for every locked ordered-index range
    /// containing one of its keys, wait for every lock-holding
    /// (serializable) transaction.
    ///
    /// Must be called **after** the version is linked (see
    /// [`Self::add_new_version`]): checking first and linking second leaves a
    /// window in which a scanner can lock the bucket/range and finish its
    /// chain walk without either side noticing the other.
    pub(crate) fn honor_scan_locks(&mut self, table: &Table, keys: &[Key]) -> Result<()> {
        for (slot, key) in keys.iter().enumerate() {
            let index = IndexId(slot as u32);
            if table.is_ordered(index)? {
                let locks = table.range_locks(index)?;
                if locks.is_locked() {
                    for holder in locks.holders_of(*key) {
                        self.wait_for_holder(holder)?;
                    }
                }
            } else {
                let locks = table.bucket_locks(index)?;
                let bucket = table.bucket_of(index, *key)?;
                if locks.is_locked(bucket) {
                    for holder in locks.holders(bucket) {
                        self.wait_for_holder(holder)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Register a serializable scan for later validation (optimistic) or take
    /// the bucket/range lock (pessimistic). Equality probes of a hash index
    /// lock the bucket the key hashes to (§4.1.2); equality probes of an
    /// ordered index lock the degenerate range `[key, key]`; range scans
    /// lock the scanned predicate `[lo, hi]` itself.
    pub(crate) fn register_scan(
        &mut self,
        table: &Table,
        index: IndexId,
        pred: SearchPred,
    ) -> Result<()> {
        if !self.handle.isolation().requires_phantom_protection() {
            return Ok(());
        }
        match self.handle.mode() {
            ConcurrencyMode::Optimistic => {
                let entry = ScanEntry {
                    table: table.id(),
                    index,
                    pred,
                };
                if !self.scan_set.contains(&entry) {
                    self.scan_set.push(entry);
                }
            }
            ConcurrencyMode::Pessimistic => {
                let (lo, hi) = match pred {
                    SearchPred::Eq(key) if !table.is_ordered(index)? => {
                        let bucket = table.bucket_of(index, key)?;
                        if table.bucket_locks(index)?.lock(bucket, self.me()) {
                            self.bucket_locks.push(BucketLockRef {
                                table: table.id(),
                                index,
                                bucket,
                            });
                        }
                        return Ok(());
                    }
                    SearchPred::Eq(key) => (key, key),
                    SearchPred::Range { lo, hi } => (lo, hi),
                };
                if table.range_locks(index)?.lock(lo, hi, self.me()) {
                    self.range_locks.push(RangeLockRef {
                        table: table.id(),
                        index,
                        lo,
                        hi,
                    });
                }
            }
        }
        Ok(())
    }

    /// §4.3 store→load fence, scan side. A serializable pessimistic scan
    /// publishes its bucket/range lock and then reads the index chains; a
    /// writer links its new version and then reads the lock tables. Each
    /// side's store must be globally ordered before its subsequent load —
    /// otherwise both can miss the other (the store-buffer litmus), and the
    /// writer may precommit with an *earlier* end timestamp than a scanner
    /// that never saw its version: a phantom. Pairs with the fence in
    /// [`Self::add_new_version`]; skipped when no lock was published, so the
    /// hot read path below serializable never pays the full barrier.
    #[inline]
    fn scan_lock_fence(&self) {
        if self.handle.mode() == ConcurrencyMode::Pessimistic
            && self.handle.isolation().requires_phantom_protection()
        {
            std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        }
    }

    // ------------------------------------------------------------------
    // Normal-processing operations
    // ------------------------------------------------------------------

    /// Core of every read/scan: find the versions visible at the read time
    /// whose `index` key equals `key` and hand each one's payload to `visit`
    /// by reference. If `single` is set, stop at the first visible version
    /// (unique-index point lookup). Returns the number of rows visited.
    ///
    /// This path performs **no heap allocation in steady state**: candidates
    /// are staged in the transaction's [`TxnScratch`] (capacity reused across
    /// operations), the visibility lookup is a lock-free borrow from the
    /// transaction table, and nothing is materialized for the caller — the
    /// zero-allocation regression test (`crates/core/tests/alloc_free.rs`)
    /// pins this.
    fn scan_visible_with(
        &mut self,
        table_id: TableId,
        index: IndexId,
        key: Key,
        single: bool,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.ensure_open()?;
        self.note_table(table_id);
        let guard = epoch::pin();
        // Lock-free table resolution: a load of the epoch-published catalog
        // slice, borrowed under our guard (no `RwLock`, no `Arc` clone).
        let table = self.inner.store.table_in(table_id, &guard)?;
        let rt = self.read_time();
        self.register_scan(table, index, SearchPred::Eq(key))?;
        self.scan_lock_fence();

        // Stage candidates in the transaction-owned buffer so no iterator
        // borrow of the table is held while taking dependencies (which needs
        // `&mut self`). Taken out and restored around the walk; an error in
        // between only costs the buffer's capacity.
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        let result = (|| {
            candidates.extend(table.candidate_ptrs(index, key, &guard)?);
            self.visit_candidates(&candidates, rt, single, &guard, visit)
        })();
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        result
    }

    /// Visibility walk over staged candidates (see [`Self::scan_visible_with`]).
    fn visit_candidates(
        &mut self,
        candidates: &[VersionPtr],
        rt: Timestamp,
        single: bool,
        guard: &epoch::Guard,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        let iso = self.handle.isolation();
        let mode = self.handle.mode();
        let mut visited = 0usize;
        for &ptr in candidates {
            let version = ptr.get();
            let vis = check_visibility(version, rt, self.me(), self.inner.store.txns(), guard);

            if !vis.visible
                && mode == ConcurrencyMode::Pessimistic
                && iso.requires_phantom_protection()
                && vis.dependency.is_none()
            {
                // §4.3.1: an invisible version owned by a still-active
                // transaction is a potential phantom — whether it is being
                // *deleted/updated* (transaction ID in the End field) or being
                // *created* (transaction ID in the Begin field). Delay that
                // transaction's precommit until we are done, so it serializes
                // after us and our scan result stays exact at our end
                // timestamp.
                let end_writer = version.end_word().writer();
                let begin_creator = version.begin_word().as_txn();
                for owner in [end_writer, begin_creator].into_iter().flatten() {
                    if owner != self.me() && !self.impose_wait_for_on(owner) {
                        return Err(self.fail(MmdbError::WaitForRefused));
                    }
                }
            }

            let visible = self.resolve_visibility(version, vis, rt)?;
            if !visible {
                continue;
            }

            // Reads at repeatable-read or serializable need read stability.
            if iso.requires_read_stability() {
                match mode {
                    ConcurrencyMode::Optimistic => self.read_set.push(ReadEntry { version: ptr }),
                    ConcurrencyMode::Pessimistic => {
                        // Updates and deletes only ever touch latest versions,
                        // so only latest versions need read locks. A visible
                        // version at the pessimistic read time ("now") is the
                        // latest unless a writer just superseded it, in which
                        // case `acquire_read_lock` aborts us.
                        self.acquire_read_lock(version, ptr)?;
                    }
                }
            }

            visit(version.data());
            visited += 1;
            if single {
                break;
            }
        }
        Ok(visited)
    }

    /// Core of every range scan: find the versions visible at the read time
    /// whose `index` key falls in the inclusive range `[lo, hi]`, in
    /// ascending key order, and hand each one's payload to `visit` by
    /// reference. Requires an ordered index
    /// ([`MmdbError::IndexNotOrdered`] otherwise). Same staging protocol and
    /// the same per-candidate §4.3.1 phantom machinery as
    /// [`Self::scan_visible_with`]; only the registered predicate (a range,
    /// not a key) and the candidate source (skip list, not bucket chain)
    /// differ.
    fn scan_range_visible_with(
        &mut self,
        table_id: TableId,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.ensure_open()?;
        self.note_table(table_id);
        let guard = epoch::pin();
        let table = self.inner.store.table_in(table_id, &guard)?;
        if !table.is_ordered(index)? {
            return Err(MmdbError::IndexNotOrdered(table_id, index));
        }
        let rt = self.read_time();
        self.register_scan(table, index, SearchPred::Range { lo, hi })?;
        self.scan_lock_fence();

        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        let result = (|| {
            candidates.extend(table.range_candidate_ptrs(index, lo, hi, &guard)?);
            self.visit_candidates(&candidates, rt, false, &guard, visit)
        })();
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        result
    }

    /// Locate the version this transaction should update or delete: the
    /// visible version with the given key. Pessimistic transactions (and
    /// read-committed optimistic ones) see the latest committed version,
    /// which is the one that must be updatable.
    fn find_update_target(
        &mut self,
        table: &Table,
        index: IndexId,
        key: Key,
    ) -> Result<Option<VersionPtr>> {
        self.ensure_open()?;
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        let result = self.find_update_target_staged(table, index, key, &mut candidates);
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        result
    }

    fn find_update_target_staged(
        &mut self,
        table: &Table,
        index: IndexId,
        key: Key,
        candidates: &mut Vec<VersionPtr>,
    ) -> Result<Option<VersionPtr>> {
        // Updates never read-lock the target (the write lock supersedes it).
        // A lookup that *finds* its row needs no phantom protection either —
        // the write lock keeps that row stable. Only a *miss* is
        // phantom-sensitive: "key absent" is an observation a serializable
        // transaction relies on, so on a miss we register the lookup
        // (optimistic ScanSet / pessimistic bucket lock) and look again under
        // that protection. Registering unconditionally would make every pair
        // of same-bucket serializable updaters delay each other's precommit
        // for no reason (each waits on the other's bucket lock), turning
        // routine disjoint-key updates into deadlock-victim aborts.
        let rt = self.read_time();
        let iso = self.handle.isolation();
        let mode = self.handle.mode();
        let mut registered = false;
        loop {
            // Candidates are re-staged each pass: a version may have been
            // linked between the unprotected miss and the protected retry.
            let guard = epoch::pin();
            candidates.clear();
            candidates.extend(table.candidate_ptrs(index, key, &guard)?);
            for ptr in candidates.iter().copied() {
                let version = ptr.get();
                let vis = check_visibility(version, rt, self.me(), self.inner.store.txns(), &guard);
                if registered
                    && !vis.visible
                    && mode == ConcurrencyMode::Pessimistic
                    && iso.requires_phantom_protection()
                    && vis.dependency.is_none()
                {
                    // Same potential-phantom rule as in `visit_candidates`:
                    // an invisible version owned by a live transaction
                    // (pending insert of this key, or a pending delete whose
                    // abort would resurrect it) must serialize after our "not
                    // found" observation.
                    let end_writer = version.end_word().writer();
                    let begin_creator = version.begin_word().as_txn();
                    for owner in [end_writer, begin_creator].into_iter().flatten() {
                        if owner != self.me() && !self.impose_wait_for_on(owner) {
                            return Err(self.fail(MmdbError::WaitForRefused));
                        }
                    }
                }
                if self.resolve_visibility(version, vis, rt)? {
                    return Ok(Some(ptr));
                }
            }
            if registered || !iso.requires_phantom_protection() {
                return Ok(None);
            }
            self.register_scan(table, index, SearchPred::Eq(key))?;
            self.scan_lock_fence();
            registered = true;
        }
    }

    /// Create, register and link a new version carrying `row`, whose index
    /// keys the caller already extracted (once per write — they are shared
    /// with uniqueness checks and bucket-lock honoring). Steady state this
    /// allocates nothing: the version comes from the table's recycle pool
    /// and the write set grows within retained capacity.
    fn add_new_version(
        &mut self,
        table: &Table,
        row: Row,
        keys: &[Key],
        old: Option<VersionPtr>,
        delete_key: Option<Key>,
    ) -> Result<VersionPtr> {
        let owned = table.make_version_with(self.me(), row, keys)?;
        let guard = epoch::pin();
        let ptr = table.link_version(owned, &guard);
        EngineStats::bump(&self.stats().versions_created);
        // Record the write *before* honoring scan locks: if the wait below
        // fails, abort processing must find the linked version to retire it.
        self.write_set.push(WriteEntry {
            table: table.id(),
            old,
            new: Some(ptr),
            delete_key,
        });
        // Store→load fence, writer side (pairs with `scan_lock_fence`): the
        // link stores above must be globally visible before the lock-table
        // loads below, or a concurrent serializable scanner and this writer
        // can both miss each other (store-buffer litmus).
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        #[cfg(test)]
        race_hooks::fire_link_honor_gap();
        // Respect scan locks only now that the version is reachable. The
        // reverse order (check locks, then link) left a window in which a
        // serializable scanner could lock the bucket/range *and* complete its
        // chain walk entirely between our check and our link: the scanner's
        // §4.3.1 wait-for could not fire (our version was not yet linked),
        // our check saw no lock — so nothing stopped us drawing an earlier
        // end timestamp than the scanner and committing a phantom its repeat
        // of the scan would have seen. With link-first, a scanner either
        // walks the chain before our link (then we see its lock here and
        // wait) or after (then it sees our version and imposes the wait-for
        // itself); either way we precommit after it.
        self.honor_scan_locks(table, keys)?;
        Ok(ptr)
    }

    /// Enforce uniqueness for `insert` on every unique index of the table.
    fn check_unique(&mut self, table: &Table, keys: &[Key]) -> Result<()> {
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        let result = self.check_unique_staged(table, keys, &mut candidates);
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        result
    }

    fn check_unique_staged(
        &mut self,
        table: &Table,
        keys: &[Key],
        candidates: &mut Vec<VersionPtr>,
    ) -> Result<()> {
        let rt = self.inner.store.clock().now();
        let guard = epoch::pin();
        for (slot, key) in keys.iter().enumerate() {
            let index = IndexId(slot as u32);
            if !table.is_unique(index)? {
                continue;
            }
            candidates.clear();
            candidates.extend(table.candidate_ptrs(index, *key, &guard)?);
            for ptr in candidates.iter() {
                let version = ptr.get();
                let vis = check_visibility(version, rt, self.me(), self.inner.store.txns(), &guard);
                if self.resolve_visibility(version, vis, rt)? {
                    // A committed (or committing) duplicate: the constraint
                    // violation is real and permanent.
                    return Err(MmdbError::DuplicateKey {
                        table: table.id(),
                        index,
                    });
                }
                if let Some(holder) = self.pending_unique_conflict(version) {
                    // A racing inserter that has not committed yet: the
                    // outcome is unresolved (it may still abort), so report a
                    // retryable conflict rather than a permanent duplicate.
                    EngineStats::bump(&self.stats().write_conflicts);
                    return Err(self.fail(MmdbError::WriteWriteConflict {
                        txn: self.me(),
                        holder: Some(holder),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Does this same-key version — though not visible to us — doom our
    /// insert under uniqueness? Returns the creator when the version is being
    /// inserted by another live transaction: unless that transaction aborts,
    /// its version becomes a committed duplicate, so the first inserter wins
    /// and we must not proceed (a visibility-only check would let two
    /// concurrent inserters of one key both commit, which the differential
    /// tests catch as a non-serializable outcome).
    fn pending_unique_conflict(&self, version: &Version) -> Option<TxnId> {
        let mut rereads = 0;
        loop {
            match version.begin_word() {
                // Our own (the caller filters what it wants before this) or a
                // committed / aborted version: visibility already judged it.
                BeginWord::Timestamp(_) => return None,
                BeginWord::Txn(tb) if tb == self.me() => return None,
                BeginWord::Txn(tb) => match self.inner.store.txns().get(tb) {
                    Some(h) => {
                        return (!matches!(h.state(), TxnState::Aborted | TxnState::Terminated))
                            .then_some(tb)
                    }
                    None => {
                        // Terminated and removed: the Begin field is being
                        // finalized — re-read it.
                        rereads += 1;
                        if rereads > 64 {
                            return None;
                        }
                        std::hint::spin_loop();
                    }
                },
            }
        }
    }

    /// Re-verify uniqueness after our new version is linked. Two inserters
    /// of the same key can both pass `check_unique` before either version is
    /// reachable; once both are linked, at least one of them is guaranteed to
    /// observe the other here (bucket chains are published with
    /// acquire/release ordering) and gives way. When both observe each other,
    /// both abort with a *retryable* conflict — safe, and a retry of either
    /// resolves the race.
    fn verify_unique_after_link(
        &mut self,
        table: &Table,
        keys: &[Key],
        mine: VersionPtr,
    ) -> Result<()> {
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        let result = self.verify_unique_after_link_staged(table, keys, mine, &mut candidates);
        // Restore the buffer *empty*: the staged VersionPtrs were only valid
        // under the epoch guard above, and a retained pointer would be a
        // dangling foot-gun for any future reader (capacity is what we keep).
        candidates.clear();
        self.scratch.candidates = candidates;
        result
    }

    fn verify_unique_after_link_staged(
        &mut self,
        table: &Table,
        keys: &[Key],
        mine: VersionPtr,
        candidates: &mut Vec<VersionPtr>,
    ) -> Result<()> {
        let rt = self.inner.store.clock().now();
        let guard = epoch::pin();
        for (slot, key) in keys.iter().enumerate() {
            let index = IndexId(slot as u32);
            if !table.is_unique(index)? {
                continue;
            }
            candidates.clear();
            candidates.extend(table.candidate_ptrs(index, *key, &guard)?);
            for ptr in candidates.iter().copied() {
                if ptr == mine {
                    continue;
                }
                let version = ptr.get();
                // Versions we superseded or deleted ourselves are expected.
                if version.end_word().writer() == Some(self.me()) {
                    continue;
                }
                let vis = check_visibility(version, rt, self.me(), self.inner.store.txns(), &guard);
                if vis.visible && vis.dependency.is_none() {
                    // A duplicate committed between our check and our link.
                    EngineStats::bump(&self.stats().write_conflicts);
                    return Err(self.fail(MmdbError::DuplicateKey {
                        table: table.id(),
                        index,
                    }));
                }
                if let Some(holder) = self.pending_unique_conflict(version) {
                    // A racing inserter: both of us may land here and both
                    // give way (symmetric, safe — no tie-break can let one
                    // side proceed soundly, because the winner may already
                    // have passed its own re-verification without seeing us).
                    // The conflict is retryable: no version of the key has
                    // committed.
                    EngineStats::bump(&self.stats().write_conflicts);
                    return Err(self.fail(MmdbError::WriteWriteConflict {
                        txn: self.me(),
                        holder: Some(holder),
                    }));
                }
            }
        }
        Ok(())
    }
}

impl EngineTxn for MvTransaction {
    fn id(&self) -> TxnId {
        self.handle.id()
    }

    fn isolation(&self) -> IsolationLevel {
        self.handle.isolation()
    }

    fn set_durability(&mut self, durability: Durability) {
        MvTransaction::set_durability(self, durability);
    }

    fn insert(&mut self, table_id: TableId, row: Row) -> Result<()> {
        self.ensure_open()?;
        self.note_table(table_id);
        let guard = epoch::pin();
        let table = self.inner.store.table_in(table_id, &guard)?;
        // Extract the index keys once into the reusable scratch; taken out
        // and restored around the operation (same protocol as `candidates`).
        let mut keys = std::mem::take(&mut self.scratch.keys);
        let result = (|| {
            table.keys_into(&row, &mut keys)?;
            self.check_unique(table, keys.keys())?;
            let new_ptr = self.add_new_version(table, row, keys.keys(), None, None)?;
            // Close the check-then-link race between concurrent inserters of
            // the same key: now that our version is reachable, look again.
            self.verify_unique_after_link(table, keys.keys(), new_ptr)
        })();
        keys.clear();
        self.scratch.keys = keys;
        result
    }

    fn read(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Option<Row>> {
        let mut out = None;
        self.scan_visible_with(table, index, key, true, &mut |row| out = Some(row.clone()))?;
        Ok(out)
    }

    fn scan_key(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.scan_visible_with(table, index, key, false, &mut |row| out.push(row.clone()))?;
        Ok(out)
    }

    fn read_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<bool> {
        Ok(self.scan_visible_with(table, index, key, true, visit)? > 0)
    }

    fn scan_key_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.scan_visible_with(table, index, key, false, visit)
    }

    fn scan_range_with(
        &mut self,
        table: TableId,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.scan_range_visible_with(table, index, lo, hi, visit)
    }

    fn update(
        &mut self,
        table_id: TableId,
        index: IndexId,
        key: Key,
        new_row: Row,
    ) -> Result<bool> {
        self.ensure_open()?;
        self.note_table(table_id);
        let guard = epoch::pin();
        let table = self.inner.store.table_in(table_id, &guard)?;
        let Some(old_ptr) = self.find_update_target(table, index, key)? else {
            return Ok(false);
        };
        let old = old_ptr.get();
        // §2.6 / §3.1 "Check updatability" then "Update version".
        match check_updatable(old, self.me(), self.inner.store.txns(), &guard) {
            Updatability::Updatable { observed } => {
                self.install_write_lock(old_ptr, observed)?;
            }
            Updatability::Conflict { holder } => {
                EngineStats::bump(&self.stats().write_conflicts);
                return Err(self.fail(MmdbError::WriteWriteConflict {
                    txn: self.me(),
                    holder,
                }));
            }
        }
        let mut keys = std::mem::take(&mut self.scratch.keys);
        let result = (|| {
            table.keys_into(&new_row, &mut keys)?;
            self.add_new_version(table, new_row, keys.keys(), Some(old_ptr), None)
        })();
        keys.clear();
        self.scratch.keys = keys;
        result?;
        Ok(true)
    }

    fn delete(&mut self, table_id: TableId, index: IndexId, key: Key) -> Result<bool> {
        self.ensure_open()?;
        self.note_table(table_id);
        let guard = epoch::pin();
        let table = self.inner.store.table_in(table_id, &guard)?;
        let Some(old_ptr) = self.find_update_target(table, index, key)? else {
            return Ok(false);
        };
        let old = old_ptr.get();
        match check_updatable(old, self.me(), self.inner.store.txns(), &guard) {
            Updatability::Updatable { observed } => {
                self.install_write_lock(old_ptr, observed)?;
            }
            Updatability::Conflict { holder } => {
                EngineStats::bump(&self.stats().write_conflicts);
                return Err(self.fail(MmdbError::WriteWriteConflict {
                    txn: self.me(),
                    holder,
                }));
            }
        }
        let delete_key = table.key_of(IndexId(0), old.data())?;
        self.write_set.push(WriteEntry {
            table: table.id(),
            old: Some(old_ptr),
            new: None,
            delete_key: Some(delete_key),
        });
        Ok(true)
    }

    fn commit(mut self) -> Result<Timestamp> {
        self.do_commit()
    }

    fn abort(mut self) {
        self.do_user_abort();
    }
}

impl Drop for MvTransaction {
    fn drop(&mut self) {
        if !self.finished {
            self.do_user_abort();
        }
    }
}

impl std::fmt::Debug for MvTransaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvTransaction")
            .field("id", &self.handle.id())
            .field("mode", &self.handle.mode())
            .field("isolation", &self.handle.isolation())
            .field("begin_ts", &self.handle.begin_ts())
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish()
    }
}

/// Deterministic-interleaving hooks for the phantom-race regression tests.
///
/// The window the §4.3 bugfix closes is a handful of instructions wide; on
/// this project's single-core CI runner no stochastic schedule ever lands a
/// preemption inside it (measured: thousands of seeded runs without one
/// hit). The regression tests instead *construct* the interleaving: the
/// inserter thread installs a thread-local callback that fires between
/// `link_version` and `honor_scan_locks`, parks there on a rendezvous
/// channel, and lets the test run a complete serializable scan inside the
/// exact window the old code left unprotected. Thread-local on purpose —
/// tests in the same process that never install a hook are unaffected.
#[cfg(test)]
pub(crate) mod race_hooks {
    use std::cell::RefCell;

    thread_local! {
        static LINK_HONOR_GAP: RefCell<Option<Box<dyn FnMut()>>> = const { RefCell::new(None) };
    }

    /// Install `hook` on the current thread; it fires on every
    /// `add_new_version` this thread performs until cleared.
    pub(crate) fn set_link_honor_gap(hook: Box<dyn FnMut()>) {
        LINK_HONOR_GAP.with(|h| *h.borrow_mut() = Some(hook));
    }

    /// Remove the current thread's hook.
    pub(crate) fn clear_link_honor_gap() {
        LINK_HONOR_GAP.with(|h| *h.borrow_mut() = None);
    }

    pub(crate) fn fire_link_honor_gap() {
        LINK_HONOR_GAP.with(|h| {
            if let Some(hook) = h.borrow_mut().as_mut() {
                hook();
            }
        });
    }
}
