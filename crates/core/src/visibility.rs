//! Version visibility and updatability (§2.5, §2.6 and Tables 1 & 2).
//!
//! A read specifies a logical read time `RT`; only versions whose valid time
//! overlaps `RT` are visible. The complication is that a version's Begin or
//! End field may hold a transaction ID rather than a timestamp, in which case
//! the outcome depends on that transaction's state and end timestamp — and we
//! must never block while finding out. When the other transaction is in the
//! Preparing state the outcome is decided *speculatively* and the reader
//! acquires a commit dependency instead of waiting.

use crossbeam::epoch::Guard;
use mmdb_common::ids::{Timestamp, TxnId};
use mmdb_common::word::{BeginWord, EndWord};

use mmdb_storage::txn_table::{EndTs, TxnState, TxnTable};
use mmdb_storage::version::Version;

/// Outcome of a visibility test.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Visibility {
    /// Is the version visible at the requested read time?
    pub visible: bool,
    /// If `Some`, the outcome is speculative: it holds only if the named
    /// transaction commits, so the reader must take a commit dependency on it
    /// before relying on the outcome (§2.7).
    pub dependency: Option<TxnId>,
}

impl Visibility {
    const VISIBLE: Visibility = Visibility {
        visible: true,
        dependency: None,
    };
    const INVISIBLE: Visibility = Visibility {
        visible: false,
        dependency: None,
    };

    fn speculative(visible: bool, dep: TxnId) -> Visibility {
        Visibility {
            visible,
            dependency: Some(dep),
        }
    }
}

/// Outcome of an updatability test (§2.6).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Updatability {
    /// The version is the latest and can be updated; the CAS that installs
    /// the write lock should expect the End word observed here.
    Updatable {
        /// The End word observed during the test.
        observed: EndWord,
    },
    /// Another (not aborted) transaction already superseded or write-locked
    /// the version: a write-write conflict under first-writer-wins.
    Conflict {
        /// The conflicting transaction, when identifiable.
        holder: Option<TxnId>,
    },
}

/// How many times visibility re-reads a field whose owning transaction has
/// terminated before concluding something is wrong. Termination finalizes the
/// field first, so one or two retries always suffice in practice.
const MAX_REREADS: u32 = 64;

/// Check whether `version` is visible to transaction `me` at read time `rt`.
///
/// `me` identifies the reading transaction so its own writes resolve correctly.
pub fn check_visibility(
    version: &Version,
    rt: Timestamp,
    me: TxnId,
    txns: &TxnTable,
    guard: &Guard,
) -> Visibility {
    // ---- Step 1: the Begin field (Table 1). ----
    let mut begin_dep: Option<TxnId> = None;
    let mut rereads = 0;
    loop {
        match version.begin_word() {
            BeginWord::Timestamp(bts) => {
                if bts > rt {
                    // Not yet born at the read time (also covers aborted
                    // versions whose Begin was set to infinity).
                    return Visibility::INVISIBLE;
                }
                break;
            }
            BeginWord::Txn(tb) if tb == me => {
                // My own uncommitted version: visible only if it is my latest
                // (End still infinity / not superseded by me).
                return match version.end_word() {
                    EndWord::Timestamp(ts) if ts.is_infinity() => Visibility::VISIBLE,
                    EndWord::Lock(lock) if lock.writer.is_none() => Visibility::VISIBLE,
                    _ => Visibility::INVISIBLE,
                };
            }
            BeginWord::Txn(tb) => match txns.get_in(tb, guard) {
                None => {
                    // TB terminated and was removed: it has finalized the
                    // Begin field, so re-read it.
                    rereads += 1;
                    if rereads > MAX_REREADS {
                        return Visibility::INVISIBLE;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                Some(tb_handle) => {
                    let (state, end) = tb_handle.state_and_end();
                    match state {
                        // Plain Active (no end timestamp drawn, none pending):
                        // TB's writes are simply uncommitted.
                        TxnState::Active if end == EndTs::None => return Visibility::INVISIBLE,
                        // A transaction whose end timestamp is drawn (or being
                        // drawn right now) is logically preparing even if its
                        // state still reads Active: `do_commit` publishes the
                        // timestamp and flips the state in separate stores,
                        // and a preemption can stretch that window
                        // arbitrarily. Treating it as plain Active made
                        // committed-any-moment versions invisible while their
                        // superseded predecessors were already finalized —
                        // reads of permanently-present keys transiently
                        // returned nothing (caught by the concurrency stress
                        // tests).
                        TxnState::Active | TxnState::Preparing => {
                            let EndTs::At(ts) = end else {
                                // Pending (or Preparing published out of
                                // order): the timestamp appears within a few
                                // instructions — re-read.
                                std::hint::spin_loop();
                                continue;
                            };
                            if ts > rt {
                                return Visibility::INVISIBLE;
                            }
                            // Speculatively readable: proceed, remembering the
                            // dependency on TB committing.
                            begin_dep = Some(tb);
                            break;
                        }
                        TxnState::Committed => {
                            let EndTs::At(ts) = end else {
                                std::hint::spin_loop();
                                continue;
                            };
                            if ts > rt {
                                return Visibility::INVISIBLE;
                            }
                            break;
                        }
                        TxnState::Aborted => return Visibility::INVISIBLE,
                        TxnState::Terminated => {
                            rereads += 1;
                            if rereads > MAX_REREADS {
                                return Visibility::INVISIBLE;
                            }
                            continue;
                        }
                    }
                }
            },
        }
    }

    // ---- Step 2: the End field (Table 2). ----
    let mut rereads = 0;
    loop {
        match version.end_word() {
            EndWord::Timestamp(ets) => {
                return if rt < ets {
                    Visibility {
                        visible: true,
                        dependency: begin_dep,
                    }
                } else {
                    Visibility::INVISIBLE
                };
            }
            EndWord::Lock(lock) => {
                let Some(te) = lock.writer else {
                    // Read locks only — the version is still the latest.
                    return Visibility {
                        visible: true,
                        dependency: begin_dep,
                    };
                };
                if te == me {
                    // I superseded or deleted this version myself; my reads
                    // must observe my newer version instead.
                    return Visibility::INVISIBLE;
                }
                match txns.get_in(te, guard) {
                    None => {
                        rereads += 1;
                        if rereads > MAX_REREADS {
                            return Visibility {
                                visible: true,
                                dependency: begin_dep,
                            };
                        }
                        std::hint::spin_loop();
                        continue;
                    }
                    Some(te_handle) => {
                        let (state, end) = te_handle.state_and_end();
                        match state {
                            // TE's update is uncommitted and TE has not yet
                            // precommitted: V is still the latest committed
                            // version, hence visible.
                            TxnState::Active if end == EndTs::None => {
                                return Visibility {
                                    visible: true,
                                    dependency: begin_dep,
                                }
                            }
                            // An end timestamp (drawn or being drawn) means TE
                            // is logically preparing even while its state
                            // still reads Active (see the Begin-field twin of
                            // this arm above).
                            TxnState::Active | TxnState::Preparing => {
                                let EndTs::At(ts) = end else {
                                    std::hint::spin_loop();
                                    continue;
                                };
                                if ts > rt {
                                    // Whatever TE does, V remains visible at rt.
                                    return Visibility {
                                        visible: true,
                                        dependency: begin_dep,
                                    };
                                }
                                // TS < RT: if TE commits V is invisible; if TE
                                // aborts it stays visible. Speculatively ignore.
                                return Visibility::speculative(false, te);
                            }
                            TxnState::Committed => {
                                let EndTs::At(ts) = end else {
                                    std::hint::spin_loop();
                                    continue;
                                };
                                return if rt < ts {
                                    Visibility {
                                        visible: true,
                                        dependency: begin_dep,
                                    }
                                } else {
                                    Visibility::INVISIBLE
                                };
                            }
                            TxnState::Aborted => {
                                return Visibility {
                                    visible: true,
                                    dependency: begin_dep,
                                }
                            }
                            TxnState::Terminated => {
                                rereads += 1;
                                if rereads > MAX_REREADS {
                                    return Visibility {
                                        visible: true,
                                        dependency: begin_dep,
                                    };
                                }
                                continue;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Check whether `version` may be updated (or deleted) by transaction `me`
/// (§2.6): it must be the latest version — End equal to infinity, carrying
/// only read locks, or write-locked by a transaction that has aborted.
pub fn check_updatable(
    version: &Version,
    me: TxnId,
    txns: &TxnTable,
    guard: &Guard,
) -> Updatability {
    let mut rereads = 0;
    loop {
        let observed = version.end_word();
        match observed {
            EndWord::Timestamp(ts) if ts.is_infinity() => {
                return Updatability::Updatable { observed };
            }
            EndWord::Timestamp(_) => {
                // Already superseded by a committed transaction.
                return Updatability::Conflict { holder: None };
            }
            EndWord::Lock(lock) => match lock.writer {
                None => return Updatability::Updatable { observed },
                Some(holder) if holder == me => {
                    // Updating the same version twice within one transaction:
                    // the caller should be operating on its own newer version
                    // instead; report a conflict to keep first-writer-wins
                    // semantics simple.
                    return Updatability::Conflict {
                        holder: Some(holder),
                    };
                }
                Some(holder) => match txns.get_in(holder, guard) {
                    // The holder aborted: the version is still the latest
                    // committed one and may be re-locked.
                    Some(h) if h.state() == TxnState::Aborted => {
                        return Updatability::Updatable { observed }
                    }
                    Some(_) => {
                        return Updatability::Conflict {
                            holder: Some(holder),
                        }
                    }
                    None => {
                        // Holder terminated: it finalized the End field
                        // (commit) or reset it (abort) — re-read.
                        rereads += 1;
                        if rereads > MAX_REREADS {
                            return Updatability::Conflict {
                                holder: Some(holder),
                            };
                        }
                        std::hint::spin_loop();
                        continue;
                    }
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::ids::INFINITY_TS;
    use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
    use mmdb_common::row::rowbuf;
    use mmdb_common::word::LockWord;
    use mmdb_storage::txn_table::TxnHandle;

    /// Test shorthand: pin a guard per call so the table-driven cases below
    /// keep the paper's 4-argument shape.
    fn check_visibility(
        version: &Version,
        rt: Timestamp,
        me: TxnId,
        txns: &TxnTable,
    ) -> Visibility {
        let guard = crossbeam::epoch::pin();
        super::check_visibility(version, rt, me, txns, &guard)
    }

    fn check_updatable(version: &Version, me: TxnId, txns: &TxnTable) -> Updatability {
        let guard = crossbeam::epoch::pin();
        super::check_updatable(version, me, txns, &guard)
    }

    fn committed_version(begin: u64, end: Option<u64>) -> Version {
        let v = Version::new_committed(Timestamp(begin), rowbuf::keyed_row(1, 16, 0), &[1]);
        if let Some(e) = end {
            v.set_end(EndWord::Timestamp(Timestamp(e)));
        }
        v
    }

    fn register(txns: &TxnTable, id: u64, begin: u64, state: TxnState, end: Option<u64>) {
        let h = TxnHandle::new(
            TxnId(id),
            Timestamp(begin),
            ConcurrencyMode::Optimistic,
            IsolationLevel::Serializable,
        );
        if let Some(e) = end {
            h.set_end_ts(Timestamp(e));
        }
        h.set_state(state);
        txns.register(h);
    }

    const ME: TxnId = TxnId(500);

    #[test]
    fn plain_timestamps_define_a_window() {
        let txns = TxnTable::new();
        let v = committed_version(10, Some(20));
        assert!(!check_visibility(&v, Timestamp(5), ME, &txns).visible);
        assert!(check_visibility(&v, Timestamp(10), ME, &txns).visible);
        assert!(check_visibility(&v, Timestamp(15), ME, &txns).visible);
        assert!(!check_visibility(&v, Timestamp(20), ME, &txns).visible);
        assert!(!check_visibility(&v, Timestamp(25), ME, &txns).visible);
    }

    #[test]
    fn latest_version_visible_from_begin_onwards() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        assert!(check_visibility(&v, Timestamp(1_000_000), ME, &txns).visible);
        assert!(!check_visibility(&v, Timestamp(9), ME, &txns).visible);
    }

    #[test]
    fn own_uncommitted_version_visible_only_to_creator() {
        let txns = TxnTable::new();
        let v = Version::new(ME, rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(check_visibility(&v, Timestamp(100), ME, &txns).visible);
        // Another transaction (begin word holds an ID of an Active txn).
        register(&txns, ME.0, 50, TxnState::Active, None);
        assert!(!check_visibility(&v, Timestamp(100), TxnId(7), &txns).visible);
    }

    #[test]
    fn own_superseded_version_is_invisible_to_creator() {
        let txns = TxnTable::new();
        // I created it *and* then updated it (write lock by me): invisible.
        let v = Version::new(ME, rowbuf::keyed_row(1, 16, 0), &[1]);
        v.set_end(EndWord::write_locked(ME));
        assert!(!check_visibility(&v, Timestamp(100), ME, &txns).visible);
    }

    #[test]
    fn begin_id_of_preparing_txn_is_speculative() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Preparing, Some(60));
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        // Read time after TB's end timestamp: speculatively visible.
        let vis = check_visibility(&v, Timestamp(70), ME, &txns);
        assert!(vis.visible);
        assert_eq!(vis.dependency, Some(TxnId(9)));
        // Read time before TB's end timestamp: plain invisible.
        let vis = check_visibility(&v, Timestamp(55), ME, &txns);
        assert!(!vis.visible);
        assert_eq!(vis.dependency, None);
    }

    #[test]
    fn begin_id_of_committed_txn_uses_its_end_ts() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Committed, Some(60));
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(check_visibility(&v, Timestamp(61), ME, &txns).visible);
        assert!(!check_visibility(&v, Timestamp(59), ME, &txns).visible);
        // No dependency: the outcome is certain.
        assert_eq!(
            check_visibility(&v, Timestamp(61), ME, &txns).dependency,
            None
        );
    }

    #[test]
    fn begin_id_of_aborted_txn_is_garbage() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Aborted, None);
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(!check_visibility(&v, Timestamp(100), ME, &txns).visible);
    }

    #[test]
    fn end_id_of_active_txn_keeps_version_visible() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Active, None);
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        let vis = check_visibility(&v, Timestamp(100), ME, &txns);
        assert!(vis.visible);
        assert_eq!(vis.dependency, None);
    }

    #[test]
    fn end_id_of_preparing_txn_splits_on_read_time() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Preparing, Some(60));
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        // RT < TS: visible regardless of TE's outcome, no dependency.
        let vis = check_visibility(&v, Timestamp(55), ME, &txns);
        assert!(vis.visible);
        assert_eq!(vis.dependency, None);
        // RT > TS: speculatively ignore with a dependency on TE.
        let vis = check_visibility(&v, Timestamp(70), ME, &txns);
        assert!(!vis.visible);
        assert_eq!(vis.dependency, Some(TxnId(9)));
    }

    #[test]
    fn end_id_of_aborted_txn_means_visible() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Aborted, Some(60));
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        assert!(check_visibility(&v, Timestamp(100), ME, &txns).visible);
    }

    #[test]
    fn read_locked_version_is_visible() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        v.set_end(EndWord::Lock(LockWord::EMPTY.with_extra_reader().unwrap()));
        assert!(check_visibility(&v, Timestamp(50), ME, &txns).visible);
    }

    #[test]
    fn updatability_rules() {
        let txns = TxnTable::new();
        // Latest (infinity): updatable.
        let v = committed_version(10, None);
        assert!(matches!(
            check_updatable(&v, ME, &txns),
            Updatability::Updatable { .. }
        ));
        // Superseded by a committed version: conflict.
        let v = committed_version(10, Some(20));
        assert!(matches!(
            check_updatable(&v, ME, &txns),
            Updatability::Conflict { .. }
        ));
        // Write-locked by an active transaction: conflict identifying the holder.
        register(&txns, 9, 50, TxnState::Active, None);
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        assert_eq!(
            check_updatable(&v, ME, &txns),
            Updatability::Conflict {
                holder: Some(TxnId(9))
            }
        );
        // Write-locked by an aborted transaction: updatable again.
        register(&txns, 11, 50, TxnState::Aborted, None);
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(11)));
        assert!(matches!(
            check_updatable(&v, ME, &txns),
            Updatability::Updatable { .. }
        ));
        // Read-locked only: updatable (eager update).
        let v = committed_version(10, None);
        v.set_end(EndWord::Lock(LockWord::EMPTY.with_extra_reader().unwrap()));
        assert!(matches!(
            check_updatable(&v, ME, &txns),
            Updatability::Updatable { .. }
        ));
    }

    #[test]
    fn infinity_begin_means_never_visible() {
        let txns = TxnTable::new();
        let v = committed_version(INFINITY_TS.raw(), None);
        assert!(!check_visibility(&v, Timestamp(u64::MAX >> 2), ME, &txns).visible);
    }

    // -----------------------------------------------------------------
    // Table 1, row by row: the Begin field holds value B; the reading
    // transaction T checks visibility at read time RT.
    // -----------------------------------------------------------------

    /// Table 1 row 1 — B is a timestamp: V is visible iff B ≤ RT (End field
    /// permitting). Boundary: equality counts as visible.
    #[test]
    fn table1_begin_timestamp_boundaries() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        assert!(!check_visibility(&v, Timestamp(9), ME, &txns).visible);
        assert!(
            check_visibility(&v, Timestamp(10), ME, &txns).visible,
            "B == RT is visible"
        );
        assert!(check_visibility(&v, Timestamp(11), ME, &txns).visible);
    }

    /// Table 1 row 2 — B holds the ID of transaction TB and TB is Active and
    /// TB == T: visible only if the End field is infinity (T's own latest
    /// write); invisible once T superseded it itself.
    #[test]
    fn table1_begin_own_active_txn() {
        let txns = TxnTable::new();
        let own = Version::new(ME, rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(check_visibility(&own, Timestamp(1), ME, &txns).visible);
        let superseded = Version::new(ME, rowbuf::keyed_row(1, 16, 0), &[1]);
        superseded.set_end(EndWord::write_locked(ME));
        assert!(!check_visibility(&superseded, Timestamp(1), ME, &txns).visible);
    }

    /// Table 1 row 3 — TB is Active and TB ≠ T: never visible, regardless of
    /// read time.
    #[test]
    fn table1_begin_other_active_txn() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Active, None);
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(!check_visibility(&v, Timestamp(u64::MAX >> 2), ME, &txns).visible);
    }

    /// Table 1 row 4 — TB is Preparing with end timestamp TS: if TS ≤ RT the
    /// version is *speculatively* visible (commit dependency on TB); if
    /// TS > RT it is plainly invisible. Covered value-by-value in
    /// `begin_id_of_preparing_txn_is_speculative`; here the TS == RT boundary.
    #[test]
    fn table1_begin_preparing_boundary() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Preparing, Some(60));
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        let vis = check_visibility(&v, Timestamp(60), ME, &txns);
        assert!(vis.visible, "TS == RT: speculatively visible");
        assert_eq!(vis.dependency, Some(TxnId(9)));
    }

    /// Table 1 row 5 — TB is Committed with end timestamp TS: treated as if B
    /// were the timestamp TS (visible iff TS ≤ RT), with no dependency.
    #[test]
    fn table1_begin_committed_boundary() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Committed, Some(60));
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        let at_ts = check_visibility(&v, Timestamp(60), ME, &txns);
        assert!(at_ts.visible, "TS == RT is visible");
        assert_eq!(at_ts.dependency, None);
        assert!(!check_visibility(&v, Timestamp(59), ME, &txns).visible);
    }

    /// Table 1 row 6 — TB is Aborted: the version is garbage, never visible.
    /// (Covered by `begin_id_of_aborted_txn_is_garbage`; restated here for
    /// the table audit.)
    #[test]
    fn table1_begin_aborted() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Aborted, Some(60));
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(!check_visibility(&v, Timestamp(1_000), ME, &txns).visible);
    }

    /// Table 1 row 7 — TB is Terminated (or gone from the transaction
    /// table): TB has finalized the Begin field, so the checker re-reads it.
    /// When the field genuinely never changes (stale ID), the checker gives
    /// up after bounded re-reads and reports invisible rather than spinning.
    #[test]
    fn table1_begin_terminated_rereads_then_fails_closed() {
        let txns = TxnTable::new();
        let v = Version::new(TxnId(424_242), rowbuf::keyed_row(1, 16, 0), &[1]);
        assert!(!check_visibility(&v, Timestamp(1_000), ME, &txns).visible);
    }

    // -----------------------------------------------------------------
    // Table 2, row by row: the End field holds value E.
    // -----------------------------------------------------------------

    /// Table 2 row 1 — E is a timestamp: V is visible iff RT < E. Boundary:
    /// RT == E is invisible (the superseding version takes over at E), and
    /// E = infinity means "still latest".
    #[test]
    fn table2_end_timestamp_boundaries() {
        let txns = TxnTable::new();
        let v = committed_version(10, Some(20));
        assert!(check_visibility(&v, Timestamp(19), ME, &txns).visible);
        assert!(
            !check_visibility(&v, Timestamp(20), ME, &txns).visible,
            "RT == E is invisible"
        );
        let latest = committed_version(10, None);
        assert!(check_visibility(&latest, Timestamp(u64::MAX >> 2), ME, &txns).visible);
    }

    /// Table 2 row 2 — E holds the ID of transaction TE and TE == T: T
    /// superseded or deleted V itself, so V is invisible to T (T must see its
    /// own newer version instead).
    #[test]
    fn table2_end_own_txn() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(ME));
        assert!(!check_visibility(&v, Timestamp(100), ME, &txns).visible);
    }

    /// Table 2 row 3 — TE is Active and TE ≠ T: TE's update is uncommitted,
    /// so V remains the latest committed version and is visible. (Also
    /// covered by `end_id_of_active_txn_keeps_version_visible`.)
    #[test]
    fn table2_end_other_active_txn() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Active, None);
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        let vis = check_visibility(&v, Timestamp(1_000), ME, &txns);
        assert!(vis.visible);
        assert_eq!(vis.dependency, None);
    }

    /// Table 2 row 4 — TE is Preparing with end timestamp TS: RT < TS means V
    /// is visible whatever TE does; RT ≥ TS means speculatively ignore V with
    /// a commit dependency on TE. Boundary: TS == RT takes the speculative
    /// branch.
    #[test]
    fn table2_end_preparing_boundary() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Preparing, Some(60));
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        let vis = check_visibility(&v, Timestamp(60), ME, &txns);
        assert!(!vis.visible, "TS == RT: speculatively ignored");
        assert_eq!(vis.dependency, Some(TxnId(9)));
    }

    /// Table 2 row 5 — TE is Committed with end timestamp TS: treated as if E
    /// were TS (visible iff RT < TS), no dependency.
    #[test]
    fn table2_end_committed_boundary() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Committed, Some(60));
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        assert!(check_visibility(&v, Timestamp(59), ME, &txns).visible);
        let at_ts = check_visibility(&v, Timestamp(60), ME, &txns);
        assert!(!at_ts.visible, "RT == TS is invisible");
        assert_eq!(at_ts.dependency, None);
    }

    /// Table 2 row 6 — TE is Aborted: the lock evaporates; V is still the
    /// latest committed version and visible. (Also covered by
    /// `end_id_of_aborted_txn_means_visible`.)
    #[test]
    fn table2_end_aborted() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Aborted, None);
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        assert!(check_visibility(&v, Timestamp(1_000), ME, &txns).visible);
    }

    /// Table 2 row 7 — TE is Terminated / gone: TE finalized the End field,
    /// so the checker re-reads; with a genuinely stale writer ID it fails
    /// *open* (the version stays visible — a committed writer would have
    /// finalized the field to a timestamp, an aborted one would have cleared
    /// it).
    #[test]
    fn table2_end_terminated_rereads_then_stays_visible() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(424_242)));
        assert!(check_visibility(&v, Timestamp(1_000), ME, &txns).visible);
    }

    /// Table 2 addendum — a read-locked version without a writer is simply
    /// the latest version; the lock word carries no visibility information.
    #[test]
    fn table2_read_locks_do_not_affect_visibility() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        v.set_end(EndWord::Lock(
            LockWord::EMPTY
                .with_extra_reader()
                .unwrap()
                .with_extra_reader()
                .unwrap(),
        ));
        assert!(check_visibility(&v, Timestamp(50), ME, &txns).visible);
        assert!(
            !check_visibility(&v, Timestamp(9), ME, &txns).visible,
            "Begin still gates"
        );
    }

    // -----------------------------------------------------------------
    // §2.6 updatability — the remaining holder states beyond
    // `updatability_rules`.
    // -----------------------------------------------------------------

    /// A Preparing holder still counts as a conflict (its commit is the
    /// likely outcome; first-writer-wins).
    #[test]
    fn updatability_preparing_holder_conflicts() {
        let txns = TxnTable::new();
        register(&txns, 9, 50, TxnState::Preparing, Some(60));
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(TxnId(9)));
        assert_eq!(
            check_updatable(&v, ME, &txns),
            Updatability::Conflict {
                holder: Some(TxnId(9))
            }
        );
    }

    /// Updating a version we already write-locked ourselves is reported as a
    /// conflict: the caller must operate on its own newer version instead.
    #[test]
    fn updatability_own_write_lock_conflicts() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        v.set_end(EndWord::write_locked(ME));
        assert_eq!(
            check_updatable(&v, ME, &txns),
            Updatability::Conflict { holder: Some(ME) }
        );
    }

    /// A transaction whose end timestamp is published while its state still
    /// reads Active (the `do_commit` window between `set_end_ts` and
    /// `set_state(Preparing)`) must be treated as Preparing: its versions are
    /// speculatively visible/ignorable by timestamp, never plain-Active.
    #[test]
    fn active_with_published_end_ts_is_treated_as_preparing() {
        let txns = TxnTable::new();
        // Register an Active transaction that has drawn end timestamp 60.
        let h = TxnHandle::new(
            TxnId(9),
            Timestamp(50),
            ConcurrencyMode::Optimistic,
            IsolationLevel::Serializable,
        );
        h.set_end_ts(Timestamp(60));
        txns.register(h); // state stays Active
                          // Table 1: its new version is speculatively visible past ts 60 ...
        let v = Version::new(TxnId(9), rowbuf::keyed_row(1, 16, 0), &[1]);
        let vis = check_visibility(&v, Timestamp(70), ME, &txns);
        assert!(vis.visible);
        assert_eq!(vis.dependency, Some(TxnId(9)));
        // ... and plainly invisible before it.
        assert!(!check_visibility(&v, Timestamp(55), ME, &txns).visible);
        // Table 2: a version it is superseding splits on the read time.
        let old = committed_version(10, None);
        old.set_end(EndWord::write_locked(TxnId(9)));
        assert!(check_visibility(&old, Timestamp(55), ME, &txns).visible);
        let vis = check_visibility(&old, Timestamp(70), ME, &txns);
        assert!(
            !vis.visible,
            "speculatively ignored past the drawn timestamp"
        );
        assert_eq!(vis.dependency, Some(TxnId(9)));
    }

    /// The observed End word returned on the updatable path is exactly what
    /// the caller must CAS against (read locks included).
    #[test]
    fn updatability_reports_observed_word_for_cas() {
        let txns = TxnTable::new();
        let v = committed_version(10, None);
        let word = EndWord::Lock(LockWord::EMPTY.with_extra_reader().unwrap());
        v.set_end(word);
        match check_updatable(&v, ME, &txns) {
            Updatability::Updatable { observed } => assert_eq!(observed, word),
            other => panic!("expected updatable, got {other:?}"),
        }
    }
}
