//! Zero-allocation regression tests for the hot read **and write** paths.
//!
//! The paper's central performance claim is that normal processing keeps the
//! hot paths nearly free of overhead: an MV read is a hash lookup plus
//! timestamp comparisons (§3), and MV writes stay cheap under contention
//! because the hot path touches no shared mutable state beyond the version
//! chain itself (§2.6, Figs. 7–9). These tests pin the engineering
//! consequence in this codebase:
//!
//! * steady-state **point reads** and **short secondary scans** on a warmed
//!   MV engine, through the visitor API (`read_with` / `scan_key_with`),
//!   perform **zero heap allocations** — candidates are staged in the
//!   transaction's `TxnScratch` (capacity reused across operations), the
//!   payload is visited by reference, and the `TxnTable` visibility lookup
//!   is a lock-free probe of an epoch-protected slot map (`get_in` — no
//!   `RwLock`, no `Arc` clone; there is no lock of any kind left in
//!   `txn_table.rs` lookups to acquire);
//! * warmed **write transactions** — a whole begin → update → commit, and
//!   insert-then-delete pairs — perform **zero heap allocations** on both MV
//!   schemes at read committed and snapshot isolation: the transaction
//!   handle and its buffer set come from the engine pools, key extraction
//!   fills a reusable `KeyScratch`, the new version is recycled from the
//!   table's GC-fed pool, the redo record is framed into a reusable encode
//!   buffer, and the transaction-table slot holds a raw strong reference
//!   (registration is a refcount bump);
//! * the **1V comparison**: the single-version engine stages lookups,
//!   undo images and log ops per operation — neither its read nor its write
//!   path is allocation-free, which is part of why the paper's multiversion
//!   schemes win.
//!
//! The counting allocator is thread-local, so background threads (GC,
//! deadlock detector) cannot pollute the measurement; the detector is
//! disabled anyway for determinism. The tests additionally serialize on one
//! mutex: the write-path measurements depend on epoch-deferred recycling
//! running promptly at zero-pin crossings, which a concurrently pinned
//! sibling test would postpone.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::ids::IndexId;
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::{rowbuf, IndexSpec};
use mmdb_core::{MvConfig, MvEngine};

/// Serializes the tests in this binary (see the module docs).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Counts allocations (alloc + realloc) made by the *current thread*.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to the system allocator; the counter is
// a plain thread-local side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Run `f` and return how many allocations the current thread made in it.
fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = allocations_on_this_thread();
    f();
    allocations_on_this_thread() - before
}

const ROWS: u64 = 1_024;

/// The shared read-path fixture (`rowbuf::grouped_row` / `grouped_spec`,
/// also used by `mmdb-bench`'s `repro perf` experiment and `readpath`
/// bench): this test asserts zero allocations for exactly the shape those
/// measurements run.
use mmdb_common::row::rowbuf::{grouped_row, grouped_spec, GROUP_SIZE};

fn warmed_mv_engine() -> (MvEngine, mmdb_common::ids::TableId) {
    let mut config = MvConfig::optimistic();
    // Keep the measurement deterministic: no background detector thread, no
    // cooperative GC kicking in mid-read (nothing would be enqueued anyway —
    // the workload below is read-only on a populated table).
    config.deadlock_detector = false;
    config.gc_every_n_commits = 0;
    let engine = MvEngine::with_logger(
        config,
        std::sync::Arc::new(mmdb_storage::log::NullLogger::new()),
    );
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();
    (engine, table)
}

/// The acceptance criterion of the allocation-free read path: after one
/// warm-up operation (which sizes the scratch buffer), point reads and short
/// scans perform zero heap allocations at read committed and snapshot
/// isolation.
#[test]
fn warmed_mv_reads_and_scans_allocate_nothing() {
    let _serial = serial();
    let (engine, table) = warmed_mv_engine();
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let mut txn = engine.begin(isolation);
        // Warm-up: the first operations may grow the transaction's scratch
        // buffer (and the thread's epoch bookkeeping) once.
        let mut checksum = 0u64;
        txn.read_with(table, IndexId(0), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.scan_key_with(table, IndexId(1), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();

        let allocs = count_allocations(|| {
            for i in 0..1_000u64 {
                let key = (i * 31) % ROWS;
                let found = txn
                    .read_with(table, IndexId(0), key, &mut |row| {
                        checksum += rowbuf::key_of(row);
                    })
                    .unwrap();
                assert!(found, "populated key {key} must be visible");
                let group = (i * 7) % (ROWS / GROUP_SIZE);
                let visited = txn
                    .scan_key_with(table, IndexId(1), group, &mut |row| {
                        checksum += rowbuf::key_of(row);
                    })
                    .unwrap();
                assert_eq!(visited, GROUP_SIZE as usize, "short scan of group {group}");
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state reads/scans at {isolation:?} must not allocate \
             (checksum {checksum})"
        );
        txn.commit().unwrap();
    }
}

/// The materializing wrappers stay allocation-cheap but not allocation-free:
/// `read` clones the payload handle into an `Option<Row>` (refcount bump, no
/// heap allocation with `Bytes`), while `scan_key` builds a `Vec<Row>`. This
/// documents exactly where the remaining allocations on the legacy API come
/// from.
#[test]
fn materializing_scan_allocates_where_the_visitor_does_not() {
    let _serial = serial();
    let (engine, table) = warmed_mv_engine();
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let _ = txn.scan_key(table, IndexId(1), 1).unwrap();
    let mut sink = 0u64;
    let _ = txn
        .scan_key_with(table, IndexId(1), 1, &mut |row| sink += rowbuf::key_of(row))
        .unwrap();

    let visitor_allocs = count_allocations(|| {
        for group in 0..64u64 {
            txn.scan_key_with(table, IndexId(1), group, &mut |row| {
                sink += rowbuf::key_of(row);
            })
            .unwrap();
        }
    });
    let materializing_allocs = count_allocations(|| {
        for group in 0..64u64 {
            sink += txn.scan_key(table, IndexId(1), group).unwrap().len() as u64;
        }
    });
    assert_eq!(visitor_allocs, 0, "visitor scans are allocation-free");
    assert!(
        materializing_allocs >= 64,
        "each materializing scan builds at least its Vec<Row> \
         ({materializing_allocs} allocations over 64 scans, sink {sink})"
    );
    txn.abort();
}

/// The documented 1V comparison: the single-version engine's secondary-index
/// read path stages primary keys and therefore allocates even through the
/// visitor API. (Its primary-index point read visits the row in place under
/// the bucket lock — cheap, but the lock acquisition itself is exactly what
/// the multiversion schemes avoid.)
#[test]
fn onev_secondary_scans_allocate_by_design() {
    let _serial = serial();
    use mmdb_onev::{SvConfig, SvEngine};
    let engine = SvEngine::new(SvConfig::default());
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();

    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let mut sink = 0u64;
    txn.scan_key_with(table, IndexId(1), 1, &mut |row| sink += rowbuf::key_of(row))
        .unwrap();
    let allocs = count_allocations(|| {
        for group in 0..64u64 {
            txn.scan_key_with(table, IndexId(1), group, &mut |row| {
                sink += rowbuf::key_of(row);
            })
            .unwrap();
        }
    });
    assert!(
        allocs > 0,
        "1V secondary lookups stage primary keys; an allocation-free 1V scan \
         would mean this documentation is stale (sink {sink})"
    );
    txn.abort();
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

use mmdb_common::isolation::ConcurrencyMode;
use mmdb_common::row::Row;

/// Warmed-write fixture: detector off, cooperative GC off (collection is
/// driven explicitly between warmup and measurement so the measured region
/// itself never runs a GC step).
fn write_engine(mode: ConcurrencyMode) -> (MvEngine, mmdb_common::ids::TableId) {
    let mut config = match mode {
        ConcurrencyMode::Optimistic => MvConfig::optimistic(),
        ConcurrencyMode::Pessimistic => MvConfig::pessimistic(),
    };
    config.deadlock_detector = false;
    config.gc_every_n_commits = 0;
    let engine = MvEngine::with_logger(
        config,
        std::sync::Arc::new(mmdb_storage::log::NullLogger::new()),
    );
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();
    (engine, table)
}

/// Drain the GC queue and flush the epoch-deferred recycling so the table's
/// version pool holds at least `want` spare allocations. Single-threaded
/// (and serialized against the sibling tests), so a pin/unpin cycle is a
/// zero-pin crossing that runs every deferred recycle.
fn drain_into_pool(engine: &MvEngine, table: mmdb_common::ids::TableId, want: usize) {
    while engine.collect_garbage() > 0 {}
    let handle = engine.store().table(table).unwrap();
    for _ in 0..1_000 {
        drop(crossbeam::epoch::pin());
        if handle.pooled_versions() >= want {
            return;
        }
    }
    panic!(
        "version pool holds {} spares, wanted {want} — recycling broke",
        handle.pooled_versions()
    );
}

const WARM_TXNS: u64 = 1_000;
const MEASURED_TXNS: u64 = 400;

/// The write-path acceptance criterion: a warmed single-row update
/// transaction — the whole begin → update → commit — performs **zero** heap
/// allocations at read committed and snapshot isolation on both MV schemes.
/// Also asserts the single-transaction shape explicitly (one measured
/// begin→update→commit in isolation).
#[test]
fn warmed_mv_update_txns_allocate_nothing() {
    let _serial = serial();
    for mode in [ConcurrencyMode::Optimistic, ConcurrencyMode::Pessimistic] {
        let (engine, table) = write_engine(mode);
        for isolation in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::SnapshotIsolation,
        ] {
            // Warm every pool: transaction handles, buffer sets, the
            // transaction-table slots, the GC queue's ring capacity, and —
            // via the drain below — the table's version pool.
            for i in 0..WARM_TXNS {
                let key = (i * 31) % ROWS;
                let mut txn = engine.begin(isolation);
                assert!(txn
                    .update(table, IndexId(0), key, grouped_row(key))
                    .unwrap());
                txn.commit().unwrap();
            }
            drain_into_pool(&engine, table, MEASURED_TXNS as usize + 1);

            // Rows are pre-built: the payload is the caller's input, not part
            // of the write path (cloning `Bytes` is a refcount bump).
            let keys: Vec<u64> = (0..MEASURED_TXNS).map(|i| (i * 37) % ROWS).collect();
            let rows: Vec<Row> = keys.iter().map(|&k| grouped_row(k)).collect();

            let allocs = count_allocations(|| {
                for (i, &key) in keys.iter().enumerate() {
                    let mut txn = engine.begin(isolation);
                    assert!(txn.update(table, IndexId(0), key, rows[i].clone()).unwrap());
                    txn.commit().unwrap();
                }
            });
            assert_eq!(
                allocs, 0,
                "warmed update transactions at {isolation:?} on {mode:?} must not allocate"
            );

            // The acceptance shape, stated singular: one warmed
            // begin→update→commit transaction, zero allocations.
            let row = grouped_row(7);
            let single = count_allocations(|| {
                let mut txn = engine.begin(isolation);
                assert!(txn.update(table, IndexId(0), 7, row.clone()).unwrap());
                txn.commit().unwrap();
            });
            assert_eq!(
                single, 0,
                "a single warmed update txn at {isolation:?} on {mode:?} must not allocate"
            );
        }
    }
}

/// Insert-then-delete churn: a warmed insert transaction followed by a
/// delete transaction of the same (fresh) key allocates nothing on either
/// MV scheme — the insert's version comes from the pool the earlier deletes
/// refilled through GC.
#[test]
fn warmed_mv_insert_delete_txns_allocate_nothing() {
    let _serial = serial();
    for mode in [ConcurrencyMode::Optimistic, ConcurrencyMode::Pessimistic] {
        let (engine, table) = write_engine(mode);
        let mut next_key = ROWS;
        for isolation in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::SnapshotIsolation,
        ] {
            for _ in 0..WARM_TXNS {
                next_key += 1;
                let mut txn = engine.begin(isolation);
                txn.insert(table, grouped_row(next_key)).unwrap();
                txn.commit().unwrap();
                let mut txn = engine.begin(isolation);
                assert!(txn.delete(table, IndexId(0), next_key).unwrap());
                txn.commit().unwrap();
            }
            drain_into_pool(&engine, table, MEASURED_TXNS as usize + 1);

            let base = next_key;
            let rows: Vec<Row> = (1..=MEASURED_TXNS).map(|i| grouped_row(base + i)).collect();
            next_key += MEASURED_TXNS;

            let allocs = count_allocations(|| {
                for (i, row) in rows.iter().enumerate() {
                    let key = base + 1 + i as u64;
                    let mut txn = engine.begin(isolation);
                    txn.insert(table, row.clone()).unwrap();
                    txn.commit().unwrap();
                    let mut txn = engine.begin(isolation);
                    assert!(txn.delete(table, IndexId(0), key).unwrap());
                    txn.commit().unwrap();
                }
            });
            assert_eq!(
                allocs, 0,
                "warmed insert+delete transactions at {isolation:?} on {mode:?} must not allocate"
            );
        }
    }
}

/// The ordered index must not tax the equality hot paths: with an ordered
/// index wired into the table, warmed point reads, short secondary scans
/// **and whole update transactions** stay allocation-free on both MV
/// schemes. Every write now additionally relinks its version into the skip
/// list, but updates of existing keys reuse the key's skip-list node — the
/// intrusive version chain absorbs the new version without touching the
/// allocator.
///
/// The documented contrast (measured, not assumed):
///
/// * warmed **range scans** through `scan_range_with` are allocation-free
///   below serializable too — candidates stream straight off the skip list
///   into the transaction's reused scratch buffer;
/// * an insert of a **novel key** allocates by design: the skip-list key
///   node (and its tower) has no pool to come from. Key nodes are retired
///   only by GC after the last version dies, so steady-state churn over a
///   stable key population reuses them; only key-space growth pays.
#[test]
fn ordered_index_keeps_equality_paths_allocation_free() {
    let _serial = serial();
    let ordered_spec = || grouped_spec(ROWS).with_index(IndexSpec::ordered_u64("pk_ordered", 0));
    const ORDERED: IndexId = IndexId(2);

    for mode in [ConcurrencyMode::Optimistic, ConcurrencyMode::Pessimistic] {
        let mut config = match mode {
            ConcurrencyMode::Optimistic => MvConfig::optimistic(),
            ConcurrencyMode::Pessimistic => MvConfig::pessimistic(),
        };
        config.deadlock_detector = false;
        config.gc_every_n_commits = 0;
        let engine = MvEngine::with_logger(
            config,
            std::sync::Arc::new(mmdb_storage::log::NullLogger::new()),
        );
        let table = engine.create_table(ordered_spec()).unwrap();
        engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();

        let isolation = IsolationLevel::SnapshotIsolation;

        // Equality reads and short hash scans: identical criterion to the
        // hash-only fixture, now with the ordered index present.
        let mut txn = engine.begin(isolation);
        let mut checksum = 0u64;
        txn.read_with(table, IndexId(0), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.scan_key_with(table, IndexId(1), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.scan_range_with(table, ORDERED, 1, 1 + GROUP_SIZE, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        let read_allocs = count_allocations(|| {
            for i in 0..1_000u64 {
                let key = (i * 31) % ROWS;
                txn.read_with(table, IndexId(0), key, &mut |row| {
                    checksum += rowbuf::key_of(row);
                })
                .unwrap();
                let group = (i * 7) % (ROWS / GROUP_SIZE);
                txn.scan_key_with(table, IndexId(1), group, &mut |row| {
                    checksum += rowbuf::key_of(row);
                })
                .unwrap();
            }
        });
        assert_eq!(
            read_allocs, 0,
            "equality reads/scans on an ordered-indexed table must not allocate \
             on {mode:?} (checksum {checksum})"
        );

        // Warmed range scans below serializable: also allocation-free.
        let mut visited = 0u64;
        let range_allocs = count_allocations(|| {
            for i in 0..1_000u64 {
                let lo = (i * 13) % ROWS;
                let hi = lo + GROUP_SIZE;
                visited += txn
                    .scan_range_with(table, ORDERED, lo, hi, &mut |row| {
                        checksum += rowbuf::key_of(row);
                    })
                    .unwrap() as u64;
            }
        });
        assert!(visited > 0, "range scans must visit rows");
        assert_eq!(
            range_allocs, 0,
            "warmed range scans on {mode:?} must stream off the skip list \
             without allocating (checksum {checksum})"
        );
        txn.commit().unwrap();

        // Whole update transactions: warm, drain into the pool, measure.
        for i in 0..WARM_TXNS {
            let key = (i * 31) % ROWS;
            let mut txn = engine.begin(isolation);
            assert!(txn
                .update(table, IndexId(0), key, grouped_row(key))
                .unwrap());
            txn.commit().unwrap();
        }
        drain_into_pool(&engine, table, MEASURED_TXNS as usize + 1);
        let keys: Vec<u64> = (0..MEASURED_TXNS).map(|i| (i * 37) % ROWS).collect();
        let rows: Vec<Row> = keys.iter().map(|&k| grouped_row(k)).collect();
        let write_allocs = count_allocations(|| {
            for (i, &key) in keys.iter().enumerate() {
                let mut txn = engine.begin(isolation);
                assert!(txn.update(table, IndexId(0), key, rows[i].clone()).unwrap());
                txn.commit().unwrap();
            }
        });
        assert_eq!(
            write_allocs, 0,
            "warmed update transactions on an ordered-indexed table must not \
             allocate on {mode:?}"
        );

        // The contrast: inserting a novel key grows the skip list and must
        // allocate its key node — there is no pool for new key space.
        let novel = grouped_row(ROWS + 1);
        let novel_allocs = count_allocations(|| {
            let mut txn = engine.begin(isolation);
            txn.insert(table, novel.clone()).unwrap();
            txn.commit().unwrap();
        });
        assert!(
            novel_allocs > 0,
            "a novel-key insert into an ordered index allocates its skip-list \
             node; zero would mean this documentation is stale"
        );
    }
}

/// The adaptive-policy acceptance criterion: consulting the contention
/// monitor at `begin()` and recording outcomes at commit are relaxed atomic
/// reads and writes on fixed slots — switching the engine to
/// `CcPolicy::Adaptive` must not put a single allocation back on the hot
/// paths. Warmed point reads, short scans and whole update transactions all
/// stay at zero.
#[test]
fn adaptive_policy_keeps_hot_paths_allocation_free() {
    let _serial = serial();
    use mmdb_core::CcPolicy;
    let config = MvConfig {
        cc: CcPolicy::ADAPTIVE,
        deadlock_detector: false,
        gc_every_n_commits: 0,
        ..MvConfig::default()
    };
    let engine = MvEngine::with_logger(
        config,
        std::sync::Arc::new(mmdb_storage::log::NullLogger::new()),
    );
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();
    let isolation = IsolationLevel::SnapshotIsolation;

    // Read path: warm one transaction, then measure fresh per-op work —
    // including the policy consultation in `begin()` — across many txns.
    let mut checksum = 0u64;
    {
        let mut txn = engine.begin(isolation);
        txn.read_with(table, IndexId(0), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.scan_key_with(table, IndexId(1), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    // A couple more whole transactions so every engine pool (handles,
    // buffer sets, txn-table slots) is warm before counting.
    for _ in 0..8 {
        let mut txn = engine.begin(isolation);
        txn.read_with(table, IndexId(0), 2, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    let read_allocs = count_allocations(|| {
        for i in 0..200u64 {
            let key = (i * 31) % ROWS;
            let mut txn = engine.begin(isolation);
            txn.read_with(table, IndexId(0), key, &mut |row| {
                checksum += rowbuf::key_of(row);
            })
            .unwrap();
            txn.commit().unwrap();
        }
    });
    assert_eq!(
        read_allocs, 0,
        "warmed read transactions under CcPolicy::Adaptive must not allocate \
         (checksum {checksum})"
    );

    // Write path: same criterion as the static-mode fixture — the adaptive
    // begin() consultation, the touched-table note and the commit-side
    // telemetry record must all ride on recycled capacity.
    for i in 0..WARM_TXNS {
        let key = (i * 31) % ROWS;
        let mut txn = engine.begin(isolation);
        assert!(txn
            .update(table, IndexId(0), key, grouped_row(key))
            .unwrap());
        txn.commit().unwrap();
    }
    drain_into_pool(&engine, table, MEASURED_TXNS as usize + 1);
    let keys: Vec<u64> = (0..MEASURED_TXNS).map(|i| (i * 37) % ROWS).collect();
    let rows: Vec<Row> = keys.iter().map(|&k| grouped_row(k)).collect();
    let write_allocs = count_allocations(|| {
        for (i, &key) in keys.iter().enumerate() {
            let mut txn = engine.begin(isolation);
            assert!(txn.update(table, IndexId(0), key, rows[i].clone()).unwrap());
            txn.commit().unwrap();
        }
    });
    assert_eq!(
        write_allocs, 0,
        "warmed update transactions under CcPolicy::Adaptive must not allocate"
    );
}

/// The documented 1V contrast, write-path edition: the single-version
/// engine's update transaction materializes lookups, undo images and log
/// ops — it allocates by design, exactly the overhead the MV write path
/// sheds.
#[test]
fn onev_update_txns_allocate_by_design() {
    let _serial = serial();
    use mmdb_onev::{SvConfig, SvEngine};
    let engine = SvEngine::new(SvConfig::default());
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();

    for i in 0..64u64 {
        let key = i % ROWS;
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        assert!(txn
            .update(table, IndexId(0), key, grouped_row(key))
            .unwrap());
        txn.commit().unwrap();
    }
    let row = grouped_row(5);
    let allocs = count_allocations(|| {
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        assert!(txn.update(table, IndexId(0), 5, row.clone()).unwrap());
        txn.commit().unwrap();
    });
    assert!(
        allocs > 0,
        "1V update transactions stage lookups, undo and log ops; an \
         allocation-free 1V write would mean this documentation is stale"
    );
}

/// The group-commit acceptance criterion for the async path: warmed update
/// transactions stay allocation-free when the engine logs through a
/// `GroupCommitLog` — the commit frames its write set into the transaction's
/// reusable encode buffer and `append_frame_ticketed` copies it into the
/// shared batch buffer, whose capacity (pre-reserved and recycled by the
/// flusher's buffer swap) absorbs steady-state batches without growing. The
/// background flusher thread does the write+sync; its (zero) allocations are
/// on its own thread and would not be counted anyway.
#[test]
fn warmed_async_commits_through_group_commit_log_allocate_nothing() {
    let _serial = serial();
    use mmdb_storage::group_commit::GroupCommitLog;
    use mmdb_storage::log::RedoLogger as _;

    let path = std::env::temp_dir().join(format!(
        "mmdb-alloc-free-groupcommit-{}.log",
        std::process::id()
    ));
    let mut config = MvConfig::optimistic();
    config.deadlock_detector = false;
    config.gc_every_n_commits = 0;
    let logger = std::sync::Arc::new(
        GroupCommitLog::with_tick(&path, std::time::Duration::from_millis(1)).unwrap(),
    );
    let engine = MvEngine::with_logger(config, logger.clone());
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();

    for i in 0..WARM_TXNS {
        let key = (i * 31) % ROWS;
        let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
        assert!(txn
            .update(table, IndexId(0), key, grouped_row(key))
            .unwrap());
        txn.commit().unwrap();
    }
    drain_into_pool(&engine, table, MEASURED_TXNS as usize + 1);

    let keys: Vec<u64> = (0..MEASURED_TXNS).map(|i| (i * 37) % ROWS).collect();
    let rows: Vec<Row> = keys.iter().map(|&k| grouped_row(k)).collect();
    let allocs = count_allocations(|| {
        for (i, &key) in keys.iter().enumerate() {
            let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
            assert!(txn.update(table, IndexId(0), key, rows[i].clone()).unwrap());
            txn.commit().unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "warmed async commits through the group-commit log must not allocate"
    );

    // And the log really carried every frame: flush and count.
    logger.flush().unwrap();
    assert_eq!(
        logger.records_written(),
        WARM_TXNS + MEASURED_TXNS,
        "every committed write transaction appended exactly one frame"
    );
    drop(engine);
    drop(logger);
    let _ = std::fs::remove_file(&path);
}
