//! Zero-allocation regression test for the hot read path.
//!
//! The paper's central performance claim is that normal processing keeps the
//! read path nearly free of overhead: an MV read is a hash lookup plus
//! timestamp comparisons (§3), with visibility checked on every version
//! inspected (§2.5) and never a lock taken or a wait incurred. This test
//! pins the engineering consequence in this codebase:
//!
//! * steady-state **point reads** and **short secondary scans** on a warmed
//!   MV engine, through the visitor API (`read_with` / `scan_key_with`),
//!   perform **zero heap allocations** — candidates are staged in the
//!   transaction's `TxnScratch` (capacity reused across operations), the
//!   payload is visited by reference, and the `TxnTable` visibility lookup
//!   is a lock-free probe of an epoch-protected slot map (`get_in` — no
//!   `RwLock`, no `Arc` clone; there is no lock of any kind left in
//!   `txn_table.rs` lookups to acquire);
//! * the **1V comparison**: the single-version engine's read path acquires
//!   bucket locks and, for secondary lookups, stages primary keys — it is
//!   *not* allocation-free, which is part of why the paper's multiversion
//!   schemes win on read-heavy workloads.
//!
//! The counting allocator is thread-local, so background threads (GC,
//! deadlock detector) cannot pollute the measurement; the detector is
//! disabled anyway for determinism.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::ids::IndexId;
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::rowbuf;
use mmdb_core::{MvConfig, MvEngine};

/// Counts allocations (alloc + realloc) made by the *current thread*.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to the system allocator; the counter is
// a plain thread-local side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Run `f` and return how many allocations the current thread made in it.
fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = allocations_on_this_thread();
    f();
    allocations_on_this_thread() - before
}

const ROWS: u64 = 1_024;

/// The shared read-path fixture (`rowbuf::grouped_row` / `grouped_spec`,
/// also used by `mmdb-bench`'s `repro perf` experiment and `readpath`
/// bench): this test asserts zero allocations for exactly the shape those
/// measurements run.
use mmdb_common::row::rowbuf::{grouped_row, grouped_spec, GROUP_SIZE};

fn warmed_mv_engine() -> (MvEngine, mmdb_common::ids::TableId) {
    let mut config = MvConfig::optimistic();
    // Keep the measurement deterministic: no background detector thread, no
    // cooperative GC kicking in mid-read (nothing would be enqueued anyway —
    // the workload below is read-only on a populated table).
    config.deadlock_detector = false;
    config.gc_every_n_commits = 0;
    let engine = MvEngine::with_logger(
        config,
        std::sync::Arc::new(mmdb_storage::log::NullLogger::new()),
    );
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();
    (engine, table)
}

/// The acceptance criterion of the allocation-free read path: after one
/// warm-up operation (which sizes the scratch buffer), point reads and short
/// scans perform zero heap allocations at read committed and snapshot
/// isolation.
#[test]
fn warmed_mv_reads_and_scans_allocate_nothing() {
    let (engine, table) = warmed_mv_engine();
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let mut txn = engine.begin(isolation);
        // Warm-up: the first operations may grow the transaction's scratch
        // buffer (and the thread's epoch bookkeeping) once.
        let mut checksum = 0u64;
        txn.read_with(table, IndexId(0), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();
        txn.scan_key_with(table, IndexId(1), 1, &mut |row| {
            checksum += rowbuf::key_of(row)
        })
        .unwrap();

        let allocs = count_allocations(|| {
            for i in 0..1_000u64 {
                let key = (i * 31) % ROWS;
                let found = txn
                    .read_with(table, IndexId(0), key, &mut |row| {
                        checksum += rowbuf::key_of(row);
                    })
                    .unwrap();
                assert!(found, "populated key {key} must be visible");
                let group = (i * 7) % (ROWS / GROUP_SIZE);
                let visited = txn
                    .scan_key_with(table, IndexId(1), group, &mut |row| {
                        checksum += rowbuf::key_of(row);
                    })
                    .unwrap();
                assert_eq!(visited, GROUP_SIZE as usize, "short scan of group {group}");
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state reads/scans at {isolation:?} must not allocate \
             (checksum {checksum})"
        );
        txn.commit().unwrap();
    }
}

/// The materializing wrappers stay allocation-cheap but not allocation-free:
/// `read` clones the payload handle into an `Option<Row>` (refcount bump, no
/// heap allocation with `Bytes`), while `scan_key` builds a `Vec<Row>`. This
/// documents exactly where the remaining allocations on the legacy API come
/// from.
#[test]
fn materializing_scan_allocates_where_the_visitor_does_not() {
    let (engine, table) = warmed_mv_engine();
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let _ = txn.scan_key(table, IndexId(1), 1).unwrap();
    let mut sink = 0u64;
    let _ = txn
        .scan_key_with(table, IndexId(1), 1, &mut |row| sink += rowbuf::key_of(row))
        .unwrap();

    let visitor_allocs = count_allocations(|| {
        for group in 0..64u64 {
            txn.scan_key_with(table, IndexId(1), group, &mut |row| {
                sink += rowbuf::key_of(row);
            })
            .unwrap();
        }
    });
    let materializing_allocs = count_allocations(|| {
        for group in 0..64u64 {
            sink += txn.scan_key(table, IndexId(1), group).unwrap().len() as u64;
        }
    });
    assert_eq!(visitor_allocs, 0, "visitor scans are allocation-free");
    assert!(
        materializing_allocs >= 64,
        "each materializing scan builds at least its Vec<Row> \
         ({materializing_allocs} allocations over 64 scans, sink {sink})"
    );
    txn.abort();
}

/// The documented 1V comparison: the single-version engine's secondary-index
/// read path stages primary keys and therefore allocates even through the
/// visitor API. (Its primary-index point read visits the row in place under
/// the bucket lock — cheap, but the lock acquisition itself is exactly what
/// the multiversion schemes avoid.)
#[test]
fn onev_secondary_scans_allocate_by_design() {
    use mmdb_onev::{SvConfig, SvEngine};
    let engine = SvEngine::new(SvConfig::default());
    let table = engine.create_table(grouped_spec(ROWS)).unwrap();
    engine.populate(table, (0..ROWS).map(grouped_row)).unwrap();

    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    let mut sink = 0u64;
    txn.scan_key_with(table, IndexId(1), 1, &mut |row| sink += rowbuf::key_of(row))
        .unwrap();
    let allocs = count_allocations(|| {
        for group in 0..64u64 {
            txn.scan_key_with(table, IndexId(1), group, &mut |row| {
                sink += rowbuf::key_of(row);
            })
            .unwrap();
        }
    });
    assert!(
        allocs > 0,
        "1V secondary lookups stage primary keys; an allocation-free 1V scan \
         would mean this documentation is stale (sink {sink})"
    );
    txn.abort();
}
