//! Behavioural tests of paper-specific mechanisms that the crate-level unit
//! tests do not cover: lower isolation levels, read-lock saturation, commit
//! dependencies and cascaded aborts, eager updates, bucket-lock phantom
//! prevention for MV/L, and garbage-collection interaction with snapshots.

use std::sync::Arc;
use std::time::Duration;

use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::error::MmdbError;
use mmdb_common::ids::IndexId;
use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
use mmdb_common::row::{rowbuf, TableSpec};
use mmdb_core::{MvConfig, MvEngine};

const FILLER: usize = 16;

fn engine_with_rows(mode: ConcurrencyMode, rows: u64) -> (MvEngine, mmdb_common::ids::TableId) {
    let engine = match mode {
        ConcurrencyMode::Optimistic => MvEngine::optimistic(MvConfig::default()),
        ConcurrencyMode::Pessimistic => MvEngine::pessimistic(MvConfig::default()),
    };
    let table = engine
        .create_table(TableSpec::keyed_u64("t", (rows as usize).max(16)))
        .unwrap();
    engine
        .populate(table, (0..rows).map(|k| rowbuf::keyed_row(k, FILLER, 1)))
        .unwrap();
    (engine, table)
}

// ---------------------------------------------------------------------------
// Lower isolation levels (§3.4): the requester bears the cost, bystanders are
// unaffected, and weaker levels skip the work entirely.
// ---------------------------------------------------------------------------

#[test]
fn read_committed_never_fails_validation() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 50);
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    assert!(txn.read(t, IndexId(0), 7).unwrap().is_some());

    // Another transaction overwrites the row we read and commits.
    let mut writer = engine.begin(IsolationLevel::ReadCommitted);
    writer
        .update(t, IndexId(0), 7, rowbuf::keyed_row(7, FILLER, 99))
        .unwrap();
    writer.commit().unwrap();

    // Read committed does not track reads, so commit succeeds.
    txn.update(t, IndexId(0), 8, rowbuf::keyed_row(8, FILLER, 2))
        .unwrap();
    txn.commit().expect("read committed has no read validation");
}

#[test]
fn repeatable_read_validates_reads_but_not_phantoms() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 50);

    // Phantom scenario: a repeatable-read transaction scans a missing key,
    // another transaction inserts it. RR does not repeat scans, so it commits.
    let mut rr = engine.begin(IsolationLevel::RepeatableRead);
    assert!(rr.read(t, IndexId(0), 999).unwrap().is_none());
    let mut ins = engine.begin(IsolationLevel::ReadCommitted);
    ins.insert(t, rowbuf::keyed_row(999, FILLER, 5)).unwrap();
    ins.commit().unwrap();
    rr.commit()
        .expect("repeatable read does not detect phantoms");

    // Read-stability scenario: RR must still detect a changed read.
    let mut rr = engine.begin(IsolationLevel::RepeatableRead);
    assert!(rr.read(t, IndexId(0), 3).unwrap().is_some());
    let mut w = engine.begin(IsolationLevel::ReadCommitted);
    w.update(t, IndexId(0), 3, rowbuf::keyed_row(3, FILLER, 7))
        .unwrap();
    w.commit().unwrap();
    assert_eq!(rr.commit().unwrap_err(), MmdbError::ReadValidationFailed);
}

#[test]
fn snapshot_isolation_skips_all_tracking_but_keeps_first_writer_wins() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 20);
    let mut a = engine.begin(IsolationLevel::SnapshotIsolation);
    let mut b = engine.begin(IsolationLevel::SnapshotIsolation);
    assert!(a.read(t, IndexId(0), 1).unwrap().is_some());
    assert!(b.read(t, IndexId(0), 1).unwrap().is_some());
    // Concurrent writes to the same row: the second writer loses immediately.
    assert!(a
        .update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 2))
        .unwrap());
    let err = b
        .update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 3))
        .unwrap_err();
    assert!(matches!(err, MmdbError::WriteWriteConflict { .. }));
    b.abort();
    a.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Pessimistic record locks (§4.1.1, §4.2.1)
// ---------------------------------------------------------------------------

#[test]
fn read_lock_count_saturates_at_255_readers() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Pessimistic, 10);
    // 255 concurrent repeatable-read transactions read-lock the same row.
    let mut readers: Vec<_> = (0..255)
        .map(|_| {
            let mut txn = engine.begin(IsolationLevel::RepeatableRead);
            assert!(txn.read(t, IndexId(0), 4).unwrap().is_some());
            txn
        })
        .collect();
    // The 256th reader cannot acquire a read lock and aborts.
    let mut unlucky = engine.begin(IsolationLevel::RepeatableRead);
    let err = unlucky.read(t, IndexId(0), 4).unwrap_err();
    assert_eq!(err, MmdbError::ReadLockUnavailable);
    unlucky.abort();
    // Readers finish fine and release their locks; afterwards locking works again.
    for txn in readers.drain(..) {
        txn.commit().unwrap();
    }
    let mut again = engine.begin(IsolationLevel::RepeatableRead);
    assert!(again.read(t, IndexId(0), 4).unwrap().is_some());
    again.commit().unwrap();
}

#[test]
fn eager_update_of_read_locked_version_waits_for_reader() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Pessimistic, 10);
    let mut reader = engine.begin(IsolationLevel::RepeatableRead);
    assert!(reader.read(t, IndexId(0), 2).unwrap().is_some());

    // The writer performs its update during normal processing without
    // blocking (eager update) ...
    let mut writer = engine.begin(IsolationLevel::ReadCommitted);
    assert!(writer
        .update(t, IndexId(0), 2, rowbuf::keyed_row(2, FILLER, 9))
        .unwrap());

    // ... but its commit can only complete after the reader releases its
    // read lock. Run the commit on another thread and make sure it finishes
    // only after we let the reader go.
    let handle = std::thread::spawn(move || writer.commit());
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !handle.is_finished(),
        "writer must wait for the read lock to drain"
    );
    reader.commit().unwrap();
    assert!(handle.join().unwrap().is_ok());
}

#[test]
fn serializable_pessimistic_scans_prevent_phantoms_via_wait_for() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Pessimistic, 10);
    // The scanner locks the bucket of key 777 (which does not exist).
    let mut scanner = engine.begin(IsolationLevel::Serializable);
    assert!(scanner.read(t, IndexId(0), 777).unwrap().is_none());

    // The inserter may insert eagerly but cannot commit before the scanner
    // finishes (wait-for dependency on the bucket lock).
    let mut inserter =
        engine.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::ReadCommitted);
    inserter
        .insert(t, rowbuf::keyed_row(777, FILLER, 1))
        .unwrap();
    let inserter_thread = std::thread::spawn(move || inserter.commit());
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !inserter_thread.is_finished(),
        "inserter must wait for the bucket lock holder"
    );

    // The scanner repeats its scan and still sees nothing (no phantom), then
    // commits, releasing the inserter.
    assert!(scanner.read(t, IndexId(0), 777).unwrap().is_none());
    scanner.commit().unwrap();
    assert!(inserter_thread.join().unwrap().is_ok());

    // Now the row is visible.
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    assert!(check.read(t, IndexId(0), 777).unwrap().is_some());
    check.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Commit dependencies and cascaded aborts (§2.7)
// ---------------------------------------------------------------------------

#[test]
fn speculative_read_of_preparing_writer_creates_commit_dependency() {
    // A pessimistic writer that must wait for a read lock sits in its
    // pre-precommit wait; during that window its new version is visible only
    // speculatively. We exercise the path where the dependency target
    // ultimately commits.
    let (engine, t) = engine_with_rows(ConcurrencyMode::Pessimistic, 10);
    let mut reader_hold = engine.begin(IsolationLevel::RepeatableRead);
    assert!(reader_hold.read(t, IndexId(0), 5).unwrap().is_some());

    let mut writer = engine.begin(IsolationLevel::ReadCommitted);
    writer
        .update(t, IndexId(0), 5, rowbuf::keyed_row(5, FILLER, 42))
        .unwrap();
    let writer_thread = std::thread::spawn(move || writer.commit());
    std::thread::sleep(Duration::from_millis(50));

    // A read-committed reader (reads at "now") encounters the write-locked
    // version while the writer is still active/waiting: it must see the old
    // value, not block, and not error.
    let mut rc = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        rc.read(t, IndexId(0), 5)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(1)
    );
    rc.commit().unwrap();

    reader_hold.commit().unwrap();
    writer_thread.join().unwrap().unwrap();

    let mut after = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        after
            .read(t, IndexId(0), 5)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(42)
    );
    after.commit().unwrap();
}

#[test]
fn abort_now_flag_cascades_into_commit_failure() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 10);
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    txn.update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 9))
        .unwrap();
    // Simulate a dependency abort: another party sets our AbortNow flag.
    engine.store().txns().get(txn.id()).unwrap().request_abort();
    let err = txn.commit().unwrap_err();
    assert_eq!(err, MmdbError::CommitDependencyFailed);
    // The write is rolled back.
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        check
            .read(t, IndexId(0), 1)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(1)
    );
    check.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Garbage collection and version chains
// ---------------------------------------------------------------------------

#[test]
fn gc_never_reclaims_versions_visible_to_an_open_snapshot() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 20);
    let mut snapshot = engine.begin(IsolationLevel::SnapshotIsolation);
    assert_eq!(
        snapshot
            .read(t, IndexId(0), 3)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(1)
    );

    // Overwrite row 3 five times, committing each time, and try to collect.
    for fill in 2..=6u8 {
        let mut w = engine.begin(IsolationLevel::ReadCommitted);
        w.update(t, IndexId(0), 3, rowbuf::keyed_row(3, FILLER, fill))
            .unwrap();
        w.commit().unwrap();
        engine.collect_garbage();
    }
    // The open snapshot must still see its original version.
    assert_eq!(
        snapshot
            .read(t, IndexId(0), 3)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(1)
    );
    snapshot.commit().unwrap();

    // After the snapshot ends, the superseded versions become collectible.
    let mut reclaimed = 0;
    for _ in 0..10 {
        reclaimed += engine.collect_garbage();
    }
    assert!(
        reclaimed >= 4,
        "old versions of row 3 must eventually be reclaimed, got {reclaimed}"
    );
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        check
            .read(t, IndexId(0), 3)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(6)
    );
    check.commit().unwrap();
}

#[test]
fn version_chains_grow_and_shrink_as_expected() {
    let (engine, t) = engine_with_rows(ConcurrencyMode::Optimistic, 8);
    assert_eq!(engine.version_count(t).unwrap(), 8);
    for round in 0..3u8 {
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        for key in 0..8u64 {
            txn.update(
                t,
                IndexId(0),
                key,
                rowbuf::keyed_row(key, FILLER, round + 2),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    assert_eq!(
        engine.version_count(t).unwrap(),
        32,
        "8 live + 24 superseded"
    );
    while engine.collect_garbage() > 0 {}
    assert_eq!(engine.version_count(t).unwrap(), 8);

    // Deletes leave only the (eventually collectible) deleted versions.
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    for key in 0..4u64 {
        assert!(txn.delete(t, IndexId(0), key).unwrap());
    }
    txn.commit().unwrap();
    while engine.collect_garbage() > 0 {}
    assert_eq!(engine.version_count(t).unwrap(), 4);
}

// ---------------------------------------------------------------------------
// Mixed-mode interaction (§4.5): optimistic writers honor pessimistic locks.
// ---------------------------------------------------------------------------

#[test]
fn optimistic_writer_waits_for_pessimistic_read_lock() {
    let engine = MvEngine::optimistic(MvConfig::default());
    let t = engine.create_table(TableSpec::keyed_u64("t", 32)).unwrap();
    engine
        .populate(t, (0..8u64).map(|k| rowbuf::keyed_row(k, FILLER, 1)))
        .unwrap();

    // A pessimistic repeatable-read transaction read-locks row 1.
    let mut pess_reader =
        engine.begin_with(ConcurrencyMode::Pessimistic, IsolationLevel::RepeatableRead);
    assert!(pess_reader.read(t, IndexId(0), 1).unwrap().is_some());

    // An optimistic writer updates the same row eagerly but must not commit
    // before the read lock is released.
    let mut opt_writer =
        engine.begin_with(ConcurrencyMode::Optimistic, IsolationLevel::ReadCommitted);
    assert!(opt_writer
        .update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 50))
        .unwrap());
    let writer_thread = std::thread::spawn(move || opt_writer.commit());
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !writer_thread.is_finished(),
        "optimistic writers honor pessimistic read locks (§4.5)"
    );

    pess_reader.commit().unwrap();
    assert!(writer_thread.join().unwrap().is_ok());
}

// ---------------------------------------------------------------------------
// Redo-log replay: a fresh engine fed the old engine's log reaches the same
// visible state.
// ---------------------------------------------------------------------------

#[test]
fn replaying_the_redo_log_rebuilds_the_database() {
    use mmdb_storage::{MemoryLogger, RedoLogger};

    let logger = Arc::new(MemoryLogger::new());
    let engine = MvEngine::with_logger(
        MvConfig::default(),
        Arc::clone(&logger) as Arc<dyn RedoLogger>,
    );
    let t = engine.create_table(TableSpec::keyed_u64("t", 64)).unwrap();

    // All data arrives through logged transactions (populate bypasses the log).
    let mut load = engine.begin(IsolationLevel::ReadCommitted);
    for k in 0..32u64 {
        load.insert(t, rowbuf::keyed_row(k, FILLER, 1)).unwrap();
    }
    load.commit().unwrap();

    // A mix of updates, deletes, an aborted transaction and a second update
    // of the same key (later timestamp must win on replay).
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    txn.update(t, IndexId(0), 3, rowbuf::keyed_row(3, FILLER, 7))
        .unwrap();
    txn.delete(t, IndexId(0), 4).unwrap();
    txn.commit().unwrap();

    let mut aborted = engine.begin(IsolationLevel::ReadCommitted);
    aborted
        .update(t, IndexId(0), 5, rowbuf::keyed_row(5, FILLER, 99))
        .unwrap();
    aborted.abort();

    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    txn.update(t, IndexId(0), 3, rowbuf::keyed_row(3, FILLER, 9))
        .unwrap();
    txn.insert(t, rowbuf::keyed_row(100, FILLER, 2)).unwrap();
    txn.commit().unwrap();

    // Recover into a fresh engine with the same table layout.
    let recovered = MvEngine::optimistic(MvConfig::default());
    let t2 = recovered
        .create_table(TableSpec::keyed_u64("t", 64))
        .unwrap();
    assert_eq!(t2, t, "table ids must match for replay");
    let applied = logger
        .with_records(|records| recovered.replay_log(records.iter().cloned()))
        .unwrap();
    assert_eq!(applied, 3, "only committed transactions are in the log");

    // The recovered database matches the original's visible state.
    let mut orig = engine.begin(IsolationLevel::ReadCommitted);
    let mut copy = recovered.begin(IsolationLevel::ReadCommitted);
    for k in 0..=100u64 {
        let a = orig.read(t, IndexId(0), k).unwrap();
        let b = copy.read(t2, IndexId(0), k).unwrap();
        assert_eq!(a, b, "key {k} differs after replay");
    }
    orig.commit().unwrap();
    copy.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Failure injection: engine shared across threads with frequent forced aborts
// keeps its data structures consistent.
// ---------------------------------------------------------------------------

#[test]
fn random_forced_aborts_leave_the_database_consistent() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let (engine, t) = engine_with_rows(ConcurrencyMode::Pessimistic, 32);
    let engine = Arc::new(engine);
    std::thread::scope(|scope| {
        for w in 0..3u64 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(w);
                for i in 0..200u64 {
                    let mode = if rng.gen_bool(0.5) {
                        ConcurrencyMode::Optimistic
                    } else {
                        ConcurrencyMode::Pessimistic
                    };
                    let mut txn = engine.begin_with(mode, IsolationLevel::Serializable);
                    let key = rng.gen_range(0..32u64);
                    let _ = txn.read(t, IndexId(0), key);
                    let _ = txn.update(t, IndexId(0), key, rowbuf::keyed_row(key, FILLER, i as u8));
                    if rng.gen_bool(0.3) {
                        // Forced abort, sometimes even via the AbortNow flag.
                        if rng.gen_bool(0.5) {
                            if let Some(h) = engine.store().txns().get(txn.id()) {
                                h.request_abort()
                            }
                        }
                        txn.abort();
                    } else {
                        let _ = txn.commit();
                    }
                }
            });
        }
    });
    // Every key still has exactly one visible version and GC can run to
    // completion without upsetting that.
    while engine.collect_garbage() > 0 {}
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    for key in 0..32u64 {
        assert!(
            check.read(t, IndexId(0), key).unwrap().is_some(),
            "key {key} lost"
        );
    }
    check.commit().unwrap();
    assert_eq!(engine.version_count(t).unwrap(), 32);
}

// ---------------------------------------------------------------------------
// Commit durability (§5 + the group-commit subsystem): Async never waits for
// log I/O, Sync returns only once the redo bytes are on durable storage, and
// a log that can no longer confirm durability fails the Sync commit cleanly.
// ---------------------------------------------------------------------------

#[test]
fn sync_commit_is_durable_on_return_while_async_commit_is_not_yet() {
    use mmdb_common::durability::Durability;
    use mmdb_storage::group_commit::GroupCommitLog;
    use mmdb_storage::log::read_log_file;

    let path = std::env::temp_dir().join(format!(
        "mmdb-behaviors-durability-{}.log",
        std::process::id()
    ));
    // Tickless log: nothing hardens unless a Sync committer (or an explicit
    // flush) drives it — which makes the semantic difference observable.
    let logger = Arc::new(GroupCommitLog::create(&path).unwrap());
    let engine = MvEngine::with_logger(
        MvConfig::optimistic().with_deadlock_detector(false),
        logger.clone(),
    );
    let t = engine.create_table(TableSpec::keyed_u64("t", 16)).unwrap();
    engine
        .populate(t, (0..4u64).map(|k| rowbuf::keyed_row(k, FILLER, 1)))
        .unwrap();

    // Async (the default): commit returns without the frame being hardened.
    let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
    assert_eq!(txn.durability(), Durability::Async);
    assert!(txn
        .update(t, IndexId(0), 0, rowbuf::keyed_row(0, FILLER, 2))
        .unwrap());
    txn.commit().unwrap();
    assert_eq!(
        read_log_file(&path).unwrap().records.len(),
        0,
        "async commit must not wait for (or force) a flush"
    );

    // Sync: by the time commit returns, the bytes are on disk — both the
    // async transaction's frame (lower LSN, same stream) and our own.
    let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
    txn.set_durability(Durability::Sync);
    assert!(txn
        .update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 3))
        .unwrap());
    txn.commit().unwrap();
    let records = read_log_file(&path).unwrap().records;
    assert_eq!(
        records.len(),
        2,
        "sync commit hardens every lower ticket along with its own"
    );
    drop(engine);
    drop(logger);
    let _ = std::fs::remove_file(&path);
}

#[cfg(target_os = "linux")]
#[test]
fn sync_commit_on_a_failed_log_rolls_back_and_reports_log_io() {
    use mmdb_common::durability::Durability;
    use mmdb_storage::log::FileLogger;

    if !std::path::Path::new("/dev/full").exists() {
        return;
    }
    // /dev/full fails every write with ENOSPC: durability can never be
    // confirmed, so the Sync commit must fail — and roll back in memory, so
    // the reported outcome matches the (empty) durable log.
    let logger = Arc::new(FileLogger::create("/dev/full").unwrap());
    let engine =
        MvEngine::with_logger(MvConfig::optimistic().with_deadlock_detector(false), logger);
    let t = engine.create_table(TableSpec::keyed_u64("t", 16)).unwrap();
    engine
        .populate(t, (0..4u64).map(|k| rowbuf::keyed_row(k, FILLER, 1)))
        .unwrap();

    let mut txn = engine.begin(IsolationLevel::SnapshotIsolation);
    txn.set_durability(Durability::Sync);
    assert!(txn
        .update(t, IndexId(0), 2, rowbuf::keyed_row(2, FILLER, 9))
        .unwrap());
    let result = txn.commit();
    assert!(
        matches!(result, Err(MmdbError::LogIo(_))),
        "sync commit must surface the sticky log error, got {result:?}"
    );

    // The update was rolled back and the engine stays usable.
    let mut check = engine.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        check
            .read(t, IndexId(0), 2)
            .unwrap()
            .map(|r| rowbuf::fill_of(&r)),
        Some(1),
        "a sync commit that could not confirm durability must not be visible"
    );
    check.commit().unwrap();
}

#[test]
fn onev_sync_commit_waits_for_the_group_commit_flush() {
    use mmdb_common::durability::Durability;
    use mmdb_onev::{SvConfig, SvEngine};
    use mmdb_storage::group_commit::GroupCommitLog;
    use mmdb_storage::log::read_log_file;

    let path = std::env::temp_dir().join(format!(
        "mmdb-behaviors-durability-1v-{}.log",
        std::process::id()
    ));
    let logger = Arc::new(GroupCommitLog::create(&path).unwrap());
    let engine = SvEngine::with_logger(
        SvConfig::default().with_durability(Durability::Sync),
        logger.clone(),
    );
    let t = engine.create_table(TableSpec::keyed_u64("t", 16)).unwrap();
    engine
        .populate(t, (0..4u64).map(|k| rowbuf::keyed_row(k, FILLER, 1)))
        .unwrap();

    // The engine default (from SvConfig) applies without a per-transaction
    // override.
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    assert!(txn
        .update(t, IndexId(0), 0, rowbuf::keyed_row(0, FILLER, 7))
        .unwrap());
    txn.commit().unwrap();
    assert_eq!(read_log_file(&path).unwrap().records.len(), 1);

    // And a per-transaction opt-out back to Async skips the wait.
    let mut txn = engine.begin(IsolationLevel::ReadCommitted);
    txn.set_durability(Durability::Async);
    assert!(txn
        .update(t, IndexId(0), 1, rowbuf::keyed_row(1, FILLER, 8))
        .unwrap());
    txn.commit().unwrap();
    assert_eq!(
        read_log_file(&path).unwrap().records.len(),
        1,
        "the async transaction's frame stays buffered until the next flush"
    );
    drop(engine);
    drop(logger);
    let _ = std::fs::remove_file(&path);
}
