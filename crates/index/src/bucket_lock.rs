//! Bucket locks for phantom protection in the pessimistic scheme (§4.1.2).
//!
//! A serializable pessimistic transaction locks every hash bucket it scans.
//! A bucket lock does **not** prevent other transactions from inserting new
//! versions into the bucket; it only prevents those insertions from becoming
//! visible to the scanner: an inserter must take a *wait-for dependency* on
//! every transaction holding a lock on the bucket and may not precommit until
//! those locks are released (§4.2.2).
//!
//! Per the paper, the implementation keeps a `LockCount` per bucket (so the
//! hot-path check "is this bucket locked at all?" is a single atomic load)
//! and the `LockList` of holding transactions in a separate sharded hash
//! table keyed by bucket number.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

use mmdb_common::ids::TxnId;

/// Number of shards for the lock-list side table.
const LIST_SHARDS: usize = 32;

/// One shard of the `LockList` map: bucket number → lock-holding transactions.
type LockListShard = Mutex<HashMap<usize, Vec<TxnId>>>;

/// Bucket-lock table for one hash index.
pub struct BucketLockTable {
    /// `LockCount` per bucket: number of serializable transactions currently
    /// holding a lock on the bucket.
    counts: Box<[AtomicU32]>,
    /// `LockList` per locked bucket, sharded by bucket number.
    lists: Box<[LockListShard]>,
}

impl BucketLockTable {
    /// Create a lock table covering `bucket_count` buckets.
    pub fn new(bucket_count: usize) -> Self {
        let counts = (0..bucket_count)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let lists = (0..LIST_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BucketLockTable { counts, lists }
    }

    #[inline]
    fn shard(&self, bucket: usize) -> &Mutex<HashMap<usize, Vec<TxnId>>> {
        &self.lists[bucket % LIST_SHARDS]
    }

    /// Number of buckets covered.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.counts.len()
    }

    /// Acquire a lock on `bucket` for `txn`. Multiple transactions can hold
    /// the same bucket locked; the same transaction may call this repeatedly
    /// (re-scans) — duplicates are not added to the lock list.
    ///
    /// Returns `true` if this call actually added the transaction to the
    /// lock list (i.e. it did not already hold the bucket).
    pub fn lock(&self, bucket: usize, txn: TxnId) -> bool {
        let mut shard = self.shard(bucket).lock();
        let list = shard.entry(bucket).or_default();
        if list.contains(&txn) {
            return false;
        }
        list.push(txn);
        self.counts[bucket].fetch_add(1, Ordering::Release);
        true
    }

    /// Release `txn`'s lock on `bucket`. Idempotent: releasing a lock that is
    /// not held is a no-op (this can happen if an abort races with normal
    /// release).
    pub fn unlock(&self, bucket: usize, txn: TxnId) {
        let mut shard = self.shard(bucket).lock();
        if let Some(list) = shard.get_mut(&bucket) {
            if let Some(pos) = list.iter().position(|t| *t == txn) {
                list.swap_remove(pos);
                self.counts[bucket].fetch_sub(1, Ordering::Release);
                if list.is_empty() {
                    shard.remove(&bucket);
                }
            }
        }
    }

    /// Fast check: is the bucket locked by anyone?
    #[inline]
    pub fn is_locked(&self, bucket: usize) -> bool {
        self.counts[bucket].load(Ordering::Acquire) > 0
    }

    /// Current `LockCount` of the bucket.
    #[inline]
    pub fn lock_count(&self, bucket: usize) -> u32 {
        self.counts[bucket].load(Ordering::Acquire)
    }

    /// Snapshot of the transactions holding a lock on `bucket`.
    ///
    /// An inserter uses this to take wait-for dependencies on every holder
    /// (§4.2.2). The snapshot may be slightly stale by the time the caller
    /// uses it; the wait-for installation re-checks each holder's state.
    pub fn holders(&self, bucket: usize) -> Vec<TxnId> {
        let shard = self.shard(bucket).lock();
        shard.get(&bucket).cloned().unwrap_or_default()
    }
}

impl std::fmt::Debug for BucketLockTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let locked: usize = (0..self.counts.len())
            .filter(|&b| self.is_locked(b))
            .count();
        f.debug_struct("BucketLockTable")
            .field("buckets", &self.counts.len())
            .field("locked_buckets", &locked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_roundtrip() {
        let table = BucketLockTable::new(8);
        assert!(!table.is_locked(3));
        assert!(table.lock(3, TxnId(1)));
        assert!(table.is_locked(3));
        assert_eq!(table.lock_count(3), 1);
        assert_eq!(table.holders(3), vec![TxnId(1)]);
        table.unlock(3, TxnId(1));
        assert!(!table.is_locked(3));
        assert!(table.holders(3).is_empty());
    }

    #[test]
    fn multiple_holders_coexist() {
        let table = BucketLockTable::new(4);
        assert!(table.lock(0, TxnId(1)));
        assert!(table.lock(0, TxnId(2)));
        assert!(table.lock(0, TxnId(3)));
        assert_eq!(table.lock_count(0), 3);
        table.unlock(0, TxnId(2));
        let mut holders = table.holders(0);
        holders.sort_by_key(|t| t.0);
        assert_eq!(holders, vec![TxnId(1), TxnId(3)]);
    }

    #[test]
    fn relocking_is_idempotent() {
        let table = BucketLockTable::new(4);
        assert!(table.lock(1, TxnId(7)));
        assert!(
            !table.lock(1, TxnId(7)),
            "second lock by same txn must not double-count"
        );
        assert_eq!(table.lock_count(1), 1);
        table.unlock(1, TxnId(7));
        assert_eq!(table.lock_count(1), 0);
    }

    #[test]
    fn unlocking_unheld_bucket_is_noop() {
        let table = BucketLockTable::new(4);
        table.unlock(2, TxnId(9));
        assert_eq!(table.lock_count(2), 0);
        table.lock(2, TxnId(1));
        table.unlock(2, TxnId(9));
        assert_eq!(table.lock_count(2), 1);
    }

    #[test]
    fn distinct_buckets_are_independent() {
        let table = BucketLockTable::new(64);
        for b in 0..64 {
            assert!(table.lock(b, TxnId(b as u64 + 1)));
        }
        for b in (0..64).step_by(2) {
            table.unlock(b, TxnId(b as u64 + 1));
        }
        for b in 0..64 {
            assert_eq!(table.is_locked(b), b % 2 == 1, "bucket {b}");
        }
    }

    #[test]
    fn concurrent_lock_unlock_is_consistent() {
        let table = Arc::new(BucketLockTable::new(16));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let bucket = (t as usize + i) % 16;
                    table.lock(bucket, TxnId(t + 1));
                    assert!(table.lock_count(bucket) >= 1);
                    table.unlock(bucket, TxnId(t + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for b in 0..16 {
            assert_eq!(table.lock_count(b), 0, "bucket {b} should end unlocked");
            assert!(table.holders(b).is_empty());
        }
    }
}
