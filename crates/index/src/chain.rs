//! Lock-free chained hash index over intrusive nodes.
//!
//! A table owns one [`HashIndex`] per declared index. All indexes of a table
//! share the same node allocations (the versions); each node carries one
//! atomic next-pointer per index, selected by the index's *slot* number.
//!
//! Concurrency contract:
//!
//! * **Insertions** ([`HashIndex::insert`]) are lock-free: a CAS push at the
//!   bucket head, retried on contention.
//! * **Traversals** ([`HashIndex::iter_key`], [`HashIndex::iter_bucket`])
//!   never block and never observe freed memory; callers must hold a
//!   `crossbeam_epoch` [`Guard`].
//! * **Unlinks** ([`HashIndex::unlink`]) are performed only by the garbage
//!   collector, which serializes unlinks per table (see
//!   `mmdb-storage::gc`). Interleaved inserts are tolerated (the CAS fails
//!   and the unlink retries); interleaved unlinks on the same index are not,
//!   which is exactly why the collector serializes them.

use crossbeam::epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering;

use mmdb_common::hash::bucket_of;
use mmdb_common::ids::Key;

/// A node that can be linked into one or more [`HashIndex`] chains.
///
/// Implementors embed an array of `Atomic<Self>` next-pointers, one per index
/// of the owning table, and report the index key of the node for a given
/// slot.
pub trait ChainNode: Sized + Send + Sync {
    /// The intrusive next-pointer used by the index occupying `slot`.
    fn next_ptr(&self, slot: usize) -> &Atomic<Self>;

    /// The key of this node under the index occupying `slot`.
    fn key(&self, slot: usize) -> Key;
}

/// A fixed-size, latch-free chained hash index.
pub struct HashIndex<N: ChainNode> {
    /// Which next-pointer slot of the nodes this index threads through.
    slot: usize,
    /// Bucket heads.
    buckets: Box<[Atomic<N>]>,
}

impl<N: ChainNode> HashIndex<N> {
    /// Create an index with `bucket_count` buckets using next-pointer `slot`.
    ///
    /// # Panics
    /// Panics if `bucket_count` is zero.
    pub fn new(slot: usize, bucket_count: usize) -> Self {
        assert!(bucket_count > 0, "hash index needs at least one bucket");
        let buckets = (0..bucket_count)
            .map(|_| Atomic::null())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        HashIndex { slot, buckets }
    }

    /// Number of buckets.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The slot number this index was created with.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Bucket that `key` hashes to.
    #[inline]
    pub fn bucket_of_key(&self, key: Key) -> usize {
        bucket_of(key, self.buckets.len())
    }

    /// Insert `node` at the head of the bucket its key hashes to.
    ///
    /// The node must not already be linked into this index. The caller keeps
    /// logical ownership of the allocation; the index only threads pointers
    /// through it.
    pub fn insert<'g>(&self, node: Shared<'g, N>, guard: &'g Guard) {
        let node_ref = unsafe { node.deref() };
        let bucket = self.bucket_of_key(node_ref.key(self.slot));
        let head = &self.buckets[bucket];
        let mut current = head.load(Ordering::Acquire, guard);
        loop {
            node_ref
                .next_ptr(self.slot)
                .store(current, Ordering::Release);
            match head.compare_exchange_weak(
                current,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => return,
                Err(err) => current = err.current,
            }
        }
    }

    /// Iterate over every node in the bucket `key` hashes to.
    ///
    /// Because the index chains every node whose key hashes to this bucket,
    /// callers must still compare keys (the "check predicate" step of a
    /// paper-style index scan).
    #[inline]
    pub fn iter_key<'g>(&self, key: Key, guard: &'g Guard) -> BucketIter<'g, N> {
        self.iter_bucket(self.bucket_of_key(key), guard)
    }

    /// Iterate over every node in bucket `bucket`.
    pub fn iter_bucket<'g>(&self, bucket: usize, guard: &'g Guard) -> BucketIter<'g, N> {
        BucketIter {
            slot: self.slot,
            current: self.buckets[bucket].load(Ordering::Acquire, guard),
            guard,
        }
    }

    /// Unlink `target` from the bucket it lives in. Returns `true` if the
    /// node was found and unlinked.
    ///
    /// # Safety contract (enforced by the storage-layer GC)
    /// Concurrent `unlink` calls on the *same index* are not allowed; the
    /// caller must serialize them (the storage garbage collector holds a
    /// per-table mutex while unlinking). Concurrent inserts and traversals
    /// are fine. The caller must not free the node until after this returns
    /// and must do so through the epoch mechanism (`defer_destroy`).
    pub fn unlink<'g>(&self, target: Shared<'g, N>, guard: &'g Guard) -> bool {
        let target_ref = unsafe { target.deref() };
        let bucket = self.bucket_of_key(target_ref.key(self.slot));
        'retry: loop {
            // Find the link (bucket head or a predecessor node's next pointer)
            // that currently points at `target`.
            let mut link: &Atomic<N> = &self.buckets[bucket];
            let mut current = link.load(Ordering::Acquire, guard);
            loop {
                if current.is_null() {
                    // Not present (already unlinked).
                    return false;
                }
                if current == target {
                    let next = target_ref
                        .next_ptr(self.slot)
                        .load(Ordering::Acquire, guard);
                    match link.compare_exchange(
                        current,
                        next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => return true,
                        // An insert landed on this link (only possible at the
                        // bucket head); retry from the top.
                        Err(_) => continue 'retry,
                    }
                }
                let node = unsafe { current.deref() };
                link = node.next_ptr(self.slot);
                current = link.load(Ordering::Acquire, guard);
            }
        }
    }

    /// Iterate over all buckets, yielding every node in the index.
    /// Used for full-table scans ("to scan a table, one simply scans all
    /// buckets of any index on the table", §2.1) and by destructors.
    pub fn iter_all<'a, 'g: 'a>(
        &'a self,
        guard: &'g Guard,
    ) -> impl Iterator<Item = Shared<'g, N>> + 'a
    where
        N: 'g,
    {
        (0..self.buckets.len()).flat_map(move |b| self.iter_bucket(b, guard))
    }

    /// Drain every chain, returning the raw shared pointers without freeing
    /// them. Only meaningful when the caller has exclusive access (e.g. table
    /// teardown); the storage layer uses it to free all versions exactly once.
    pub fn drain_exclusive<'g>(&self, guard: &'g Guard) -> Vec<Shared<'g, N>> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut current = b.load(Ordering::Acquire, guard);
            b.store(Shared::null(), Ordering::Release);
            while !current.is_null() {
                out.push(current);
                current = unsafe { current.deref() }
                    .next_ptr(self.slot)
                    .load(Ordering::Acquire, guard);
            }
        }
        out
    }
}

/// Iterator over the nodes of one bucket.
pub struct BucketIter<'g, N: ChainNode> {
    slot: usize,
    current: Shared<'g, N>,
    guard: &'g Guard,
}

impl<'g, N: ChainNode> Iterator for BucketIter<'g, N> {
    type Item = Shared<'g, N>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.current.is_null() {
            return None;
        }
        let item = self.current;
        let node = unsafe { item.deref() };
        self.current = node.next_ptr(self.slot).load(Ordering::Acquire, self.guard);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::epoch::{self, Owned};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Minimal two-index test node.
    struct TestNode {
        pk: u64,
        sk: u64,
        payload: u64,
        nexts: [Atomic<TestNode>; 2],
    }

    impl TestNode {
        fn new(pk: u64, sk: u64, payload: u64) -> Owned<TestNode> {
            Owned::new(TestNode {
                pk,
                sk,
                payload,
                nexts: [Atomic::null(), Atomic::null()],
            })
        }
    }

    impl ChainNode for TestNode {
        fn next_ptr(&self, slot: usize) -> &Atomic<TestNode> {
            &self.nexts[slot]
        }
        fn key(&self, slot: usize) -> Key {
            if slot == 0 {
                self.pk
            } else {
                self.sk
            }
        }
    }

    fn collect_payloads(index: &HashIndex<TestNode>, key: u64) -> Vec<u64> {
        let guard = epoch::pin();
        let mut v: Vec<u64> = index
            .iter_key(key, &guard)
            .filter(|n| unsafe { n.deref() }.key(index.slot()) == key)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_and_lookup() {
        let index = HashIndex::<TestNode>::new(0, 16);
        let guard = epoch::pin();
        for i in 0..100u64 {
            let node = TestNode::new(i, i % 10, i * 2).into_shared(&guard);
            index.insert(node, &guard);
        }
        drop(guard);
        for i in 0..100u64 {
            assert_eq!(collect_payloads(&index, i), vec![i * 2]);
        }
        assert_eq!(collect_payloads(&index, 1000), Vec::<u64>::new());
    }

    #[test]
    fn two_indexes_share_nodes() {
        let primary = HashIndex::<TestNode>::new(0, 8);
        let secondary = HashIndex::<TestNode>::new(1, 4);
        let guard = epoch::pin();
        for i in 0..30u64 {
            let node = TestNode::new(i, i % 3, i).into_shared(&guard);
            primary.insert(node, &guard);
            secondary.insert(node, &guard);
        }
        // Secondary key 1 should see nodes 1, 4, 7, ... 28 (10 of them).
        let hits: Vec<u64> = secondary
            .iter_key(1, &guard)
            .filter(|n| unsafe { n.deref() }.key(1) == 1)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn duplicate_keys_chain_together() {
        let index = HashIndex::<TestNode>::new(0, 4);
        let guard = epoch::pin();
        for payload in 0..5u64 {
            index.insert(TestNode::new(42, 0, payload).into_shared(&guard), &guard);
        }
        assert_eq!(collect_payloads(&index, 42), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unlink_removes_exactly_one_node() {
        let index = HashIndex::<TestNode>::new(0, 2);
        let guard = epoch::pin();
        let mut nodes = Vec::new();
        for payload in 0..5u64 {
            let shared = TestNode::new(7, 0, payload).into_shared(&guard);
            index.insert(shared, &guard);
            nodes.push(shared);
        }
        assert!(index.unlink(nodes[2], &guard));
        assert_eq!(collect_payloads(&index, 7), vec![0, 1, 3, 4]);
        // Unlinking again returns false.
        assert!(!index.unlink(nodes[2], &guard));
        // Unlink head and tail too.
        assert!(index.unlink(nodes[4], &guard));
        assert!(index.unlink(nodes[0], &guard));
        assert_eq!(collect_payloads(&index, 7), vec![1, 3]);
    }

    #[test]
    fn iter_all_visits_everything() {
        let index = HashIndex::<TestNode>::new(0, 7);
        let guard = epoch::pin();
        for i in 0..50u64 {
            index.insert(TestNode::new(i, 0, i).into_shared(&guard), &guard);
        }
        let mut seen: Vec<u64> = index
            .iter_all(&guard)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_are_not_lost() {
        let index = Arc::new(HashIndex::<TestNode>::new(0, 64));
        let inserted = Arc::new(AtomicU64::new(0));
        let threads = 4;
        let per_thread = 500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let index = Arc::clone(&index);
            let inserted = Arc::clone(&inserted);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = t as u64 * per_thread + i;
                    let guard = epoch::pin();
                    index.insert(TestNode::new(key, 0, key).into_shared(&guard), &guard);
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let guard = epoch::pin();
        let count = index.iter_all(&guard).count() as u64;
        assert_eq!(count, threads as u64 * per_thread);
        assert_eq!(count, inserted.load(Ordering::Relaxed));
    }

    #[test]
    fn concurrent_insert_during_unlink_retries_cleanly() {
        // Unlink the head of a bucket while another thread keeps pushing new
        // heads: every push must survive, the unlinked node must disappear.
        let index = Arc::new(HashIndex::<TestNode>::new(0, 1));
        let guard = epoch::pin();
        let victim = TestNode::new(0, 0, 900_999).into_shared(&guard);
        index.insert(victim, &guard);
        let victim_addr = victim.as_raw() as usize;
        drop(guard);

        let pusher = {
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                for i in 1..=2000u64 {
                    let guard = epoch::pin();
                    index.insert(TestNode::new(i, 0, i).into_shared(&guard), &guard);
                }
            })
        };
        let unlinker = {
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                let guard = epoch::pin();
                let target = index
                    .iter_bucket(0, &guard)
                    .find(|n| n.as_raw() as usize == victim_addr)
                    .expect("victim still linked");
                assert!(index.unlink(target, &guard));
            })
        };
        pusher.join().unwrap();
        unlinker.join().unwrap();

        let guard = epoch::pin();
        let payloads: Vec<u64> = index
            .iter_all(&guard)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        assert_eq!(payloads.len(), 2000);
        assert!(!payloads.contains(&900_999));
    }

    #[test]
    fn drain_exclusive_empties_the_index() {
        let index = HashIndex::<TestNode>::new(0, 4);
        let guard = epoch::pin();
        for i in 0..10u64 {
            index.insert(TestNode::new(i, 0, i).into_shared(&guard), &guard);
        }
        let drained = index.drain_exclusive(&guard);
        assert_eq!(drained.len(), 10);
        assert_eq!(index.iter_all(&guard).count(), 0);
        // Free them to keep miri/asan happy about leaks (exclusive access).
        for node in drained {
            unsafe { guard.defer_destroy(node) };
        }
    }
}
