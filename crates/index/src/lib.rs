//! # mmdb-index
//!
//! Latch-free chained hash index used by the mmdb multiversion storage
//! engine, plus the bucket-lock table the pessimistic scheme uses for
//! phantom protection.
//!
//! The paper (§2.1): *"Our prototype currently supports only hash indexes
//! which are implemented using lock-free hash tables. A table can have many
//! indexes, and records are always accessed via an index lookup."* Versions
//! that hash to the same bucket are linked together through a per-index
//! pointer embedded in the version itself (the `Hash ptr` field of Figure 1).
//!
//! This crate provides that structure generically:
//!
//! * [`ChainNode`] — implemented by the storage engine's version type; a node
//!   carries one intrusive next-pointer per index of its table.
//! * [`HashIndex`] — a fixed-size bucket array of lock-free singly-linked
//!   chains. Insertion is a CAS push at the bucket head; lookups traverse
//!   under a `crossbeam_epoch` guard and never block; garbage versions are
//!   unlinked with a CAS on the predecessor pointer (serialized per index by
//!   the garbage collector) and reclaimed through the epoch mechanism.
//! * [`BucketLockTable`] — the serializable-scan bucket locks of §4.1.2:
//!   a lock count per bucket (fast "is it locked?" checks) plus a lock list
//!   stored in a sharded side table keyed by bucket number.
//! * [`OrderedIndex`] — a lock-free skip list over the same intrusive
//!   version chains, serving the inclusive range predicates hash indexes
//!   cannot.
//! * [`RangeLockTable`] — §4.1.2's bucket locks generalized to ordered-index
//!   range predicates, so MV/L serializable range scans get the same
//!   wait-for-based phantom protection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bucket_lock;
pub mod chain;
pub mod ordered;
pub mod range_lock;

pub use bucket_lock::BucketLockTable;
pub use chain::{BucketIter, ChainNode, HashIndex};
pub use ordered::{OrderedIndex, RangeIter};
pub use range_lock::RangeLockTable;
