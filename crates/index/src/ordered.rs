//! Lock-free ordered index (skip list) over intrusive version chains.
//!
//! The paper's prototype "currently supports only hash indexes" (§2.1) and
//! therefore only equality predicates; its phantom-protection protocols
//! (§4.1.2, §4.2.2) are specified per *hash bucket*. This module supplies the
//! structure those protocols generalize to: an ordered index that serves
//! inclusive range predicates `[lo, hi]`, so scans can be validated (MV/O)
//! or locked (MV/L) at predicate granularity instead of bucket granularity.
//!
//! # Structure
//!
//! A [`OrderedIndex`] is a skip list of *key nodes*, one per distinct key
//! currently indexed. Each key node owns the chain of versions carrying that
//! key, threaded through the versions' intrusive [`ChainNode`] next-pointer
//! for this index's slot — exactly the pointer a [`crate::HashIndex`] would
//! use, so a version can be linked into hash and ordered indexes of the same
//! table simultaneously.
//!
//! # Concurrency contract
//!
//! * **Version insertion** ([`OrderedIndex::insert`]) is lock-free on the
//!   steady-state path: pushing a version onto an existing key node is one
//!   CAS on the chain head, and linking a *new* key node into level 0 is one
//!   CAS on the predecessor pointer. Only linking a new node's upper tower
//!   levels takes a short internal mutex (`tower_lock`) — a novel-key insert
//!   already allocates, so this is off the hot path.
//! * **Traversals** ([`OrderedIndex::iter_range`] and friends) never block
//!   and never observe freed memory; callers hold a `crossbeam_epoch`
//!   [`Guard`].
//! * **Unlinks** ([`OrderedIndex::unlink`]) are performed only by the
//!   garbage collector, which serializes them per table. Unlinking the last
//!   version of a key retires the key node itself (see below).
//!
//! # Key-node retirement
//!
//! Removing skip-list nodes concurrently with lock-free inserts is the
//! classic hard part. We exploit that removal is GC-only and serialized:
//!
//! 1. The collector *flags the key node dead* by CASing its chain head from
//!    `(null, tag 0)` to `(null, tag 1)` (pointer tagging via the low
//!    alignment bit). The CAS fails — and retirement is abandoned — if an
//!    inserter concurrently revived the chain; conversely, once the flag is
//!    set, [`OrderedIndex::insert`] refuses to push onto the chain and
//!    retries until the node is gone.
//! 2. Under `tower_lock`, the collector tags the dead node's *own* level-0
//!    next pointer. A lock-free inserter that wanted to link a new node
//!    immediately after the dead one now fails its CAS (the expected value
//!    is untagged) and re-searches; the search notices the tag and restarts,
//!    so no insertion can be linked behind a node that is about to vanish.
//! 3. Still under the lock, the collector unlinks the node from every tower
//!    level top-down (upper levels cannot change concurrently — linking them
//!    takes the same lock) and retires the allocation through the epoch
//!    mechanism.

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;

use mmdb_common::hash::mix64;
use mmdb_common::ids::Key;

use crate::chain::ChainNode;

/// Maximum tower height. 2^12 expected keys per level-12 node is plenty for
/// the table sizes the experiments use (millions of rows).
const MAX_HEIGHT: usize = 12;

/// Tag value marking a key node dead (on its chain head) or unlinking (on
/// its level-0 next pointer).
const DEAD: usize = 1;

/// One distinct key of the index: the tower of skip-list pointers plus the
/// head of the chain of versions carrying this key.
struct KeyNode<N> {
    /// The index key all chained versions share.
    key: Key,
    /// Number of tower levels this node is linked into (1..=MAX_HEIGHT).
    height: usize,
    /// Head of the version chain. Tag bit 1 = node is dead (chain must be
    /// empty); set only by the retiring collector.
    head: Atomic<N>,
    /// Skip-list next pointers; entries >= `height` stay null. The level-0
    /// entry's tag bit 1 means the node is being unlinked.
    tower: Box<[Atomic<KeyNode<N>>]>,
}

/// Predecessor/successor key nodes per level, as returned by `find`.
/// A null predecessor stands for the list head.
struct Position<'g, N> {
    preds: [Shared<'g, KeyNode<N>>; MAX_HEIGHT],
    succs: [Shared<'g, KeyNode<N>>; MAX_HEIGHT],
}

/// A latch-free ordered index: a skip list mapping keys to version chains.
pub struct OrderedIndex<N: ChainNode> {
    /// Which intrusive next-pointer slot of the versions this index threads
    /// its per-key chains through.
    slot: usize,
    /// The list head's tower (level i points at the first node of height > i).
    head_tower: Box<[Atomic<KeyNode<N>>]>,
    /// Serializes upper-level tower linking and key-node retirement (see the
    /// module docs); never taken by readers or by steady-state inserts.
    tower_lock: Mutex<()>,
}

impl<N: ChainNode> OrderedIndex<N> {
    /// Create an empty ordered index using next-pointer `slot`.
    pub fn new(slot: usize) -> Self {
        // The dead flag lives in the low bit of the chain-head pointer.
        assert!(
            std::mem::align_of::<N>() >= 2,
            "ordered index nodes need an alignment bit for pointer tagging"
        );
        let head_tower = (0..MAX_HEIGHT)
            .map(|_| Atomic::null())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        OrderedIndex {
            slot,
            head_tower,
            tower_lock: Mutex::new(()),
        }
    }

    /// The slot number this index was created with.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Deterministic tower height for `key`: geometric with p = 1/2, derived
    /// from a hash so concurrent tests and recovery replays build identical
    /// shapes (no per-thread RNG state).
    #[inline]
    fn height_of(key: Key) -> usize {
        let h = mix64(!key);
        1 + (h.trailing_zeros() as usize).min(MAX_HEIGHT - 1)
    }

    /// The link at `level` leaving `pred` (the head tower when `pred` is
    /// null).
    #[inline]
    fn level_link<'a, 'g: 'a>(
        &'a self,
        pred: Shared<'g, KeyNode<N>>,
        level: usize,
    ) -> &'a Atomic<KeyNode<N>> {
        match unsafe { pred.as_ref() } {
            Some(p) => &p.tower[level],
            None => &self.head_tower[level],
        }
    }

    /// Locate `key`: per level, the last node with a smaller key (pred) and
    /// the first with an equal-or-larger key (succ). Restarts if it runs into
    /// a node whose level-0 next is tagged (that node is mid-retirement and
    /// must not be used as a predecessor).
    fn find<'a, 'g: 'a>(&'a self, key: Key, guard: &'g Guard) -> Position<'g, N> {
        'restart: loop {
            let mut preds = [Shared::null(); MAX_HEIGHT];
            let mut succs = [Shared::null(); MAX_HEIGHT];
            let mut pred: Shared<'g, KeyNode<N>> = Shared::null();
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = self.level_link(pred, level).load(Ordering::Acquire, guard);
                loop {
                    if level == 0 && curr.tag() == DEAD {
                        // Whoever owns the link we just loaded is being
                        // unlinked; wait out the (serialized, short)
                        // retirement and retry.
                        std::thread::yield_now();
                        continue 'restart;
                    }
                    let c = match unsafe { curr.as_ref() } {
                        Some(c) => c,
                        None => break,
                    };
                    if c.key < key {
                        pred = curr;
                        curr = c.tower[level].load(Ordering::Acquire, guard);
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr.with_tag(0);
            }
            return Position { preds, succs };
        }
    }

    /// Push `node` onto an existing key node's version chain. Fails (returns
    /// `false`) only if the key node has been flagged dead.
    fn push_version<'g>(&self, kn: &'g KeyNode<N>, node: Shared<'g, N>, guard: &'g Guard) -> bool {
        let node_ref = unsafe { node.deref() };
        let mut head = kn.head.load(Ordering::Acquire, guard);
        loop {
            if head.tag() == DEAD {
                return false;
            }
            node_ref.next_ptr(self.slot).store(head, Ordering::Release);
            match kn.head.compare_exchange_weak(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => return true,
                Err(err) => head = err.current,
            }
        }
    }

    /// Insert `node` under its key for this index's slot.
    ///
    /// The node must not already be linked into this index. As with
    /// [`crate::HashIndex::insert`], the caller keeps logical ownership of the
    /// version allocation; the index only threads pointers through it (key
    /// nodes, by contrast, are owned and reclaimed by the index itself).
    pub fn insert<'g>(&self, node: Shared<'g, N>, guard: &'g Guard) {
        let node_ref = unsafe { node.deref() };
        let key = node_ref.key(self.slot);
        loop {
            let pos = self.find(key, guard);
            if let Some(kn) = unsafe { pos.succs[0].as_ref() } {
                if kn.key == key {
                    if self.push_version(kn, node, guard) {
                        return;
                    }
                    // Dead key node: the collector is about to unlink it.
                    std::thread::yield_now();
                    continue;
                }
            }
            // Novel key: build a key node seeded with `node` as its chain.
            node_ref
                .next_ptr(self.slot)
                .store(Shared::null(), Ordering::Release);
            let height = Self::height_of(key);
            let kn = Owned::new(KeyNode {
                key,
                height,
                head: Atomic::null(),
                tower: (0..MAX_HEIGHT)
                    .map(|_| Atomic::null())
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            })
            .into_shared(guard);
            let kn_ref = unsafe { kn.deref() };
            kn_ref.head.store(node, Ordering::Release);
            kn_ref.tower[0].store(pos.succs[0], Ordering::Release);
            let link = self.level_link(pos.preds[0], 0);
            if link
                .compare_exchange(pos.succs[0], kn, Ordering::AcqRel, Ordering::Acquire, guard)
                .is_ok()
            {
                self.link_upper(kn, key, height, guard);
                return;
            }
            // Lost the level-0 race (concurrent insert, or the predecessor
            // died). Reclaim the unpublished node and retry; the chain still
            // only references `node` through pointers we are about to reset.
            unsafe { drop(kn.into_owned()) };
        }
    }

    /// Link a freshly published key node into tower levels `1..height`.
    fn link_upper<'g>(
        &self,
        kn: Shared<'g, KeyNode<N>>,
        key: Key,
        height: usize,
        guard: &'g Guard,
    ) {
        if height <= 1 {
            return;
        }
        let _tower = self.tower_lock.lock();
        let kn_ref = unsafe { kn.deref() };
        for level in 1..height {
            loop {
                if kn_ref.head.load(Ordering::Acquire, guard).tag() == DEAD {
                    // Emptied and flagged dead before we got here; the
                    // retirement (waiting on this lock) unlinks whatever we
                    // have linked so far.
                    return;
                }
                let pos = self.find(key, guard);
                kn_ref.tower[level].store(pos.succs[level], Ordering::Release);
                if self
                    .level_link(pos.preds[level], level)
                    .compare_exchange(
                        pos.succs[level],
                        kn,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
    }

    /// Unlink `target` from its key's version chain. Returns `true` if the
    /// version was found and unlinked. If that left the chain empty, the key
    /// node itself is retired.
    ///
    /// # Safety contract (enforced by the storage-layer GC)
    /// Same as [`crate::HashIndex::unlink`]: concurrent `unlink` calls on the
    /// same index are not allowed; concurrent inserts and traversals are
    /// fine; the caller must reclaim the version through the epoch mechanism.
    pub fn unlink<'g>(&self, target: Shared<'g, N>, guard: &'g Guard) -> bool {
        let target_ref = unsafe { target.deref() };
        let key = target_ref.key(self.slot);
        let pos = self.find(key, guard);
        let kn_shared = pos.succs[0];
        let kn = match unsafe { kn_shared.as_ref() } {
            Some(k) if k.key == key => k,
            _ => return false,
        };
        let removed = 'retry: loop {
            // Find the link (chain head or a predecessor version's next
            // pointer) currently pointing at `target`.
            let mut link: &Atomic<N> = &kn.head;
            let mut current = link.load(Ordering::Acquire, guard);
            loop {
                if current.is_null() {
                    // Not present (dead flag also lands here: tagged null).
                    break 'retry false;
                }
                if current == target {
                    let next = target_ref
                        .next_ptr(self.slot)
                        .load(Ordering::Acquire, guard);
                    match link.compare_exchange(
                        current,
                        next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => break 'retry true,
                        // An insert pushed a new chain head; retry.
                        Err(_) => continue 'retry,
                    }
                }
                let node = unsafe { current.deref() };
                link = node.next_ptr(self.slot);
                current = link.load(Ordering::Acquire, guard);
            }
        };
        if removed && kn.head.load(Ordering::Acquire, guard).is_null() {
            self.retire_key_node(kn_shared, guard);
        }
        removed
    }

    /// Retire an empty key node (module docs, steps 1–3). Called only from
    /// [`OrderedIndex::unlink`], i.e. GC-serialized.
    fn retire_key_node<'g>(&self, kn: Shared<'g, KeyNode<N>>, guard: &'g Guard) {
        let kn_ref = unsafe { kn.deref() };
        // Step 1: flag dead. Fails iff an inserter revived the chain.
        if kn_ref
            .head
            .compare_exchange(
                Shared::null(),
                Shared::null().with_tag(DEAD),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            )
            .is_err()
        {
            return;
        }
        let key = kn_ref.key;
        let _tower = self.tower_lock.lock();
        // Step 2: tag our own level-0 next so no new node can be linked
        // directly behind us (the inserter's CAS expects an untagged value).
        let mut next0 = kn_ref.tower[0].load(Ordering::Acquire, guard);
        while next0.tag() != DEAD {
            match kn_ref.tower[0].compare_exchange(
                next0,
                next0.with_tag(DEAD),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => break,
                Err(err) => next0 = err.current,
            }
        }
        // Step 3: unlink from every linked level, top-down. Upper levels are
        // stable under `tower_lock`; level 0 retries around lock-free inserts
        // landing on the predecessor.
        for level in (0..kn_ref.height).rev() {
            'level: loop {
                let mut pred: Shared<'g, KeyNode<N>> = Shared::null();
                let mut curr = self.level_link(pred, level).load(Ordering::Acquire, guard);
                loop {
                    if curr == kn {
                        let next = kn_ref.tower[level]
                            .load(Ordering::Acquire, guard)
                            .with_tag(0);
                        match self.level_link(pred, level).compare_exchange(
                            kn,
                            next,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => break 'level,
                            Err(_) => continue 'level,
                        }
                    }
                    let c = match unsafe { curr.as_ref() } {
                        Some(c) => c,
                        // Not linked at this level.
                        None => break 'level,
                    };
                    if c.key > key {
                        break 'level;
                    }
                    pred = curr;
                    curr = c.tower[level].load(Ordering::Acquire, guard);
                }
            }
        }
        unsafe { guard.defer_destroy(kn) };
    }

    /// Iterate over every version whose key lies in the inclusive range
    /// `[lo, hi]`, grouped by key in ascending key order (within one key,
    /// chain order: most recently inserted first).
    ///
    /// As with hash-bucket iteration, callers must still check visibility;
    /// unlike a hash bucket, every yielded version's key *does* match the
    /// predicate — there are no hash collisions to filter out.
    pub fn iter_range<'g>(&self, lo: Key, hi: Key, guard: &'g Guard) -> RangeIter<'g, N> {
        let start = if lo > hi {
            Shared::null()
        } else {
            self.find(lo, guard).succs[0]
        };
        RangeIter {
            slot: self.slot,
            hi,
            node: start,
            version: Shared::null(),
            guard,
        }
    }

    /// Iterate over every version carrying exactly `key` (degenerate range).
    #[inline]
    pub fn iter_key<'g>(&self, key: Key, guard: &'g Guard) -> RangeIter<'g, N> {
        self.iter_range(key, key, guard)
    }

    /// Iterate over every version in the index, in ascending key order.
    #[inline]
    pub fn iter_all<'g>(&self, guard: &'g Guard) -> RangeIter<'g, N> {
        self.iter_range(Key::MIN, Key::MAX, guard)
    }

    /// Number of key nodes currently linked at level 0 (dead-but-not-yet
    /// unlinked nodes included). Intended for tests and leak auditing.
    pub fn key_node_count(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut curr = self.head_tower[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            n += 1;
            curr = c.tower[0].load(Ordering::Acquire, &guard).with_tag(0);
        }
        n
    }

    /// Drain every chain, returning the version pointers without freeing
    /// them, and free all key nodes. Only meaningful when the caller has
    /// exclusive access (e.g. table teardown); the storage layer uses it to
    /// free all versions exactly once.
    pub fn drain_exclusive<'g>(&self, guard: &'g Guard) -> Vec<Shared<'g, N>> {
        let mut out = Vec::new();
        let mut curr = self.head_tower[0]
            .load(Ordering::Acquire, guard)
            .with_tag(0);
        for link in self.head_tower.iter() {
            link.store(Shared::null(), Ordering::Release);
        }
        while !curr.is_null() {
            let next = {
                let kn = unsafe { curr.deref() };
                let mut v = kn.head.load(Ordering::Acquire, guard).with_tag(0);
                while !v.is_null() {
                    out.push(v);
                    v = unsafe { v.deref() }
                        .next_ptr(self.slot)
                        .load(Ordering::Acquire, guard);
                }
                kn.tower[0].load(Ordering::Acquire, guard).with_tag(0)
            };
            unsafe { drop(curr.into_owned()) };
            curr = next;
        }
        out
    }
}

impl<N: ChainNode> Drop for OrderedIndex<N> {
    fn drop(&mut self) {
        // Key nodes are owned by the index; versions are owned by the storage
        // layer (which drains them before dropping the index, or frees them
        // through its own teardown path).
        let guard = epoch::pin();
        let mut curr = self.head_tower[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        while !curr.is_null() {
            let next = unsafe { curr.deref() }.tower[0]
                .load(Ordering::Acquire, &guard)
                .with_tag(0);
            unsafe { drop(curr.into_owned()) };
            curr = next;
        }
    }
}

impl<N: ChainNode> std::fmt::Debug for OrderedIndex<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedIndex")
            .field("slot", &self.slot)
            .field("key_nodes", &self.key_node_count())
            .finish()
    }
}

/// Iterator over the versions of an inclusive key range.
pub struct RangeIter<'g, N: ChainNode> {
    slot: usize,
    hi: Key,
    /// Next key node to visit (already >= lo), or null when exhausted.
    node: Shared<'g, KeyNode<N>>,
    /// Next version of the current key node's chain, or null.
    version: Shared<'g, N>,
    guard: &'g Guard,
}

impl<'g, N: ChainNode> Iterator for RangeIter<'g, N> {
    type Item = Shared<'g, N>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if !self.version.is_null() {
                let item = self.version;
                self.version = unsafe { item.deref() }
                    .next_ptr(self.slot)
                    .load(Ordering::Acquire, self.guard);
                return Some(item);
            }
            let kn = unsafe { self.node.as_ref() }?;
            if kn.key > self.hi {
                self.node = Shared::null();
                return None;
            }
            // A dead node's head is a tagged null; with_tag(0) makes it a
            // plain null and the node is skipped.
            self.version = kn.head.load(Ordering::Acquire, self.guard).with_tag(0);
            self.node = kn.tower[0].load(Ordering::Acquire, self.guard).with_tag(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    /// Single-slot test version with a drop counter for leak auditing.
    struct TestNode {
        key: u64,
        payload: u64,
        next: Atomic<TestNode>,
        counted: bool,
    }

    impl TestNode {
        fn new(key: u64, payload: u64) -> Owned<TestNode> {
            Owned::new(TestNode {
                key,
                payload,
                next: Atomic::null(),
                counted: false,
            })
        }

        fn counted(key: u64, payload: u64) -> Owned<TestNode> {
            Owned::new(TestNode {
                key,
                payload,
                next: Atomic::null(),
                counted: true,
            })
        }
    }

    impl Drop for TestNode {
        fn drop(&mut self) {
            if self.counted {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    impl ChainNode for TestNode {
        fn next_ptr(&self, _slot: usize) -> &Atomic<TestNode> {
            &self.next
        }
        fn key(&self, _slot: usize) -> Key {
            self.key
        }
    }

    fn keys_in(index: &OrderedIndex<TestNode>, lo: u64, hi: u64) -> Vec<u64> {
        let guard = epoch::pin();
        index
            .iter_range(lo, hi, &guard)
            .map(|n| unsafe { n.deref() }.key)
            .collect()
    }

    fn free_all(index: &OrderedIndex<TestNode>) {
        let guard = epoch::pin();
        for node in index.drain_exclusive(&guard) {
            unsafe { guard.defer_destroy(node) };
        }
    }

    #[test]
    fn range_iteration_is_sorted_and_inclusive() {
        let index = OrderedIndex::<TestNode>::new(0);
        let guard = epoch::pin();
        for k in [50u64, 10, 30, 20, 40] {
            index.insert(TestNode::new(k, k).into_shared(&guard), &guard);
        }
        drop(guard);
        assert_eq!(keys_in(&index, 10, 50), vec![10, 20, 30, 40, 50]);
        assert_eq!(keys_in(&index, 20, 40), vec![20, 30, 40]);
        assert_eq!(keys_in(&index, 21, 39), vec![30]);
        assert_eq!(keys_in(&index, 35, 35), Vec::<u64>::new());
        assert_eq!(keys_in(&index, 40, 20), Vec::<u64>::new());
        assert_eq!(index.key_node_count(), 5);
        free_all(&index);
    }

    #[test]
    fn duplicate_keys_share_one_key_node() {
        let index = OrderedIndex::<TestNode>::new(0);
        let guard = epoch::pin();
        for payload in 0..5u64 {
            index.insert(TestNode::new(7, payload).into_shared(&guard), &guard);
        }
        index.insert(TestNode::new(3, 99).into_shared(&guard), &guard);
        assert_eq!(index.key_node_count(), 2);
        let chained: Vec<u64> = index
            .iter_key(7, &guard)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        // Chain order is push order reversed (head insertion).
        assert_eq!(chained, vec![4, 3, 2, 1, 0]);
        drop(guard);
        free_all(&index);
    }

    #[test]
    fn unlink_retires_emptied_key_nodes() {
        let index = OrderedIndex::<TestNode>::new(0);
        let guard = epoch::pin();
        let mut nodes = Vec::new();
        for k in 0..10u64 {
            let shared = TestNode::new(k, k).into_shared(&guard);
            index.insert(shared, &guard);
            nodes.push(shared);
        }
        // Unlink the lone version of key 4: its key node must be retired.
        assert!(index.unlink(nodes[4], &guard));
        unsafe { guard.defer_destroy(nodes[4]) };
        assert_eq!(index.key_node_count(), 9);
        assert_eq!(keys_in(&index, 0, 9), vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
        // Unlinking it again finds nothing.
        assert!(!index.unlink(nodes[4], &guard));
        // Reinserting the key builds a fresh key node.
        index.insert(TestNode::new(4, 400).into_shared(&guard), &guard);
        assert_eq!(index.key_node_count(), 10);
        assert_eq!(keys_in(&index, 4, 4), vec![4]);
        drop(guard);
        free_all(&index);
    }

    #[test]
    fn unlink_keeps_key_node_while_chain_is_nonempty() {
        let index = OrderedIndex::<TestNode>::new(0);
        let guard = epoch::pin();
        let a = TestNode::new(5, 1).into_shared(&guard);
        let b = TestNode::new(5, 2).into_shared(&guard);
        index.insert(a, &guard);
        index.insert(b, &guard);
        assert!(index.unlink(a, &guard));
        unsafe { guard.defer_destroy(a) };
        assert_eq!(index.key_node_count(), 1);
        let left: Vec<u64> = index
            .iter_key(5, &guard)
            .map(|n| unsafe { n.deref() }.payload)
            .collect();
        assert_eq!(left, vec![2]);
        drop(guard);
        free_all(&index);
    }

    #[test]
    fn concurrent_inserts_are_not_lost() {
        let index = Arc::new(OrderedIndex::<TestNode>::new(0));
        let threads = 4;
        let per_thread = 500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Interleave key spaces so threads contend on adjacency.
                    let key = i * threads as u64 + t as u64;
                    let guard = epoch::pin();
                    index.insert(TestNode::new(key, key).into_shared(&guard), &guard);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = threads as u64 * per_thread;
        let seen = keys_in(&index, 0, u64::MAX);
        assert_eq!(seen.len() as u64, total);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        free_all(&index);
    }

    #[test]
    fn concurrent_churn_under_epoch_gc_leaks_nothing() {
        // Pushers keep inserting versions while a single GC thread (unlink is
        // GC-serialized by contract) unlinks and retires them. Every counted
        // node must be dropped exactly once by the end.
        let start_drops = DROPS.load(Ordering::Relaxed);
        let index = Arc::new(OrderedIndex::<TestNode>::new(0));
        let rounds = 300u64;
        let keys_per_round = 8u64;

        let pusher = {
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    let guard = epoch::pin();
                    for k in 0..keys_per_round {
                        index.insert(
                            TestNode::counted(k * 3, r * keys_per_round + k).into_shared(&guard),
                            &guard,
                        );
                    }
                }
            })
        };
        let collector = {
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                let mut unlinked = 0u64;
                while unlinked < rounds * keys_per_round {
                    let guard = epoch::pin();
                    let victims: Vec<_> = index.iter_all(&guard).take(16).collect();
                    for v in victims {
                        if index.unlink(v, &guard) {
                            unsafe { guard.defer_destroy(v) };
                            unlinked += 1;
                        }
                    }
                    drop(guard);
                    std::thread::yield_now();
                }
            })
        };
        pusher.join().unwrap();
        collector.join().unwrap();

        assert_eq!(keys_in(&index, 0, u64::MAX), Vec::<u64>::new());
        assert_eq!(index.key_node_count(), 0);
        // Flush the epoch garbage (the shim reclaims when no guard is live).
        for _ in 0..64 {
            drop(epoch::pin());
        }
        let dropped = DROPS.load(Ordering::Relaxed) - start_drops;
        assert_eq!(
            dropped as u64,
            rounds * keys_per_round,
            "every version freed"
        );
    }

    #[test]
    fn drain_exclusive_empties_the_index() {
        let index = OrderedIndex::<TestNode>::new(0);
        let guard = epoch::pin();
        for k in 0..10u64 {
            index.insert(TestNode::new(k % 4, k).into_shared(&guard), &guard);
        }
        let drained = index.drain_exclusive(&guard);
        assert_eq!(drained.len(), 10);
        assert_eq!(index.key_node_count(), 0);
        assert_eq!(index.iter_all(&guard).count(), 0);
        for node in drained {
            unsafe { guard.defer_destroy(node) };
        }
    }

    #[test]
    fn heights_are_deterministic_and_bounded() {
        for k in 0..10_000u64 {
            let h = OrderedIndex::<TestNode>::height_of(k);
            assert_eq!(h, OrderedIndex::<TestNode>::height_of(k));
            assert!((1..=MAX_HEIGHT).contains(&h));
        }
        // The geometric distribution should actually produce tall nodes.
        let tall = (0..10_000u64)
            .filter(|&k| OrderedIndex::<TestNode>::height_of(k) >= 4)
            .count();
        assert!(
            tall > 500,
            "expected ~1/8 of nodes at height >= 4, got {tall}"
        );
    }
}
