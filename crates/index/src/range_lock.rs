//! Range locks: §4.1.2 bucket locks generalized to ordered-index predicates.
//!
//! A serializable pessimistic transaction that range-scans an ordered index
//! cannot lock "the bucket it scanned" — a skip list has no buckets. Instead
//! it locks the scanned predicate `[lo, hi]` itself. As with bucket locks,
//! the lock does **not** block inserters; it only forces an inserter whose
//! key falls inside a locked range to take a *wait-for dependency* on every
//! holder, so the insert cannot precommit (and thus cannot become visible)
//! until the scanners have committed or aborted.
//!
//! Mirroring [`crate::BucketLockTable`]'s `LockCount` fast path, the table
//! keeps one atomic count of live range locks per index: the inserter's hot
//! path ("is anyone range-locking this index at all?") is a single load, and
//! only when it is non-zero does the inserter take the mutex to intersect
//! its key with the held ranges. Ranges are kept in a flat vector — scan
//! predicates per index are few (one entry per live serializable scanner),
//! so linear intersection beats an interval tree at this scale.

use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

use mmdb_common::ids::{Key, TxnId};

/// One held range lock.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RangeLock {
    lo: Key,
    hi: Key,
    txn: TxnId,
}

/// Range-lock table for one ordered index.
pub struct RangeLockTable {
    /// Number of range locks currently held on this index (the fast path).
    count: AtomicU32,
    /// The held ranges. Guarded by a plain mutex: entries exist only while a
    /// serializable scanner is live, and inserters consult the list only
    /// when `count` is non-zero.
    ranges: Mutex<Vec<RangeLock>>,
}

impl RangeLockTable {
    /// Create an empty range-lock table.
    pub fn new() -> Self {
        RangeLockTable {
            count: AtomicU32::new(0),
            ranges: Mutex::new(Vec::new()),
        }
    }

    /// Acquire a lock on the inclusive range `[lo, hi]` for `txn`. Multiple
    /// transactions can lock overlapping ranges; the same transaction may
    /// lock the same range repeatedly (re-scans) — duplicates are not added.
    ///
    /// Returns `true` if this call actually added an entry.
    pub fn lock(&self, lo: Key, hi: Key, txn: TxnId) -> bool {
        let entry = RangeLock { lo, hi, txn };
        let mut ranges = self.ranges.lock();
        if ranges.contains(&entry) {
            return false;
        }
        ranges.push(entry);
        self.count.fetch_add(1, Ordering::Release);
        true
    }

    /// Release `txn`'s lock on `[lo, hi]`. Idempotent: releasing a lock that
    /// is not held is a no-op.
    pub fn unlock(&self, lo: Key, hi: Key, txn: TxnId) {
        let entry = RangeLock { lo, hi, txn };
        let mut ranges = self.ranges.lock();
        if let Some(pos) = ranges.iter().position(|r| *r == entry) {
            ranges.swap_remove(pos);
            self.count.fetch_sub(1, Ordering::Release);
        }
    }

    /// Release every lock held by `txn` (commit/abort cleanup).
    pub fn unlock_all(&self, txn: TxnId) {
        let mut ranges = self.ranges.lock();
        let before = ranges.len();
        ranges.retain(|r| r.txn != txn);
        let removed = (before - ranges.len()) as u32;
        if removed > 0 {
            self.count.fetch_sub(removed, Ordering::Release);
        }
    }

    /// Fast check: does anyone hold a range lock on this index?
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.count.load(Ordering::Acquire) > 0
    }

    /// Number of range locks currently held.
    #[inline]
    pub fn lock_count(&self) -> u32 {
        self.count.load(Ordering::Acquire)
    }

    /// Snapshot of the transactions whose locked range contains `key`,
    /// deduplicated. An inserter uses this to take wait-for dependencies on
    /// every holder (§4.2.2 generalized); as with bucket locks the snapshot
    /// may be slightly stale, and the wait-for installation re-checks each
    /// holder's state.
    pub fn holders_of(&self, key: Key) -> Vec<TxnId> {
        let ranges = self.ranges.lock();
        let mut holders: Vec<TxnId> = ranges
            .iter()
            .filter(|r| r.lo <= key && key <= r.hi)
            .map(|r| r.txn)
            .collect();
        holders.sort_unstable_by_key(|t| t.0);
        holders.dedup();
        holders
    }
}

impl Default for RangeLockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RangeLockTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeLockTable")
            .field("held", &self.lock_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_roundtrip() {
        let table = RangeLockTable::new();
        assert!(!table.is_locked());
        assert!(table.lock(10, 20, TxnId(1)));
        assert!(table.is_locked());
        assert_eq!(table.lock_count(), 1);
        assert_eq!(table.holders_of(15), vec![TxnId(1)]);
        assert_eq!(table.holders_of(10), vec![TxnId(1)], "lo is inclusive");
        assert_eq!(table.holders_of(20), vec![TxnId(1)], "hi is inclusive");
        assert!(table.holders_of(9).is_empty());
        assert!(table.holders_of(21).is_empty());
        table.unlock(10, 20, TxnId(1));
        assert!(!table.is_locked());
    }

    #[test]
    fn overlapping_ranges_and_dedup() {
        let table = RangeLockTable::new();
        assert!(table.lock(0, 50, TxnId(1)));
        assert!(table.lock(40, 90, TxnId(2)));
        assert!(table.lock(45, 45, TxnId(1)));
        assert_eq!(table.lock_count(), 3);
        // Key 45 is covered by all three entries, but txn 1 appears once.
        assert_eq!(table.holders_of(45), vec![TxnId(1), TxnId(2)]);
        assert_eq!(table.holders_of(10), vec![TxnId(1)]);
        assert_eq!(table.holders_of(80), vec![TxnId(2)]);
    }

    #[test]
    fn relocking_same_range_is_idempotent() {
        let table = RangeLockTable::new();
        assert!(table.lock(5, 9, TxnId(7)));
        assert!(!table.lock(5, 9, TxnId(7)));
        assert_eq!(table.lock_count(), 1);
        table.unlock(5, 9, TxnId(7));
        assert_eq!(table.lock_count(), 0);
    }

    #[test]
    fn unlock_all_releases_every_range_of_a_txn() {
        let table = RangeLockTable::new();
        table.lock(0, 9, TxnId(1));
        table.lock(20, 29, TxnId(1));
        table.lock(5, 25, TxnId(2));
        table.unlock_all(TxnId(1));
        assert_eq!(table.lock_count(), 1);
        assert_eq!(table.holders_of(7), vec![TxnId(2)]);
        table.unlock_all(TxnId(2));
        assert!(!table.is_locked());
        // Releasing for a txn holding nothing is a no-op.
        table.unlock_all(TxnId(3));
        assert_eq!(table.lock_count(), 0);
    }

    #[test]
    fn unlocking_unheld_range_is_noop() {
        let table = RangeLockTable::new();
        table.unlock(1, 2, TxnId(9));
        assert_eq!(table.lock_count(), 0);
        table.lock(1, 2, TxnId(1));
        table.unlock(1, 2, TxnId(9));
        assert_eq!(table.lock_count(), 1);
    }

    #[test]
    fn concurrent_lock_unlock_is_consistent() {
        let table = Arc::new(RangeLockTable::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let lo = (t * 10 + i) % 64;
                    table.lock(lo, lo + 5, TxnId(t + 1));
                    assert!(table.lock_count() >= 1);
                    table.unlock(lo, lo + 5, TxnId(t + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.lock_count(), 0);
        assert!(table.holders_of(32).is_empty());
    }
}
