//! The single-version locking engine (1V) and its transactions.
//!
//! Records are updated in place; concurrency control is strict two-phase
//! locking over the partitioned per-hash-key lock tables embedded in each
//! index, with timeouts to break deadlocks (§5 of the paper). Because a lock
//! covers every record with the same hash key, equality scans are
//! automatically protected against phantoms, so Serializable costs no more
//! than Repeatable Read.
//!
//! Isolation levels:
//!
//! * **ReadCommitted** — shared locks are released right after each read
//!   (cursor stability); exclusive locks are held to commit.
//! * **RepeatableRead / Serializable** — shared locks are held to commit.
//! * **SnapshotIsolation** — a single-version engine has no snapshots to
//!   offer; it is treated as RepeatableRead (this limitation is exactly what
//!   motivates the multiversion schemes).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mmdb_common::clock::GlobalClock;
use mmdb_common::durability::{CheckpointPolicy, Durability};
use mmdb_common::engine::{Engine, EngineTxn};
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{IndexId, Key, TableId, Timestamp, TxnId};
use mmdb_common::isolation::IsolationLevel;
use mmdb_common::row::{KeyScratch, Row, TableSpec};
use mmdb_common::stats::EngineStats;

use mmdb_storage::catalog::Catalog;
use mmdb_storage::log::{encode_record, LogOp, LogRecord, NullLogger, RedoLogger};

use crate::lock::{LockGrant, LockMode};
use crate::table::SvTable;

/// Configuration of the single-version engine.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// How long a lock request waits before it is treated as a deadlock and
    /// the requesting transaction aborts.
    pub lock_timeout: Duration,
    /// Default commit durability ([`Durability::Async`]: commit never waits
    /// for log I/O, matching the paper's setup). Individual transactions
    /// override it via [`SvTransaction::set_durability`].
    pub durability: Durability,
    /// When checkpoints should be taken (consulted by whoever drives
    /// maintenance through `CheckpointStore::checkpoint_due`; the default is
    /// manual-only). [`SvEngine::checkpoint`] is an explicit entry point.
    pub checkpoint: CheckpointPolicy,
}

impl Default for SvConfig {
    fn default() -> Self {
        SvConfig {
            lock_timeout: Duration::from_millis(500),
            durability: Durability::Async,
            checkpoint: CheckpointPolicy::MANUAL,
        }
    }
}

impl SvConfig {
    /// Builder-style override of the lock timeout.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Builder-style override of the default commit durability.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style override of the checkpoint policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }
}

struct SvInner {
    /// Epoch-published append-only table registry — same lock-free
    /// publication as the multiversion store's catalog: per-operation
    /// lookups load the published slice without any `RwLock`.
    tables: Catalog<SvTable>,
    clock: GlobalClock,
    logger: Arc<dyn RedoLogger>,
    stats: EngineStats,
    config: SvConfig,
    next_txn: AtomicU64,
    /// When set, committing transactions skip the redo-log append (recovery
    /// replay only — replaying a tail into an engine attached to that same
    /// log must not re-append every record).
    log_suppressed: AtomicBool,
}

/// The single-version locking engine ("1V").
#[derive(Clone)]
pub struct SvEngine {
    inner: Arc<SvInner>,
}

impl SvEngine {
    /// Create an engine with a discarding logger.
    pub fn new(config: SvConfig) -> SvEngine {
        Self::with_logger(config, Arc::new(NullLogger::new()))
    }

    /// Create an engine writing redo records to `logger`.
    pub fn with_logger(config: SvConfig, logger: Arc<dyn RedoLogger>) -> SvEngine {
        SvEngine {
            inner: Arc::new(SvInner {
                tables: Catalog::new(),
                clock: GlobalClock::new(),
                logger,
                stats: EngineStats::new(),
                config,
                next_txn: AtomicU64::new(1),
                log_suppressed: AtomicBool::new(false),
            }),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &SvConfig {
        &self.inner.config
    }

    fn table(&self, id: TableId) -> Result<Arc<SvTable>> {
        self.inner
            .tables
            .get(id.0 as usize)
            .ok_or(MmdbError::TableNotFound(id))
    }

    /// Bulk-load rows outside any transaction (initial population).
    pub fn populate<I>(&self, table: TableId, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Row>,
    {
        let table = self.table(table)?;
        let mut n = 0;
        for row in rows {
            table.insert_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of rows in `table` (diagnostic).
    pub fn row_count(&self, table: TableId) -> Result<usize> {
        Ok(self.table(table)?.row_count())
    }

    /// Replay redo-log records into this (freshly created) engine.
    ///
    /// Mirrors the multiversion engine's `replay_log`:
    /// records are sorted by end timestamp — the commit order the paper
    /// derives durability from (§3.2) — and re-applied one transaction per
    /// record: a `Write` op upserts the row by primary key, a `Delete` op
    /// removes it. Tables must have been re-created (same IDs) first.
    ///
    /// Returns the number of log records applied.
    pub fn replay_log<I>(&self, records: I) -> Result<usize>
    where
        I: IntoIterator<Item = LogRecord>,
    {
        let mut records: Vec<_> = records.into_iter().collect();
        records.sort_by_key(|r| r.end_ts);
        let mut applied = 0;
        for record in records {
            let mut txn = self.begin(IsolationLevel::ReadCommitted);
            for op in record.ops {
                match op {
                    LogOp::Write { table, row } => {
                        let key = self.table(table)?.key_of(IndexId(0), &row)?;
                        if !txn.update(table, IndexId(0), key, row.clone())? {
                            txn.insert(table, row)?;
                        }
                    }
                    LogOp::Delete { table, key } => {
                        txn.delete(table, IndexId(0), key)?;
                    }
                }
            }
            txn.commit()?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Suppress (or re-enable) redo logging. Recovery replay wraps its
    /// transactions in a suppressed window; see
    /// [`SvEngine::recover_from_checkpoint`].
    pub fn set_log_suppressed(&self, suppressed: bool) {
        self.inner
            .log_suppressed
            .store(suppressed, Ordering::Relaxed);
    }

    /// Take a checkpoint into `store` and truncate the redo log below it.
    ///
    /// The engine must route its redo stream through `store`'s group-commit
    /// log ([`SvEngine::with_logger`] of `CheckpointStore::logger`).
    ///
    /// Unlike the multiversion engines, the single-version walk **blocks
    /// writers**: with one version per row the only consistent image is the
    /// current one, so the walk takes a shared lock on every primary bucket
    /// of every table (canonical order; lock timeouts break deadlocks with
    /// concurrent writers, surfacing as a retryable
    /// [`MmdbError::LockTimeout`]). This is the paper's single-version
    /// trade-off showing up in checkpointing, deliberately preserved as the
    /// 1V contrast. The ordering contract is *stronger* than MV's: the
    /// checkpoint LSN and the snapshot timestamp are both captured while
    /// every primary bucket is locked — writers are fully drained (a
    /// committer holds its exclusive locks across frame append), so the
    /// frames below the LSN are exactly the commits below the timestamp.
    pub fn checkpoint(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        // The walk needs a lock owner of its own.
        let me = TxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        let mut held: Vec<(TableId, usize)> = Vec::new();
        let result = self.checkpoint_walk(store, me, &mut held);
        self.release_held(me, &held);
        let installed = store.install_checkpoint(result?)?;
        store.truncate_log()?;
        Ok(installed)
    }

    /// Take a *delta* checkpoint into `store`: an image holding only what
    /// changed since the previous chain element, appended to the chain
    /// instead of rewriting every table. Requires an installed chain
    /// ([`SvEngine::checkpoint`] first).
    ///
    /// Where the base image must hold its locks for the whole table walk,
    /// the delta only needs them for an instant: with every primary bucket
    /// locked it captures the log high-water mark and a timestamp, then
    /// releases — the log prefix below that LSN is immutable, and the delta
    /// is computed *from the log* by collapsing the window's `Write` /
    /// `Delete` ops per primary key (latest end timestamp wins). Writers
    /// are blocked only for the capture, turning the 1V checkpoint stall
    /// from O(database) into O(lock count).
    pub fn checkpoint_delta(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        use std::collections::btree_map::Entry;

        let parent = store
            .last_checkpoint()
            .ok_or(MmdbError::CheckpointInvalid {
                reason: "no checkpoint installed to delta against",
            })?;
        let parent_ts = parent.read_ts;
        let me = TxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        let mut held: Vec<(TableId, usize)> = Vec::new();
        let barrier = self.acquire_all_primary(me, &mut held).map(|()| {
            (
                store.logger().appended_lsn(),
                self.inner.clock.next_timestamp(),
            )
        });
        self.release_held(me, &held);
        let (ckpt_lsn, read_ts) = barrier?;

        // Writers have resumed; everything below `ckpt_lsn` is immutable.
        // Flush so the prefix is readable from the file, then collapse the
        // window `(parent_ts, read_ts]` newest-wins per primary key. Frames
        // below the *parent's* LSN were captured under the same barrier, so
        // `end_ts > parent_ts` alone selects the window exactly.
        store.logger().flush()?;
        let limit = ckpt_lsn.0.saturating_sub(store.logger().base_lsn().0);
        let mut latest: std::collections::BTreeMap<(TableId, Key), (Timestamp, Option<Row>)> =
            std::collections::BTreeMap::new();
        if limit > 0 {
            let prefix = mmdb_storage::log::read_log_prefix(store.log_path(), limit)?;
            for record in prefix.records {
                if record.end_ts <= parent_ts {
                    continue;
                }
                for op in record.ops {
                    let (table, key, value) = match op {
                        LogOp::Write { table, row } => {
                            let key = self.table(table)?.key_of(IndexId(0), &row)?;
                            (table, key, Some(row))
                        }
                        LogOp::Delete { table, key } => (table, key, None),
                    };
                    match latest.entry((table, key)) {
                        Entry::Vacant(slot) => {
                            slot.insert((record.end_ts, value));
                        }
                        Entry::Occupied(mut slot) => {
                            if record.end_ts >= slot.get().0 {
                                slot.insert((record.end_ts, value));
                            }
                        }
                    }
                }
            }
        }
        let mut writer = store.begin_delta(ckpt_lsn, read_ts)?;
        for ((table, key), (_, value)) in latest {
            match value {
                Some(row) => writer.write_row(table, &row)?,
                None => writer.write_delete(table, key)?,
            }
        }
        let installed = store.install_delta(writer.finish()?)?;
        store.truncate_log()?;
        Ok(installed)
    }

    /// Take whichever checkpoint `policy` calls for next: a delta while the
    /// chain is below `policy.max_chain` files, a full base image otherwise
    /// (the first checkpoint, deltas disabled, or a compaction once the
    /// chain is full).
    pub fn checkpoint_auto(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
        policy: &CheckpointPolicy,
    ) -> Result<mmdb_storage::checkpoint::CheckpointRef> {
        if store.delta_due(policy) {
            self.checkpoint_delta(store)
        } else {
            self.checkpoint(store)
        }
    }

    /// Shared-lock every primary bucket of every table in canonical order;
    /// every lock taken is pushed onto `held` so the caller releases them
    /// on every path (success, lock timeout, I/O error).
    fn acquire_all_primary(&self, me: TxnId, held: &mut Vec<(TableId, usize)>) -> Result<()> {
        for idx in 0..self.inner.tables.len() {
            let table_id = TableId(idx as u32);
            let table = self.table(table_id)?;
            let locks = table.lock_table(IndexId(0))?;
            for bucket in 0..table.bucket_count(IndexId(0))? {
                match locks.lock_for(bucket).acquire(
                    me,
                    LockMode::Shared,
                    self.inner.config.lock_timeout,
                ) {
                    Some(_) => held.push((table_id, bucket)),
                    None => {
                        EngineStats::bump(&self.inner.stats.deadlock_aborts);
                        return Err(MmdbError::LockTimeout { table: table_id });
                    }
                }
            }
        }
        Ok(())
    }

    /// Release the locks `acquire_all_primary` recorded.
    fn release_held(&self, me: TxnId, held: &[(TableId, usize)]) {
        for &(table_id, bucket) in held {
            if let Ok(table) = self.table(table_id) {
                if let Ok(locks) = table.lock_table(IndexId(0)) {
                    locks.lock_for(bucket).release(me);
                }
            }
        }
    }

    /// Lock-acquire + walk phase of [`SvEngine::checkpoint`].
    fn checkpoint_walk(
        &self,
        store: &mmdb_storage::checkpoint::CheckpointStore,
        me: TxnId,
        held: &mut Vec<(TableId, usize)>,
    ) -> Result<mmdb_storage::checkpoint::FinishedCheckpoint> {
        self.acquire_all_primary(me, held)?;
        // All writers are drained (strict 2PL: anyone mid-commit still held
        // exclusive primary locks across its log append); the LSN and
        // timestamp captured now bound each other exactly.
        let ckpt_lsn = store.logger().appended_lsn();
        let read_ts = self.inner.clock.next_timestamp();
        let mut writer = store.begin_checkpoint(ckpt_lsn, read_ts)?;
        for idx in 0..self.inner.tables.len() {
            let table_id = TableId(idx as u32);
            let table = self.table(table_id)?;
            let mut write_err: Option<MmdbError> = None;
            table.visit_all(&mut |row| {
                if write_err.is_none() {
                    if let Err(e) = writer.write_row(table_id, row) {
                        write_err = Some(e);
                    }
                }
            });
            if let Some(e) = write_err {
                return Err(e);
            }
        }
        writer.finish()
    }

    /// Recover this (freshly created, tables re-created) engine from a
    /// [`RecoveryPlan`](mmdb_storage::checkpoint::RecoveryPlan): bulk-load
    /// the checkpoint chain (base image plus deltas, if any), then replay
    /// the log tail above the last chain element's LSN, skipping records
    /// already inside the chain (`end_ts <= read_ts`).
    ///
    /// The load is partitioned across a worker pool sharded by table
    /// (`MMDB_RECOVERY_WORKERS`, defaulting to the machine's parallelism
    /// capped at 8); chain rows, chain tombstones and tail ops collapse
    /// into one `populate` per table, identical for any worker count and
    /// bypassing the redo logger entirely.
    ///
    /// The report's `valid_bytes` is the *physical* clean prefix of the
    /// live log segment — what `CheckpointStore::open` takes to resume
    /// appending.
    pub fn recover_from_checkpoint(
        &self,
        plan: &mmdb_storage::checkpoint::RecoveryPlan,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        self.recover_from_checkpoint_with(plan, mmdb_storage::recovery::default_workers())
    }

    /// [`SvEngine::recover_from_checkpoint`] with an explicit worker count
    /// (1 degenerates to the serial load).
    pub fn recover_from_checkpoint_with(
        &self,
        plan: &mmdb_storage::checkpoint::RecoveryPlan,
        workers: usize,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        let key_of = |table: TableId, row: &Row| self.table(table)?.key_of(IndexId(0), row);
        let apply = |table: TableId, rows: Vec<Row>| self.populate(table, rows).map(|_| ());
        let image = mmdb_storage::recovery::recover_partitioned(plan, workers, &key_of, &apply)?;
        // Recovered timestamps came from the previous process's clock; the
        // delta-checkpoint window comparisons need every future draw to
        // postdate them.
        self.inner.clock.advance_past(image.max_end_ts);
        Ok(mmdb_storage::log::RecoveryReport {
            records_applied: image.tail_records,
            valid_bytes: image.valid_bytes,
            torn_bytes: image.torn_bytes,
        })
    }

    /// Recover from the framed bytes of a redo log, tolerating a torn tail
    /// left by a crash mid-append (see [`SvEngine::replay_log`]).
    pub fn recover_bytes(&self, bytes: &[u8]) -> Result<mmdb_storage::log::RecoveryReport> {
        let outcome = mmdb_storage::log::read_log_bytes(bytes)?;
        let records_applied = self.replay_log(outcome.records)?;
        Ok(mmdb_storage::log::RecoveryReport {
            records_applied,
            valid_bytes: outcome.valid_bytes,
            torn_bytes: outcome.torn_bytes,
        })
    }

    /// Recover from the redo-log file at `path` (see
    /// [`SvEngine::recover_bytes`]).
    pub fn recover_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<mmdb_storage::log::RecoveryReport> {
        let bytes = std::fs::read(path).map_err(|e| MmdbError::LogIo(e.to_string()))?;
        self.recover_bytes(&bytes)
    }
}

impl Engine for SvEngine {
    type Txn = SvTransaction;

    fn create_table(&self, spec: TableSpec) -> Result<TableId> {
        let idx = self
            .inner
            .tables
            .push_with(|idx| SvTable::new(TableId(idx as u32), spec))?;
        Ok(TableId(idx as u32))
    }

    fn begin(&self, isolation: IsolationLevel) -> SvTransaction {
        SvTransaction {
            inner: Arc::clone(&self.inner),
            id: TxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed)),
            isolation,
            held_locks: Vec::new(),
            undo: Vec::new(),
            log_ops: Vec::new(),
            keys: KeyScratch::new(),
            finished: false,
            must_abort: false,
            durability: self.inner.config.durability,
        }
    }

    fn stats(&self) -> &EngineStats {
        &self.inner.stats
    }

    fn label(&self) -> &'static str {
        "1V"
    }
}

impl std::fmt::Debug for SvEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvEngine")
            .field("tables", &self.inner.tables.len())
            .finish()
    }
}

/// An undo-log entry for in-place changes.
#[derive(Debug, Clone)]
enum UndoOp {
    /// Undo an insert by deleting the row again.
    Insert { table: TableId, pk: Key },
    /// Undo an update by restoring the old image.
    Update { table: TableId, pk: Key, old: Row },
    /// Undo a delete by re-inserting the old image.
    Delete { table: TableId, old: Row },
}

/// A transaction against the single-version engine.
pub struct SvTransaction {
    inner: Arc<SvInner>,
    id: TxnId,
    isolation: IsolationLevel,
    /// Locks held until commit/abort: (table, index, bucket).
    held_locks: Vec<(TableId, IndexId, usize)>,
    undo: Vec<UndoOp>,
    log_ops: Vec<LogOp>,
    /// Reusable per-index key extraction buffer (cleared, never freed).
    keys: KeyScratch,
    finished: bool,
    must_abort: bool,
    /// When `commit()` may return relative to log durability.
    durability: Durability,
}

impl SvTransaction {
    /// Resolve a table: a lock-free load of the published catalog slice (no
    /// `RwLock` on the per-operation lookup path; the `Arc` clone remains —
    /// unlike the MV engines, 1V does not thread epoch guards through its
    /// operations, which is part of the documented 1V contrast).
    fn table(&self, id: TableId) -> Result<Arc<SvTable>> {
        self.inner
            .tables
            .get(id.0 as usize)
            .ok_or(MmdbError::TableNotFound(id))
    }

    fn holds_lock(&self, table: TableId, index: IndexId, bucket: usize) -> bool {
        self.held_locks
            .iter()
            .any(|&(t, i, b)| t == table && i == index && b == bucket)
    }

    /// Acquire a lock, remembering it for release at end of transaction.
    /// Returns the grant so read-committed readers can decide to release
    /// immediately.
    fn lock(
        &mut self,
        table: &SvTable,
        index: IndexId,
        bucket: usize,
        mode: LockMode,
    ) -> Result<LockGrant> {
        let grant = table.lock_table(index)?.lock_for(bucket).acquire(
            self.id,
            mode,
            self.inner.config.lock_timeout,
        );
        match grant {
            Some(grant) => {
                if grant == LockGrant::Acquired && !self.holds_lock(table.id(), index, bucket) {
                    self.held_locks.push((table.id(), index, bucket));
                }
                Ok(grant)
            }
            None => {
                EngineStats::bump(&self.inner.stats.deadlock_aborts);
                self.must_abort = true;
                Err(MmdbError::LockTimeout { table: table.id() })
            }
        }
    }

    /// Drop a lock immediately (cursor stability for read-committed reads).
    fn unlock_now(&mut self, table: &SvTable, index: IndexId, bucket: usize) -> Result<()> {
        table.lock_table(index)?.lock_for(bucket).release(self.id);
        if let Some(pos) = self
            .held_locks
            .iter()
            .position(|&(t, i, b)| t == table.id() && i == index && b == bucket)
        {
            self.held_locks.swap_remove(pos);
        }
        Ok(())
    }

    /// Acquire exclusive locks on every index bucket `row` maps to (writers
    /// must block readers on every access path to prevent dirty reads).
    fn lock_row_exclusive(&mut self, table: &SvTable, row: &[u8]) -> Result<()> {
        let mut keys = std::mem::take(&mut self.keys);
        let result = (|| {
            table.keys_into(row, &mut keys)?;
            // Canonical order reduces (but cannot eliminate) deadlocks;
            // timeouts break the rest.
            let mut targets: Vec<(IndexId, usize)> = Vec::with_capacity(keys.keys().len());
            for (slot, key) in keys.keys().iter().enumerate() {
                let index = IndexId(slot as u32);
                targets.push((index, table.bucket_of_key(index, *key)?));
            }
            targets.sort_unstable_by_key(|&(i, b)| (i.0, b));
            for (index, bucket) in targets {
                self.lock(table, index, bucket, LockMode::Exclusive)?;
            }
            Ok(())
        })();
        keys.clear();
        self.keys = keys;
        result
    }

    fn release_all_locks(&mut self) {
        let held = std::mem::take(&mut self.held_locks);
        for (table_id, index, bucket) in held {
            if let Ok(table) = self.table(table_id) {
                if let Ok(locks) = table.lock_table(index) {
                    locks.lock_for(bucket).release(self.id);
                }
            }
        }
    }

    fn rollback(&mut self) {
        // Undo in reverse order.
        let undo = std::mem::take(&mut self.undo);
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Insert { table, pk } => {
                    if let Ok(t) = self.table(table) {
                        let _ = t.delete_row(pk);
                    }
                }
                UndoOp::Update { table, pk, old } => {
                    if let Ok(t) = self.table(table) {
                        let _ = t.update_row(pk, old);
                    }
                }
                UndoOp::Delete { table, old } => {
                    if let Ok(t) = self.table(table) {
                        let _ = t.insert_row(old);
                    }
                }
            }
        }
    }

    fn finish(&mut self, committed: bool) {
        if self.finished {
            return;
        }
        if committed {
            EngineStats::bump(&self.inner.stats.commits);
        } else {
            self.rollback();
            EngineStats::bump(&self.inner.stats.aborts);
        }
        self.release_all_locks();
        self.finished = true;
    }

    fn ensure_open(&self) -> Result<()> {
        if self.finished {
            return Err(MmdbError::TransactionClosed);
        }
        Ok(())
    }

    /// Shared-lock behaviour for reads at this isolation level: `None` means
    /// "no lock at all" (never used — even read committed takes short locks),
    /// `Some(true)` means keep until commit, `Some(false)` means release
    /// right after the read.
    fn hold_read_locks(&self) -> bool {
        !matches!(self.isolation, IsolationLevel::ReadCommitted)
    }

    /// Shared core of every read/scan: lock the access path, visit the
    /// matching rows in place (no `Vec<Row>` materialization), release the
    /// lock immediately under cursor stability.
    fn scan_key_core(
        &mut self,
        table_id: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.ensure_open()?;
        let table = self.table(table_id)?;
        let bucket = table.bucket_of_key(index, key)?;
        let grant = self.lock(&table, index, bucket, LockMode::Shared)?;
        let visited = table.visit_lookup(index, key, visit)?;
        if !self.hold_read_locks() && grant == LockGrant::Acquired {
            // Cursor stability: the lock only had to be held for the duration
            // of the read itself.
            self.unlock_now(&table, index, bucket)?;
        }
        Ok(visited)
    }

    /// Shared core of every range scan: shared-lock *every* bucket of the
    /// scanned ordered index (ascending, matching the canonical order
    /// writers use), visit the matching rows in ascending key order, release
    /// the locks immediately under cursor stability.
    ///
    /// A range predicate can match keys in any bucket, and writers acquire
    /// an exclusive lock on the scanned index's bucket for every row they
    /// touch — so holding shared locks on all of its buckets keeps the whole
    /// predicate stable until commit, which is 1V's phantom protection for
    /// ranges (ordered indexes declare a single physical bucket, so this is
    /// one lock in practice; the paper's point that single-version locking
    /// pays for serializability with lost concurrency shows up here as
    /// "range scans lock the entire index").
    fn scan_range_core(
        &mut self,
        table_id: TableId,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.ensure_open()?;
        let table = self.table(table_id)?;
        if !table.is_ordered(index)? {
            return Err(MmdbError::IndexNotOrdered(table_id, index));
        }
        let buckets = table.bucket_count(index)?;
        let mut grants = Vec::with_capacity(buckets);
        for bucket in 0..buckets {
            grants.push(self.lock(&table, index, bucket, LockMode::Shared)?);
        }
        let visited = table.visit_range(index, lo, hi, visit)?;
        if !self.hold_read_locks() {
            for (bucket, grant) in grants.into_iter().enumerate() {
                if grant == LockGrant::Acquired {
                    self.unlock_now(&table, index, bucket)?;
                }
            }
        }
        Ok(visited)
    }
}

impl EngineTxn for SvTransaction {
    fn id(&self) -> TxnId {
        self.id
    }

    fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
    }

    fn insert(&mut self, table_id: TableId, row: Row) -> Result<()> {
        self.ensure_open()?;
        let table = self.table(table_id)?;
        self.lock_row_exclusive(&table, &row)?;
        let mut keys = std::mem::take(&mut self.keys);
        let result = (|| {
            table.keys_into(&row, &mut keys)?;
            // Uniqueness under the exclusive locks.
            for (slot, key) in keys.keys().iter().enumerate() {
                let index = IndexId(slot as u32);
                if table.is_unique(index)? && !table.lookup(index, *key)?.is_empty() {
                    return Err(MmdbError::DuplicateKey {
                        table: table_id,
                        index,
                    });
                }
            }
            table.insert_row(row.clone())?;
            EngineStats::bump(&self.inner.stats.versions_created);
            self.undo.push(UndoOp::Insert {
                table: table_id,
                pk: keys.keys()[0],
            });
            self.log_ops.push(LogOp::Write {
                table: table_id,
                row,
            });
            Ok(())
        })();
        keys.clear();
        self.keys = keys;
        result
    }

    fn read(&mut self, table: TableId, index: IndexId, key: Key) -> Result<Option<Row>> {
        let mut out = None;
        self.scan_key_core(table, index, key, &mut |row| {
            if out.is_none() {
                out = Some(row.clone());
            }
        })?;
        Ok(out)
    }

    fn scan_key(&mut self, table_id: TableId, index: IndexId, key: Key) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.scan_key_core(table_id, index, key, &mut |row| out.push(row.clone()))?;
        Ok(out)
    }

    fn read_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<bool> {
        let mut seen = false;
        self.scan_key_core(table, index, key, &mut |row| {
            if !seen {
                seen = true;
                visit(row);
            }
        })?;
        Ok(seen)
    }

    fn scan_key_with(
        &mut self,
        table: TableId,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.scan_key_core(table, index, key, visit)
    }

    fn scan_range_with(
        &mut self,
        table: TableId,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        self.scan_range_core(table, index, lo, hi, visit)
    }

    fn update(
        &mut self,
        table_id: TableId,
        index: IndexId,
        key: Key,
        new_row: Row,
    ) -> Result<bool> {
        self.ensure_open()?;
        let table = self.table(table_id)?;
        // Lock the access path, find the target, then lock the row across all
        // of its indexes (old and new keys) before modifying anything.
        let bucket = table.bucket_of_key(index, key)?;
        self.lock(&table, index, bucket, LockMode::Exclusive)?;
        let Some(target) = table.lookup(index, key)?.into_iter().next() else {
            return Ok(false);
        };
        self.lock_row_exclusive(&table, &target)?;
        self.lock_row_exclusive(&table, &new_row)?;
        let pk = table.key_of(IndexId(0), &target)?;
        let new_pk = table.key_of(IndexId(0), &new_row)?;
        if new_pk != pk {
            // Updating the primary key is modelled as delete + insert.
            let old = table
                .delete_row(pk)?
                .ok_or(MmdbError::Internal("locked row vanished"))?;
            self.undo.push(UndoOp::Delete {
                table: table_id,
                old,
            });
            table.insert_row(new_row.clone())?;
            self.undo.push(UndoOp::Insert {
                table: table_id,
                pk: new_pk,
            });
        } else {
            let old = table
                .update_row(pk, new_row.clone())?
                .ok_or(MmdbError::Internal("locked row vanished"))?;
            self.undo.push(UndoOp::Update {
                table: table_id,
                pk,
                old,
            });
        }
        EngineStats::bump(&self.inner.stats.versions_created);
        self.log_ops.push(LogOp::Write {
            table: table_id,
            row: new_row,
        });
        Ok(true)
    }

    fn delete(&mut self, table_id: TableId, index: IndexId, key: Key) -> Result<bool> {
        self.ensure_open()?;
        let table = self.table(table_id)?;
        let bucket = table.bucket_of_key(index, key)?;
        self.lock(&table, index, bucket, LockMode::Exclusive)?;
        let Some(target) = table.lookup(index, key)?.into_iter().next() else {
            return Ok(false);
        };
        self.lock_row_exclusive(&table, &target)?;
        let pk = table.key_of(IndexId(0), &target)?;
        let old = table
            .delete_row(pk)?
            .ok_or(MmdbError::Internal("locked row vanished"))?;
        self.undo.push(UndoOp::Delete {
            table: table_id,
            old,
        });
        self.log_ops.push(LogOp::Delete {
            table: table_id,
            key: pk,
        });
        Ok(true)
    }

    fn commit(mut self) -> Result<Timestamp> {
        if self.finished {
            return Err(MmdbError::TransactionClosed);
        }
        if self.must_abort {
            self.finish(false);
            return Err(MmdbError::Aborted);
        }
        let ts = self.inner.clock.next_timestamp();
        if !self.log_ops.is_empty() && !self.inner.log_suppressed.load(Ordering::Relaxed) {
            let record = LogRecord {
                end_ts: ts,
                ops: std::mem::take(&mut self.log_ops),
            };
            EngineStats::bump(&self.inner.stats.log_records);
            EngineStats::add(&self.inner.stats.log_bytes, record.byte_size());
            match self.durability {
                Durability::Async => self.inner.logger.append(record),
                Durability::Sync => {
                    // Hand the logger the encoded frame so batching loggers
                    // issue a real ticket, then wait for the flush covering
                    // it. On a sticky log I/O error the commit rolls back in
                    // memory — matching the durable log, which is only
                    // trusted up to the first error.
                    let ticket = self
                        .inner
                        .logger
                        .append_frame_ticketed(&encode_record(&record));
                    if let Err(err) = self.inner.logger.wait_durable(ticket) {
                        self.finish(false);
                        return Err(err);
                    }
                }
            }
        }
        self.finish(true);
        Ok(ts)
    }

    fn abort(mut self) {
        self.finish(false);
    }
}

impl Drop for SvTransaction {
    fn drop(&mut self) {
        if !self.finished {
            self.finish(false);
        }
    }
}

impl std::fmt::Debug for SvTransaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvTransaction")
            .field("id", &self.id)
            .field("isolation", &self.isolation)
            .field("locks", &self.held_locks.len())
            .field("undo", &self.undo.len())
            .finish()
    }
}
