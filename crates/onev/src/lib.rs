//! # mmdb-onev
//!
//! The single-version locking engine ("1V") the paper uses as its baseline:
//! records updated in place, strict two-phase locking over a partitioned
//! per-hash-key lock table embedded in every index (no central lock manager),
//! and timeout-based deadlock handling.
//!
//! The engine implements the same [`Engine`](mmdb_common::engine::Engine) /
//! [`EngineTxn`](mmdb_common::engine::EngineTxn) traits as the multiversion
//! engine, so the workload generators and the experiment harness drive both
//! through identical code.
//!
//! ```
//! use mmdb_common::engine::{Engine, EngineTxn};
//! use mmdb_common::row::rowbuf;
//! use mmdb_common::{IndexId, IsolationLevel, TableSpec};
//! use mmdb_onev::{SvConfig, SvEngine};
//!
//! let engine = SvEngine::new(SvConfig::default());
//! let table = engine.create_table(TableSpec::keyed_u64("accounts", 64)).unwrap();
//! engine.populate(table, (0..10u64).map(|k| rowbuf::keyed_row(k, 16, 1))).unwrap();
//!
//! let mut txn = engine.begin(IsolationLevel::Serializable);
//! assert!(txn.update(table, IndexId(0), 3, rowbuf::keyed_row(3, 16, 9)).unwrap());
//! txn.commit().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod lock;
pub mod table;

pub use engine::{SvConfig, SvEngine, SvTransaction};
pub use lock::{KeyLock, LockGrant, LockMode, LockTable};
pub use table::SvTable;

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::engine::{Engine, EngineTxn};
    use mmdb_common::error::MmdbError;
    use mmdb_common::ids::IndexId;
    use mmdb_common::isolation::IsolationLevel;
    use mmdb_common::row::{rowbuf, TableSpec};
    use std::time::Duration;

    fn engine() -> (SvEngine, mmdb_common::ids::TableId) {
        let engine =
            SvEngine::new(SvConfig::default().with_lock_timeout(Duration::from_millis(100)));
        let t = engine.create_table(TableSpec::keyed_u64("t", 256)).unwrap();
        engine
            .populate(t, (0..100u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        (engine, t)
    }

    #[test]
    fn crud_roundtrip() {
        let (engine, t) = engine();
        let mut txn = engine.begin(IsolationLevel::Serializable);
        assert_eq!(
            txn.read(t, IndexId(0), 5)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(1)
        );
        assert!(txn
            .update(t, IndexId(0), 5, rowbuf::keyed_row(5, 16, 10))
            .unwrap());
        assert_eq!(
            txn.read(t, IndexId(0), 5)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(10)
        );
        txn.insert(t, rowbuf::keyed_row(1000, 16, 3)).unwrap();
        assert!(txn.delete(t, IndexId(0), 7).unwrap());
        txn.commit().unwrap();

        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 5)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(10)
        );
        assert_eq!(
            check
                .read(t, IndexId(0), 1000)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(3)
        );
        assert!(check.read(t, IndexId(0), 7).unwrap().is_none());
        check.commit().unwrap();
        assert_eq!(engine.row_count(t).unwrap(), 100);
    }

    #[test]
    fn abort_rolls_back_in_place_changes() {
        let (engine, t) = engine();
        let mut txn = engine.begin(IsolationLevel::Serializable);
        txn.update(t, IndexId(0), 5, rowbuf::keyed_row(5, 16, 10))
            .unwrap();
        txn.insert(t, rowbuf::keyed_row(1000, 16, 3)).unwrap();
        txn.delete(t, IndexId(0), 7).unwrap();
        txn.abort();

        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 5)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(1)
        );
        assert!(check.read(t, IndexId(0), 1000).unwrap().is_none());
        assert_eq!(
            check
                .read(t, IndexId(0), 7)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(1)
        );
        check.commit().unwrap();
        assert_eq!(engine.row_count(t).unwrap(), 100);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (engine, t) = engine();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        assert!(matches!(
            txn.insert(t, rowbuf::keyed_row(5, 16, 3)).unwrap_err(),
            MmdbError::DuplicateKey { .. }
        ));
        txn.abort();
    }

    #[test]
    fn writers_block_writers_until_commit() {
        let (engine, t) = engine();
        let mut t1 = engine.begin(IsolationLevel::ReadCommitted);
        assert!(t1
            .update(t, IndexId(0), 10, rowbuf::keyed_row(10, 16, 2))
            .unwrap());

        // A concurrent writer on the same key times out (deadlock-by-timeout).
        let engine2 = engine.clone();
        let blocked = std::thread::spawn(move || {
            let mut t2 = engine2.begin(IsolationLevel::ReadCommitted);
            let r = t2.update(t, IndexId(0), 10, rowbuf::keyed_row(10, 16, 3));
            t2.abort();
            r
        });
        let err = blocked.join().unwrap().unwrap_err();
        assert!(matches!(err, MmdbError::LockTimeout { .. }));
        t1.commit().unwrap();

        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 10)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(2)
        );
        check.commit().unwrap();
    }

    #[test]
    fn repeatable_read_holds_locks_and_blocks_writers() {
        let (engine, t) = engine();
        let mut reader = engine.begin(IsolationLevel::RepeatableRead);
        assert!(reader.read(t, IndexId(0), 20).unwrap().is_some());

        // Writer cannot acquire the exclusive lock while the reader holds S.
        let engine2 = engine.clone();
        let writer = std::thread::spawn(move || {
            let mut w = engine2.begin(IsolationLevel::ReadCommitted);
            let r = w.update(t, IndexId(0), 20, rowbuf::keyed_row(20, 16, 9));
            match r {
                Ok(_) => w.commit().map(|_| ()),
                Err(e) => {
                    w.abort();
                    Err(e)
                }
            }
        });
        let result = writer.join().unwrap();
        assert!(
            matches!(result, Err(MmdbError::LockTimeout { .. })),
            "{result:?}"
        );
        reader.commit().unwrap();
    }

    #[test]
    fn read_committed_releases_read_locks_immediately() {
        let (engine, t) = engine();
        let mut reader = engine.begin(IsolationLevel::ReadCommitted);
        assert!(reader.read(t, IndexId(0), 20).unwrap().is_some());

        // Because the reader released its lock, a writer can proceed even
        // though the reader is still open.
        let mut writer = engine.begin(IsolationLevel::ReadCommitted);
        assert!(writer
            .update(t, IndexId(0), 20, rowbuf::keyed_row(20, 16, 9))
            .unwrap());
        writer.commit().unwrap();

        // The open read-committed reader now sees the new value.
        assert_eq!(
            reader
                .read(t, IndexId(0), 20)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(9)
        );
        reader.commit().unwrap();
    }

    #[test]
    fn serializable_prevents_phantoms_via_key_locks() {
        let (engine, t) = engine();
        let mut scanner = engine.begin(IsolationLevel::Serializable);
        // Scan a key that does not exist: the hash-key lock is now held.
        assert!(scanner.read(t, IndexId(0), 5000).unwrap().is_none());

        // An insert of that key must wait (and here: time out).
        let engine2 = engine.clone();
        let inserter = std::thread::spawn(move || {
            let mut ins = engine2.begin(IsolationLevel::ReadCommitted);
            let r = ins.insert(t, rowbuf::keyed_row(5000, 16, 1));
            ins.abort();
            r
        });
        let result = inserter.join().unwrap();
        assert!(
            matches!(result, Err(MmdbError::LockTimeout { .. })),
            "{result:?}"
        );

        // Repeating the scan still finds nothing: no phantom.
        assert!(scanner.read(t, IndexId(0), 5000).unwrap().is_none());
        scanner.commit().unwrap();
    }

    #[test]
    fn lost_update_prevented_by_exclusive_locks() {
        let (engine, t) = engine();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let engine = engine.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut done = false;
                while !done {
                    let mut txn = engine.begin(IsolationLevel::RepeatableRead);
                    let outcome: Result<(), MmdbError> = (|| {
                        let row = txn.read(t, IndexId(0), 42)?.expect("row exists");
                        let next = rowbuf::keyed_row(42, 16, rowbuf::fill_of(&row) + 1);
                        txn.update(t, IndexId(0), 42, next)?;
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {
                            if txn.commit().is_ok() {
                                done = true;
                            }
                        }
                        Err(_) => txn.abort(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 42)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(3)
        );
        check.commit().unwrap();
    }

    fn ordered_engine() -> (SvEngine, mmdb_common::ids::TableId) {
        let engine =
            SvEngine::new(SvConfig::default().with_lock_timeout(Duration::from_millis(100)));
        let t = engine
            .create_table(
                TableSpec::keyed_u64("t", 256)
                    .with_index(mmdb_common::row::IndexSpec::ordered_u64("by_key", 0)),
            )
            .unwrap();
        engine
            .populate(t, (0..100u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        (engine, t)
    }

    #[test]
    fn range_scan_returns_keys_in_ascending_order() {
        let (engine, t) = ordered_engine();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        let rows = txn.scan_range(t, IndexId(1), 10, 20).unwrap();
        let keys: Vec<u64> = rows.iter().map(|r| rowbuf::key_of(r)).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<u64>>());
        txn.commit().unwrap();
    }

    #[test]
    fn range_scan_on_hash_index_is_rejected() {
        let (engine, t) = ordered_engine();
        let mut txn = engine.begin(IsolationLevel::ReadCommitted);
        assert!(matches!(
            txn.scan_range(t, IndexId(0), 10, 20).unwrap_err(),
            MmdbError::IndexNotOrdered(..)
        ));
        txn.abort();
    }

    #[test]
    fn serializable_range_scan_blocks_inserts_into_the_range() {
        let (engine, t) = ordered_engine();
        let mut scanner = engine.begin(IsolationLevel::Serializable);
        let rows = scanner.scan_range(t, IndexId(1), 200, 300).unwrap();
        assert!(rows.is_empty());

        // The scanner holds shared locks over the whole ordered index; an
        // insert that would land inside the scanned range must wait (here:
        // time out against the 100ms lock timeout).
        let engine2 = engine.clone();
        let inserter = std::thread::spawn(move || {
            let mut ins = engine2.begin(IsolationLevel::ReadCommitted);
            let r = ins.insert(t, rowbuf::keyed_row(250, 16, 1));
            ins.abort();
            r
        });
        let result = inserter.join().unwrap();
        assert!(
            matches!(result, Err(MmdbError::LockTimeout { .. })),
            "{result:?}"
        );

        // Repeating the scan still finds nothing: no phantom.
        assert!(scanner
            .scan_range(t, IndexId(1), 200, 300)
            .unwrap()
            .is_empty());
        scanner.commit().unwrap();

        // With the scanner gone the insert succeeds.
        let mut ins = engine.begin(IsolationLevel::ReadCommitted);
        ins.insert(t, rowbuf::keyed_row(250, 16, 1)).unwrap();
        ins.commit().unwrap();
    }

    #[test]
    fn drop_without_commit_aborts() {
        let (engine, t) = engine();
        {
            let mut txn = engine.begin(IsolationLevel::ReadCommitted);
            txn.update(t, IndexId(0), 9, rowbuf::keyed_row(9, 16, 100))
                .unwrap();
        }
        let mut check = engine.begin(IsolationLevel::ReadCommitted);
        assert_eq!(
            check
                .read(t, IndexId(0), 9)
                .unwrap()
                .map(|r| rowbuf::fill_of(&r)),
            Some(1)
        );
        check.commit().unwrap();
    }
}
