//! The partitioned lock table embedded in every index.
//!
//! The paper's single-version engine (§5): *"The implementation is optimized
//! for main-memory databases and does not use a central lock manager, as this
//! can become a bottleneck. Instead, we embed a lock table in every index and
//! assign each hash key to a lock in this partitioned lock table. A lock
//! covers all records with the same hash key which automatically protects
//! against phantoms. We use timeouts to detect and break deadlocks."*
//!
//! Each [`KeyLock`] is a shared/exclusive lock with owner tracking, lock
//! upgrade (S→X by the sole shared holder) and timeout-based waiting.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mmdb_common::ids::TxnId;

/// Lock modes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access; compatible with other shared holders.
    Shared,
    /// Exclusive (write) access; incompatible with everything else.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their strongest granted mode.
    holders: Vec<(TxnId, LockMode)>,
}

impl LockState {
    fn mode_of(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    /// Can `txn` be granted `mode` right now?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|(t, _)| *t == txn),
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match self.holders.iter_mut().find(|(t, _)| *t == txn) {
            Some(entry) => {
                if mode == LockMode::Exclusive {
                    entry.1 = LockMode::Exclusive;
                }
            }
            None => self.holders.push((txn, mode)),
        }
    }
}

/// Outcome of a lock acquisition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LockGrant {
    /// The lock was newly acquired (the caller must remember to release it).
    Acquired,
    /// The transaction already held the lock at a sufficient mode.
    AlreadyHeld,
    /// The transaction upgraded an existing shared lock to exclusive.
    Upgraded,
}

/// A single shared/exclusive lock guarding one hash key (bucket).
#[derive(Debug, Default)]
pub struct KeyLock {
    state: Mutex<LockState>,
    cv: Condvar,
}

impl KeyLock {
    /// Create an uncontended lock.
    pub fn new() -> KeyLock {
        KeyLock::default()
    }

    /// Acquire the lock in `mode` for `txn`, waiting at most `timeout`.
    /// Returns `None` on timeout (the caller treats this as a deadlock and
    /// aborts).
    pub fn acquire(&self, txn: TxnId, mode: LockMode, timeout: Duration) -> Option<LockGrant> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            let held = state.mode_of(txn);
            match (held, mode) {
                (Some(LockMode::Exclusive), _) => return Some(LockGrant::AlreadyHeld),
                (Some(LockMode::Shared), LockMode::Shared) => return Some(LockGrant::AlreadyHeld),
                _ => {}
            }
            if state.grantable(txn, mode) {
                state.grant(txn, mode);
                return Some(match (held, mode) {
                    (Some(LockMode::Shared), LockMode::Exclusive) => LockGrant::Upgraded,
                    _ => LockGrant::Acquired,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let wait = self.cv.wait_for(&mut state, deadline - now);
            if wait.timed_out() && !state.grantable(txn, mode) {
                return None;
            }
        }
    }

    /// Release whatever `txn` holds on this lock. Idempotent.
    pub fn release(&self, txn: TxnId) {
        let mut state = self.state.lock();
        if let Some(pos) = state.holders.iter().position(|(t, _)| *t == txn) {
            state.holders.swap_remove(pos);
            drop(state);
            self.cv.notify_all();
        }
    }

    /// Downgrade an exclusive lock to shared (unused by the engine but handy
    /// for tests and future cursor support).
    pub fn downgrade(&self, txn: TxnId) {
        let mut state = self.state.lock();
        if let Some(entry) = state.holders.iter_mut().find(|(t, _)| *t == txn) {
            entry.1 = LockMode::Shared;
            drop(state);
            self.cv.notify_all();
        }
    }

    /// Current number of holders (diagnostics).
    pub fn holder_count(&self) -> usize {
        self.state.lock().holders.len()
    }

    /// Mode currently held by `txn`, if any.
    pub fn mode_of(&self, txn: TxnId) -> Option<LockMode> {
        self.state.lock().mode_of(txn)
    }
}

/// A partitioned lock table: one [`KeyLock`] per bucket of an index.
#[derive(Debug)]
pub struct LockTable {
    locks: Box<[KeyLock]>,
}

impl LockTable {
    /// Create a lock table covering `buckets` partitions.
    pub fn new(buckets: usize) -> LockTable {
        LockTable {
            locks: (0..buckets.max(1))
                .map(|_| KeyLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// The lock guarding `bucket`.
    #[inline]
    pub fn lock_for(&self, bucket: usize) -> &KeyLock {
        &self.locks[bucket % self.locks.len()]
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const SHORT: Duration = Duration::from_millis(30);
    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn shared_locks_are_compatible() {
        let lock = KeyLock::new();
        assert_eq!(
            lock.acquire(T1, LockMode::Shared, LONG),
            Some(LockGrant::Acquired)
        );
        assert_eq!(
            lock.acquire(T2, LockMode::Shared, LONG),
            Some(LockGrant::Acquired)
        );
        assert_eq!(lock.holder_count(), 2);
        lock.release(T1);
        lock.release(T2);
        assert_eq!(lock.holder_count(), 0);
    }

    #[test]
    fn exclusive_conflicts_and_times_out() {
        let lock = KeyLock::new();
        assert_eq!(
            lock.acquire(T1, LockMode::Exclusive, LONG),
            Some(LockGrant::Acquired)
        );
        assert_eq!(lock.acquire(T2, LockMode::Shared, SHORT), None);
        assert_eq!(lock.acquire(T2, LockMode::Exclusive, SHORT), None);
        lock.release(T1);
        assert_eq!(
            lock.acquire(T2, LockMode::Exclusive, SHORT),
            Some(LockGrant::Acquired)
        );
    }

    #[test]
    fn reacquisition_is_idempotent() {
        let lock = KeyLock::new();
        assert_eq!(
            lock.acquire(T1, LockMode::Shared, LONG),
            Some(LockGrant::Acquired)
        );
        assert_eq!(
            lock.acquire(T1, LockMode::Shared, LONG),
            Some(LockGrant::AlreadyHeld)
        );
        assert_eq!(
            lock.acquire(T1, LockMode::Exclusive, LONG),
            Some(LockGrant::Upgraded)
        );
        assert_eq!(
            lock.acquire(T1, LockMode::Shared, LONG),
            Some(LockGrant::AlreadyHeld)
        );
        assert_eq!(lock.holder_count(), 1);
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let lock = Arc::new(KeyLock::new());
        assert_eq!(
            lock.acquire(T1, LockMode::Shared, LONG),
            Some(LockGrant::Acquired)
        );
        assert_eq!(
            lock.acquire(T2, LockMode::Shared, LONG),
            Some(LockGrant::Acquired)
        );
        // T1 cannot upgrade while T2 holds shared.
        assert_eq!(lock.acquire(T1, LockMode::Exclusive, SHORT), None);
        // Release T2 in the background; the upgrade then succeeds.
        let l2 = Arc::clone(&lock);
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            l2.release(T2);
        });
        assert_eq!(
            lock.acquire(T1, LockMode::Exclusive, LONG),
            Some(LockGrant::Upgraded)
        );
        releaser.join().unwrap();
    }

    #[test]
    fn waiting_reader_wakes_on_release() {
        let lock = Arc::new(KeyLock::new());
        assert_eq!(
            lock.acquire(T1, LockMode::Exclusive, LONG),
            Some(LockGrant::Acquired)
        );
        let l2 = Arc::clone(&lock);
        let reader = std::thread::spawn(move || l2.acquire(T2, LockMode::Shared, LONG));
        std::thread::sleep(Duration::from_millis(20));
        lock.release(T1);
        assert_eq!(reader.join().unwrap(), Some(LockGrant::Acquired));
    }

    #[test]
    fn lock_table_partitions() {
        let table = LockTable::new(8);
        assert_eq!(table.partitions(), 8);
        assert_eq!(
            table.lock_for(3).acquire(T1, LockMode::Exclusive, LONG),
            Some(LockGrant::Acquired)
        );
        // A different partition is unaffected.
        assert_eq!(
            table.lock_for(4).acquire(T2, LockMode::Exclusive, SHORT),
            Some(LockGrant::Acquired)
        );
        // The same partition (mod size) conflicts.
        assert_eq!(
            table.lock_for(11).acquire(T2, LockMode::Shared, SHORT),
            None
        );
    }

    #[test]
    fn downgrade_lets_readers_in() {
        let lock = KeyLock::new();
        lock.acquire(T1, LockMode::Exclusive, LONG).unwrap();
        assert_eq!(lock.acquire(T2, LockMode::Shared, SHORT), None);
        lock.downgrade(T1);
        assert_eq!(
            lock.acquire(T2, LockMode::Shared, SHORT),
            Some(LockGrant::Acquired)
        );
        assert_eq!(lock.mode_of(T1), Some(LockMode::Shared));
    }
}
