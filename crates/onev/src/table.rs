//! Physical storage for the single-version engine: rows stored in place,
//! grouped into hash buckets, with secondary indexes mapping secondary keys
//! to primary keys.
//!
//! Concurrency control (the partitioned lock table) lives one layer up in the
//! transaction logic; this module only guarantees physically consistent
//! structure updates via short per-bucket latches.

use parking_lot::RwLock;

use mmdb_common::error::{MmdbError, Result};
use mmdb_common::hash::bucket_of;
use mmdb_common::ids::{IndexId, Key, TableId};
use mmdb_common::row::{KeyScratch, Row, TableSpec};

use crate::lock::LockTable;

/// One bucket of a secondary index: (secondary key, primary key) pairs.
type SecondaryBucket = RwLock<Vec<(Key, Key)>>;

/// A single-version table.
pub struct SvTable {
    id: TableId,
    spec: TableSpec,
    /// Primary rows, grouped by the bucket their primary (index 0) key hashes
    /// to.
    primary: Vec<RwLock<Vec<Row>>>,
    /// Secondary index structures (one per index with slot ≥ 1): bucket →
    /// (secondary key, primary key) pairs.
    secondaries: Vec<Vec<SecondaryBucket>>,
    /// The partitioned lock table embedded in each index.
    locks: Vec<LockTable>,
}

impl SvTable {
    /// Create a table from its spec.
    pub fn new(id: TableId, spec: TableSpec) -> Result<SvTable> {
        if spec.indexes.is_empty() {
            return Err(MmdbError::Internal("a table needs at least one index"));
        }
        let primary_buckets = spec.indexes[0].buckets.max(1);
        let primary = (0..primary_buckets)
            .map(|_| RwLock::new(Vec::new()))
            .collect();
        let secondaries = spec
            .indexes
            .iter()
            .skip(1)
            .map(|idx| {
                (0..idx.buckets.max(1))
                    .map(|_| RwLock::new(Vec::new()))
                    .collect()
            })
            .collect();
        let locks = spec
            .indexes
            .iter()
            .map(|idx| LockTable::new(idx.buckets.max(1)))
            .collect();
        Ok(SvTable {
            id,
            spec,
            primary,
            secondaries,
            locks,
        })
    }

    /// Table identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table spec.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Number of indexes.
    pub fn index_count(&self) -> usize {
        self.spec.indexes.len()
    }

    /// The partitioned lock table of `index`.
    pub fn lock_table(&self, index: IndexId) -> Result<&LockTable> {
        self.locks
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))
    }

    /// Key of `row` under `index`.
    pub fn key_of(&self, index: IndexId, row: &[u8]) -> Result<Key> {
        self.spec
            .indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?
            .key
            .key_of(row)
    }

    /// Keys of `row` under every index, extracted into `scratch` (index
    /// order, allocation-free after warmup).
    #[inline]
    pub fn keys_into(&self, row: &[u8], scratch: &mut KeyScratch) -> Result<()> {
        self.spec.keys_into(row, scratch)
    }

    /// Keys of `row` under every index. Thin compat wrapper over
    /// [`SvTable::keys_into`] (allocates a fresh `Vec` per call — the
    /// single-version engine's physical row operations still use it, part of
    /// the documented 1V allocation contrast).
    pub fn keys_of(&self, row: &[u8]) -> Result<Vec<Key>> {
        let mut scratch = KeyScratch::new();
        self.keys_into(row, &mut scratch)?;
        Ok(scratch.into_vec())
    }

    /// Whether `index` was declared unique.
    pub fn is_unique(&self, index: IndexId) -> Result<bool> {
        Ok(self
            .spec
            .indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?
            .unique)
    }

    /// Whether `index` was declared ordered (range-scannable).
    pub fn is_ordered(&self, index: IndexId) -> Result<bool> {
        Ok(self
            .spec
            .indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?
            .ordered)
    }

    /// Number of physical buckets of `index` (ordered indexes declare
    /// `buckets = 0` in the spec and get exactly one).
    pub fn bucket_count(&self, index: IndexId) -> Result<usize> {
        match index.0 as usize {
            0 => Ok(self.primary.len()),
            i => Ok(self
                .secondaries
                .get(i - 1)
                .ok_or(MmdbError::IndexNotFound(self.id, index))?
                .len()),
        }
    }

    /// Bucket `key` hashes to under `index`.
    pub fn bucket_of_key(&self, index: IndexId, key: Key) -> Result<usize> {
        let buckets = match index.0 as usize {
            0 => self.primary.len(),
            i => self
                .secondaries
                .get(i - 1)
                .ok_or(MmdbError::IndexNotFound(self.id, index))?
                .len(),
        };
        Ok(bucket_of(key, buckets))
    }

    /// Fetch the row with primary key `pk`, if present.
    pub fn get_by_pk(&self, pk: Key) -> Result<Option<Row>> {
        let bucket = self.bucket_of_key(IndexId(0), pk)?;
        let rows = self.primary[bucket].read();
        for row in rows.iter() {
            if self.key_of(IndexId(0), row)? == pk {
                return Ok(Some(row.clone()));
            }
        }
        Ok(None)
    }

    /// Fetch every row whose key under `index` equals `key`.
    pub fn lookup(&self, index: IndexId, key: Key) -> Result<Vec<Row>> {
        if index.0 == 0 {
            return Ok(self.get_by_pk(key)?.into_iter().collect());
        }
        let sec = self
            .secondaries
            .get(index.0 as usize - 1)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?;
        let bucket = self.bucket_of_key(index, key)?;
        let pks: Vec<Key> = sec[bucket]
            .read()
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, pk)| *pk)
            .collect();
        let mut out = Vec::with_capacity(pks.len());
        for pk in pks {
            if let Some(row) = self.get_by_pk(pk)? {
                // The secondary entry may be momentarily stale; re-check.
                if self.key_of(index, &row)? == key {
                    out.push(row);
                }
            }
        }
        Ok(out)
    }

    /// Visitor variant of [`SvTable::lookup`]: hand every matching row to
    /// `visit` by reference instead of materializing a `Vec<Row>`.
    ///
    /// A primary lookup visits rows in place **under the bucket latch** — no
    /// clone, no allocation, and therefore the visitor must not call back
    /// into this table or its engine (see the reentrancy rule on
    /// `EngineTxn::read_with`). A secondary lookup still stages the matching
    /// primary keys (the secondary latch must be dropped before taking
    /// primary latches), so it allocates one small `Vec<Key>`; the 1V read
    /// path is inherently not allocation-free, which is exactly the contrast
    /// the multiversion engines' zero-allocation regression test documents.
    pub fn visit_lookup(
        &self,
        index: IndexId,
        key: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        if index.0 == 0 {
            let bucket = self.bucket_of_key(IndexId(0), key)?;
            let rows = self.primary[bucket].read();
            for row in rows.iter() {
                if self.key_of(IndexId(0), row)? == key {
                    visit(row);
                    return Ok(1);
                }
            }
            return Ok(0);
        }
        let sec = self
            .secondaries
            .get(index.0 as usize - 1)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?;
        let bucket = self.bucket_of_key(index, key)?;
        let pks: Vec<Key> = sec[bucket]
            .read()
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, pk)| *pk)
            .collect();
        let mut visited = 0;
        for pk in pks {
            let bucket = self.bucket_of_key(IndexId(0), pk)?;
            let rows = self.primary[bucket].read();
            for row in rows.iter() {
                if self.key_of(IndexId(0), row)? == pk {
                    // The secondary entry may be momentarily stale; re-check.
                    if self.key_of(index, row)? == key {
                        visit(row);
                        visited += 1;
                    }
                    break;
                }
            }
        }
        Ok(visited)
    }

    /// Visit every row whose key under `index` falls in the inclusive range
    /// `[lo, hi]`, in ascending key order. Requires an ordered index
    /// ([`MmdbError::IndexNotOrdered`] otherwise). The single-version store
    /// has no ordered physical structure — an ordered index here is a single
    /// unordered bucket — so the scan stages the matching `(key, pk)` pairs,
    /// sorts them, and visits each row under its primary-bucket latch (the
    /// same latch protocol as [`SvTable::visit_lookup`]; the staging `Vec`
    /// is part of the documented 1V allocation contrast).
    pub fn visit_range(
        &self,
        index: IndexId,
        lo: Key,
        hi: Key,
        visit: &mut dyn FnMut(&Row),
    ) -> Result<usize> {
        if !self.is_ordered(index)? {
            return Err(MmdbError::IndexNotOrdered(self.id, index));
        }
        let mut pairs: Vec<(Key, Key)> = Vec::new();
        if index.0 == 0 {
            for bucket in &self.primary {
                for row in bucket.read().iter() {
                    let k = self.key_of(index, row)?;
                    if lo <= k && k <= hi {
                        pairs.push((k, k));
                    }
                }
            }
        } else {
            let sec = self
                .secondaries
                .get(index.0 as usize - 1)
                .ok_or(MmdbError::IndexNotFound(self.id, index))?;
            for bucket in sec {
                pairs.extend(
                    bucket
                        .read()
                        .iter()
                        .filter(|(k, _)| lo <= *k && *k <= hi)
                        .copied(),
                );
            }
        }
        pairs.sort_unstable();
        let mut visited = 0;
        for (key, pk) in pairs {
            let bucket = self.bucket_of_key(IndexId(0), pk)?;
            let rows = self.primary[bucket].read();
            for row in rows.iter() {
                if self.key_of(IndexId(0), row)? == pk {
                    // The staged entry may be momentarily stale; re-check.
                    if self.key_of(index, row)? == key {
                        visit(row);
                        visited += 1;
                    }
                    break;
                }
            }
        }
        Ok(visited)
    }

    /// Insert a new row (physically). The caller has already checked
    /// uniqueness under the appropriate locks.
    pub fn insert_row(&self, row: Row) -> Result<()> {
        let keys = self.keys_of(&row)?;
        let pk = keys[0];
        let bucket = self.bucket_of_key(IndexId(0), pk)?;
        self.primary[bucket].write().push(row);
        for (slot, key) in keys.iter().enumerate().skip(1) {
            let sec_bucket = self.bucket_of_key(IndexId(slot as u32), *key)?;
            self.secondaries[slot - 1][sec_bucket]
                .write()
                .push((*key, pk));
        }
        Ok(())
    }

    /// Replace the row with primary key `pk` by `new_row` (which may carry
    /// different secondary keys, but must keep the same primary key).
    /// Returns the old row, or `None` if `pk` was not present.
    pub fn update_row(&self, pk: Key, new_row: Row) -> Result<Option<Row>> {
        let new_keys = self.keys_of(&new_row)?;
        if new_keys[0] != pk {
            return Err(MmdbError::Internal(
                "update_row must preserve the primary key",
            ));
        }
        let bucket = self.bucket_of_key(IndexId(0), pk)?;
        let old = {
            let mut rows = self.primary[bucket].write();
            let mut found = None;
            for row in rows.iter_mut() {
                if self.key_of(IndexId(0), row)? == pk {
                    found = Some(std::mem::replace(row, new_row.clone()));
                    break;
                }
            }
            found
        };
        let Some(old_row) = old else { return Ok(None) };
        // Fix secondary entries whose key changed.
        let old_keys = self.keys_of(&old_row)?;
        for slot in 1..self.spec.indexes.len() {
            if old_keys[slot] == new_keys[slot] {
                continue;
            }
            let old_bucket = self.bucket_of_key(IndexId(slot as u32), old_keys[slot])?;
            {
                let mut entries = self.secondaries[slot - 1][old_bucket].write();
                if let Some(pos) = entries
                    .iter()
                    .position(|(k, p)| *k == old_keys[slot] && *p == pk)
                {
                    entries.swap_remove(pos);
                }
            }
            let new_bucket = self.bucket_of_key(IndexId(slot as u32), new_keys[slot])?;
            self.secondaries[slot - 1][new_bucket]
                .write()
                .push((new_keys[slot], pk));
        }
        Ok(Some(old_row))
    }

    /// Remove the row with primary key `pk`. Returns the removed row.
    pub fn delete_row(&self, pk: Key) -> Result<Option<Row>> {
        let bucket = self.bucket_of_key(IndexId(0), pk)?;
        let old = {
            let mut rows = self.primary[bucket].write();
            let mut found = None;
            for (i, row) in rows.iter().enumerate() {
                if self.key_of(IndexId(0), row)? == pk {
                    found = Some(i);
                    break;
                }
            }
            found.map(|i| rows.swap_remove(i))
        };
        let Some(old_row) = old else { return Ok(None) };
        let old_keys = self.keys_of(&old_row)?;
        for (slot, old_key) in old_keys.iter().enumerate().skip(1) {
            let sec_bucket = self.bucket_of_key(IndexId(slot as u32), *old_key)?;
            let mut entries = self.secondaries[slot - 1][sec_bucket].write();
            if let Some(pos) = entries.iter().position(|(k, p)| k == old_key && *p == pk) {
                entries.swap_remove(pos);
            }
        }
        Ok(Some(old_row))
    }

    /// Number of rows (walks every bucket; diagnostics only).
    pub fn row_count(&self) -> usize {
        self.primary.iter().map(|b| b.read().len()).sum()
    }

    /// Visit every row in the table, primary-bucket order. Only physically
    /// consistent (each bucket's latch is held across its rows); callers
    /// wanting a transactionally stable full scan must hold shared locks on
    /// every primary bucket first — which is what the checkpoint walk does,
    /// and exactly the "readers block writers" cost the paper charges to
    /// single-version locking.
    pub fn visit_all(&self, visit: &mut dyn FnMut(&Row)) -> usize {
        let mut visited = 0;
        for bucket in &self.primary {
            let rows = bucket.read();
            for row in rows.iter() {
                visited += 1;
                visit(row);
            }
        }
        visited
    }
}

impl std::fmt::Debug for SvTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvTable")
            .field("id", &self.id)
            .field("name", &self.spec.name)
            .field("rows", &self.row_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_common::row::{rowbuf, IndexSpec, KeySpec};

    fn spec() -> TableSpec {
        TableSpec::keyed_u64("t", 64).with_index(IndexSpec {
            name: "by_fill".into(),
            key: KeySpec::BytesAt { offset: 8, len: 1 },
            buckets: 16,
            unique: false,
            ordered: false,
        })
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let t = SvTable::new(TableId(0), spec()).unwrap();
        for k in 0..50u64 {
            t.insert_row(rowbuf::keyed_row(k, 16, (k % 5) as u8))
                .unwrap();
        }
        assert_eq!(t.row_count(), 50);
        assert_eq!(t.get_by_pk(7).unwrap().map(|r| rowbuf::key_of(&r)), Some(7));
        assert!(t.get_by_pk(999).unwrap().is_none());
        let fill2 = mmdb_common::hash::hash_bytes(&[2u8]);
        assert_eq!(t.lookup(IndexId(1), fill2).unwrap().len(), 10);
    }

    #[test]
    fn update_fixes_secondary_entries() {
        let t = SvTable::new(TableId(0), spec()).unwrap();
        t.insert_row(rowbuf::keyed_row(1, 16, 3)).unwrap();
        let old = t
            .update_row(1, rowbuf::keyed_row(1, 16, 9))
            .unwrap()
            .unwrap();
        assert_eq!(rowbuf::fill_of(&old), 3);
        let fill3 = mmdb_common::hash::hash_bytes(&[3u8]);
        let fill9 = mmdb_common::hash::hash_bytes(&[9u8]);
        assert!(t.lookup(IndexId(1), fill3).unwrap().is_empty());
        assert_eq!(t.lookup(IndexId(1), fill9).unwrap().len(), 1);
        // Updating a missing key is a no-op.
        assert!(t
            .update_row(555, rowbuf::keyed_row(555, 16, 1))
            .unwrap()
            .is_none());
    }

    #[test]
    fn update_must_keep_primary_key() {
        let t = SvTable::new(TableId(0), spec()).unwrap();
        t.insert_row(rowbuf::keyed_row(1, 16, 3)).unwrap();
        assert!(t.update_row(1, rowbuf::keyed_row(2, 16, 3)).is_err());
    }

    #[test]
    fn delete_removes_everywhere() {
        let t = SvTable::new(TableId(0), spec()).unwrap();
        t.insert_row(rowbuf::keyed_row(1, 16, 3)).unwrap();
        t.insert_row(rowbuf::keyed_row(2, 16, 3)).unwrap();
        let old = t.delete_row(1).unwrap().unwrap();
        assert_eq!(rowbuf::key_of(&old), 1);
        assert!(t.get_by_pk(1).unwrap().is_none());
        let fill3 = mmdb_common::hash::hash_bytes(&[3u8]);
        assert_eq!(t.lookup(IndexId(1), fill3).unwrap().len(), 1);
        assert!(t.delete_row(1).unwrap().is_none());
    }

    #[test]
    fn rejects_empty_spec() {
        assert!(SvTable::new(
            TableId(0),
            TableSpec {
                name: "x".into(),
                indexes: vec![]
            }
        )
        .is_err());
    }
}
