//! An epoch-published, append-only catalog.
//!
//! Both engines keep their tables in a dense id-indexed registry that every
//! operation consults. PR 3 left that registry behind a `RwLock<Vec<Arc<T>>>`
//! — the last lock on the per-operation hot path. Tables are **never
//! removed**, so the registry fits the same publication technique as the
//! `TxnTable` slot map: the entry array is an immutable epoch-managed
//! snapshot, lookups load it with a single `Acquire` and index it (no lock,
//! no reference-count traffic), and `create` builds a one-longer copy and
//! publishes it with an atomic swap (mirroring the append-only mapping-table
//! publication of the Hekaton / Bw-tree line of work).
//!
//! Soundness of the guard-borrowed lookup: superseded arrays are destroyed
//! through the epoch collector, so an array loaded under a pinned guard
//! outlives the guard; and because entries are only ever *appended*, the
//! newest array always holds a strong `Arc` to every `T` an older array
//! held, so the pointee itself lives as long as the catalog does.

use std::sync::Arc;

use crossbeam::epoch::{Atomic, Guard, Owned};
use parking_lot::Mutex;

/// An append-only collection of `Arc<T>` with lock-free indexed lookup.
pub struct Catalog<T> {
    /// The published snapshot: an immutable boxed slice of strong refs.
    slice: Atomic<Box<[Arc<T>]>>,
    /// Serializes appends (the cold path: once per table created).
    write: Mutex<()>,
}

impl<T> Catalog<T> {
    /// Create an empty catalog.
    pub fn new() -> Catalog<T> {
        Catalog {
            slice: Atomic::new(Vec::new().into_boxed_slice()),
            write: Mutex::new(()),
        }
    }

    /// Look up entry `idx` without taking any lock or touching the entry's
    /// reference count: the returned borrow lives as long as the caller's
    /// epoch guard (and the catalog — see the module docs).
    #[inline]
    pub fn get_in<'g>(&self, idx: usize, guard: &'g Guard) -> Option<&'g T> {
        // SAFETY: the slice pointer is never null (initialized at
        // construction) and superseded arrays are epoch-deferred, so the
        // load is valid under the caller's guard.
        let items = unsafe {
            self.slice
                .load(std::sync::atomic::Ordering::Acquire, guard)
                .deref()
        };
        items.get(idx).map(|arc| &**arc)
    }

    /// Look up entry `idx`, returning an owned handle (an `Arc` clone).
    /// Still lock-free; use [`Catalog::get_in`] on paths that only borrow.
    pub fn get(&self, idx: usize) -> Option<Arc<T>> {
        let guard = crossbeam::epoch::pin();
        // SAFETY: as in `get_in`.
        let items = unsafe {
            self.slice
                .load(std::sync::atomic::Ordering::Acquire, &guard)
                .deref()
        };
        items.get(idx).cloned()
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        let guard = crossbeam::epoch::pin();
        // SAFETY: as in `get_in`.
        unsafe {
            self.slice
                .load(std::sync::atomic::Ordering::Acquire, &guard)
                .deref()
        }
        .len()
    }

    /// True when no entry has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an entry built from its future index (`make(next_idx)`), and
    /// return the index. `make` may fail; nothing is published then.
    ///
    /// Appends copy the existing `Arc`s into a one-longer array and publish
    /// it with a single swap; concurrent lookups see either snapshot, both
    /// valid. O(n) per append is fine — this runs once per `create_table`,
    /// never per operation.
    pub fn push_with<E>(&self, make: impl FnOnce(usize) -> Result<T, E>) -> Result<usize, E> {
        let _write = self.write.lock();
        let guard = crossbeam::epoch::pin();
        let current = self
            .slice
            .load(std::sync::atomic::Ordering::Acquire, &guard);
        // SAFETY: as in `get_in`.
        let items = unsafe { current.deref() };
        let idx = items.len();
        let value = make(idx)?;
        let mut grown: Vec<Arc<T>> = Vec::with_capacity(idx + 1);
        grown.extend(items.iter().cloned());
        grown.push(Arc::new(value));
        let published = Owned::new(grown.into_boxed_slice()).into_shared(&guard);
        self.slice
            .store(published, std::sync::atomic::Ordering::Release);
        // SAFETY: the old array is unreachable to new readers; pinned
        // readers keep it alive until they unpin. The `Arc`s inside it are
        // clones of the ones the new array holds, so dropping them with the
        // array cannot free any `T`.
        unsafe { guard.defer_destroy(current) };
        Ok(idx)
    }
}

impl<T> Default for Catalog<T> {
    fn default() -> Self {
        Catalog::new()
    }
}

impl<T> Drop for Catalog<T> {
    fn drop(&mut self) {
        let guard = crossbeam::epoch::pin();
        let current = self
            .slice
            .load(std::sync::atomic::Ordering::Acquire, &guard);
        if !current.is_null() {
            // SAFETY: exclusive access (we are being dropped); superseded
            // arrays were already handed to the epoch collector.
            unsafe { drop(current.into_owned()) };
        }
    }
}

impl<T> std::fmt::Debug for Catalog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn push_and_lookup() {
        let catalog: Catalog<String> = Catalog::new();
        assert!(catalog.is_empty());
        let a = catalog
            .push_with::<()>(|idx| Ok(format!("entry-{idx}")))
            .unwrap();
        let b = catalog
            .push_with::<()>(|idx| Ok(format!("entry-{idx}")))
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(catalog.len(), 2);
        let guard = crossbeam::epoch::pin();
        assert_eq!(catalog.get_in(0, &guard).unwrap(), "entry-0");
        assert_eq!(catalog.get_in(1, &guard).unwrap(), "entry-1");
        assert!(catalog.get_in(2, &guard).is_none());
        assert_eq!(*catalog.get(1).unwrap(), "entry-1");
        assert!(catalog.get(2).is_none());
    }

    #[test]
    fn failed_make_publishes_nothing() {
        let catalog: Catalog<u32> = Catalog::new();
        assert_eq!(catalog.push_with::<&str>(|_| Err("nope")), Err("nope"));
        assert!(catalog.is_empty());
    }

    #[test]
    fn borrow_survives_concurrent_append() {
        let catalog: Catalog<u64> = Catalog::new();
        catalog.push_with::<()>(|_| Ok(7)).unwrap();
        let guard = crossbeam::epoch::pin();
        let borrowed = catalog.get_in(0, &guard).unwrap();
        for i in 0..100u64 {
            catalog.push_with::<()>(|_| Ok(i)).unwrap();
        }
        // The old array was superseded 100 times; the borrow is still valid
        // (arrays are epoch-deferred, entries are never removed).
        assert_eq!(*borrowed, 7);
        assert_eq!(catalog.len(), 101);
    }

    #[test]
    fn concurrent_appends_and_readers_race_cleanly() {
        let catalog: Arc<Catalog<u64>> = Arc::new(Catalog::new());
        catalog.push_with::<()>(|_| Ok(0)).unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let catalog = Arc::clone(&catalog);
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let guard = crossbeam::epoch::pin();
                        let len = catalog.len();
                        for idx in 0..len {
                            let entry = catalog
                                .get_in(idx, &guard)
                                .expect("published entries never disappear");
                            assert_eq!(*entry, idx as u64);
                        }
                    }
                });
            }
            {
                let catalog = Arc::clone(&catalog);
                let stop = &stop;
                scope.spawn(move || {
                    for i in 1..400u64 {
                        let idx = catalog.push_with::<()>(|idx| Ok(idx as u64)).unwrap();
                        assert_eq!(idx as u64, i);
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(catalog.len(), 400);
    }
}
