//! Checkpointing and redo-log truncation.
//!
//! Without checkpoints the redo log grows without bound and recovery time is
//! proportional to the whole history. This module bounds both: a *checkpoint*
//! is a consistent snapshot-isolation image of every table serialized to a
//! file, and once it is durably installed the log prefix below the
//! checkpoint's LSN is dead weight — recovery becomes *load checkpoint +
//! replay tail* (paper §3.3: "periodically, the system checkpoints the
//! database so the log can be truncated").
//!
//! ## Directory layout
//!
//! A [`CheckpointStore`] owns one directory:
//!
//! ```text
//! <dir>/MANIFEST       append-only, framed; the recovery root
//! <dir>/wal-<g>.log    the redo log segment of generation <g>
//! <dir>/ckpt-<g>.db    the base checkpoint image installed at generation <g>
//! <dir>/delta-<g>.db   a delta image installed at generation <g>
//! <dir>/ckpt.tmp       a base image being written (never read by recovery)
//! <dir>/delta.tmp      a delta image being written (never read by recovery)
//! ```
//!
//! Every file uses the redo log's wire discipline (length prefix with XOR
//! self-check, body, trailing checksum — see [`crate::log`]), so a torn tail
//! is always distinguishable from corruption.
//!
//! ## The manifest
//!
//! The `MANIFEST` is an append-only sequence of framed entries; the **last
//! complete entry wins**. Each entry names the live log segment (and the
//! logical LSN of its byte 0) plus the installed *checkpoint chain*: a base
//! image followed by zero or more ordered deltas, each with its LSN and
//! snapshot read timestamp. An entry is only ever appended *after* every
//! file it references is durable, so the last complete entry always
//! describes files that exist with valid contents; a crash mid-append
//! leaves a torn tail that recovery skips, falling back to the previous
//! entry.
//!
//! ## Delta checkpoints
//!
//! A *delta* image ([`CheckpointStore::begin_delta`] /
//! [`CheckpointStore::install_delta`]) holds only the rows whose latest
//! committed version moved past the previous chain element's snapshot
//! (`parent_read_ts < begin_ts <= read_ts`) plus the primary keys deleted
//! in that window — checkpointing pays for what changed, not what exists.
//! Recovery applies the base, then each delta in chain order (**its deletes
//! first, then its writes** — a delete+reinsert in one window therefore
//! resolves to the reinserted row), then the log tail above the *last*
//! chain element. Installing a new *base* resets the chain and deletes the
//! superseded files (compaction); the chain length is bounded by
//! `CheckpointPolicy::max_chain`.
//!
//! ## The checkpoint protocol
//!
//! 1. **Write** — [`CheckpointStore::begin_checkpoint`] opens `ckpt.tmp`;
//!    the caller streams every visible row through
//!    [`CheckpointWriter::write_row`] and calls [`CheckpointWriter::finish`],
//!    which appends a trailer frame (row count) and fsyncs. A crash here
//!    leaves only a dead tmp file.
//! 2. **Install** — [`CheckpointStore::install_checkpoint`] renames the tmp
//!    file to `ckpt-<g>.db`, fsyncs the directory, then appends (and fsyncs)
//!    a manifest entry pointing at it. A crash before the entry is complete
//!    recovers from the previous manifest entry.
//! 3. **Truncate** — [`CheckpointStore::truncate_log`] rotates the
//!    [`GroupCommitLog`] onto `wal-<g>.log` keeping only bytes at LSNs `>=`
//!    the checkpoint LSN; the manifest entry naming the new segment is
//!    appended *inside* the rotation's publish window (under the flush lock,
//!    before any new batch can harden into the new segment), so a crash at
//!    any byte of the truncation recovers from the old segment. Only after
//!    the entry is durable is the old segment deleted.
//!
//! Each step is individually crash-atomic, which is why they are exposed as
//! separate operations: the recovery crash tests drive byte-level crash
//! states between and inside each one.
//!
//! ## Consistency contract
//!
//! The writer records the pair `(ckpt_lsn, read_ts)` chosen by the caller.
//! The engines capture `ckpt_lsn = appended_lsn()` **before** drawing the
//! snapshot timestamp `read_ts`; since both engines draw a commit's end
//! timestamp before appending its frame, every frame wholly below `ckpt_lsn`
//! commits at `end_ts < read_ts` and is therefore inside the snapshot.
//! Recovery loads the checkpoint rows, then replays the log tail from
//! `ckpt_lsn`, skipping records with `end_ts <= read_ts` (already in the
//! image). Rows are serialized as ordinary redo `Write` ops at
//! `end_ts = read_ts`, so the checkpoint is literally a compacted,
//! reordered prefix of the log.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mmdb_common::durability::CheckpointPolicy;
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{TableId, Timestamp};
use mmdb_common::row::Row;

use crate::group_commit::{sync_parent_dir, GroupCommitLog};
use crate::log::{decode_body, encode_frame_into, frame_body_into, FrameStream, LogOpRef, Lsn};

/// Magic bytes opening a checkpoint file's header frame.
const CKPT_MAGIC: &[u8; 8] = b"MMDBCKP1";
/// Magic bytes of the trailer frame that marks a checkpoint complete.
const CKPT_TRAILER: &[u8; 8] = b"MMDBCKPE";
/// Base-image format version (28-byte header, no deletes).
const CKPT_VERSION: u32 = 1;
/// Delta-image format version (36-byte header carrying the parent snapshot
/// timestamp; delete ops allowed).
const CKPT_DELTA_VERSION: u32 = 2;
/// The manifest file name inside a checkpoint directory.
const MANIFEST: &str = "MANIFEST";
/// Row frames are flushed once the pending batch reaches this many bytes.
const ROW_BATCH_TARGET: usize = 64 * 1024;
/// Chunk size for streaming checkpoint/manifest reads.
const CKPT_CHUNK: usize = 64 * 1024;

fn io_err(e: std::io::Error) -> MmdbError {
    MmdbError::LogIo(e.to_string())
}

fn invalid(reason: &'static str) -> MmdbError {
    MmdbError::CheckpointInvalid { reason }
}

// ---------------------------------------------------------------------------
// Manifest entries
// ---------------------------------------------------------------------------

/// One manifest entry: the state of the directory at a generation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    /// Monotone generation counter; bumped by install and truncate.
    generation: u64,
    /// File name (within the directory) of the live log segment.
    log_name: String,
    /// Logical LSN of the log segment's byte 0.
    log_base: Lsn,
    /// The installed checkpoint chain: base image first, then every delta
    /// in apply order. Empty before the first checkpoint.
    chain: Vec<CheckpointMeta>,
}

/// One checkpoint chain element in a manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckpointMeta {
    /// File name (within the directory) of the checkpoint.
    name: String,
    /// Log LSN the checkpoint covers: every record below it is in the image
    /// (together with the chain elements before it).
    lsn: Lsn,
    /// Snapshot read timestamp of the image.
    read_ts: Timestamp,
}

impl CheckpointMeta {
    fn encode_into(&self, body: &mut Vec<u8>) {
        body.extend_from_slice(&self.lsn.0.to_le_bytes());
        body.extend_from_slice(&self.read_ts.raw().to_le_bytes());
        body.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        body.extend_from_slice(self.name.as_bytes());
    }
}

impl ManifestEntry {
    fn encode_into(&self, body: &mut Vec<u8>) {
        body.extend_from_slice(&self.generation.to_le_bytes());
        body.extend_from_slice(&self.log_base.0.to_le_bytes());
        body.extend_from_slice(&(self.log_name.len() as u32).to_le_bytes());
        body.extend_from_slice(self.log_name.as_bytes());
        // Checkpoint tag: 0 = none, 1 = single image (the pre-delta wire
        // format, still emitted for one-element chains so old manifests and
        // new ones stay byte-compatible in the common case), 2 = chain.
        match self.chain.as_slice() {
            [] => body.push(0),
            [meta] => {
                body.push(1);
                meta.encode_into(body);
            }
            chain => {
                body.push(2);
                body.extend_from_slice(&(chain.len() as u32).to_le_bytes());
                for meta in chain {
                    meta.encode_into(body);
                }
            }
        }
    }

    /// Decode an entry body. The frame checksum already passed, so any
    /// structural mismatch here means the manifest was written by something
    /// else (or a format bug), not a crash — [`MmdbError::CheckpointInvalid`].
    fn decode(body: &[u8]) -> Result<ManifestEntry> {
        let mut cursor = Cursor { body, pos: 0 };
        let generation = cursor.take_u64()?;
        let log_base = Lsn(cursor.take_u64()?);
        let log_name = cursor.take_name("manifest log name is not UTF-8")?;
        let chain = match cursor.take(1)?[0] {
            0 => Vec::new(),
            1 => vec![cursor.take_meta()?],
            2 => {
                let count = cursor.take_u32()? as usize;
                if count < 2 {
                    return Err(invalid("manifest chain tag with fewer than two elements"));
                }
                (0..count)
                    .map(|_| cursor.take_meta())
                    .collect::<Result<Vec<_>>>()?
            }
            _ => return Err(invalid("manifest entry has an unknown checkpoint tag")),
        };
        if cursor.pos != body.len() {
            return Err(invalid("manifest entry has trailing bytes"));
        }
        Ok(ManifestEntry {
            generation,
            log_name,
            log_base,
            chain,
        })
    }
}

/// Byte cursor over a manifest entry body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .body
            .get(self.pos..self.pos + n)
            .ok_or(invalid("manifest entry body too short"))?;
        self.pos += n;
        Ok(slice)
    }

    fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_name(&mut self, err: &'static str) -> Result<String> {
        let len = self.take_u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| invalid(err))
    }

    fn take_meta(&mut self) -> Result<CheckpointMeta> {
        let lsn = Lsn(self.take_u64()?);
        let read_ts = Timestamp(self.take_u64()?);
        let name = self.take_name("manifest checkpoint name is not UTF-8")?;
        Ok(CheckpointMeta { name, lsn, read_ts })
    }
}

/// Frame an entry and append it durably (write + fsync).
fn append_manifest_entry(file: &mut File, entry: &ManifestEntry) -> Result<()> {
    let mut body = Vec::with_capacity(64);
    entry.encode_into(&mut body);
    let mut frame = Vec::with_capacity(body.len() + 16);
    frame_body_into(&mut frame, &body);
    file.write_all(&frame).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Recovery plan
// ---------------------------------------------------------------------------

/// A reference to an installed checkpoint, resolved to a full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRef {
    /// Path of the checkpoint file.
    pub path: PathBuf,
    /// Log LSN the checkpoint covers.
    pub lsn: Lsn,
    /// Snapshot read timestamp of the image.
    pub read_ts: Timestamp,
}

/// What recovery should do, decoded from the manifest's last complete entry.
///
/// Produced by [`CheckpointStore::plan`] without touching the log or the
/// checkpoint files, so callers can sequence their own recovery: apply the
/// [`chain`](RecoveryPlan::chain) (base image first, then every delta in
/// order), stream the log tail from [`RecoveryPlan::log_tail_offset`], then
/// reopen the store with [`CheckpointStore::open`] passing the physical
/// prefix the tail read validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// Generation of the winning manifest entry.
    pub generation: u64,
    /// The installed checkpoint chain to load first: the base image, then
    /// every delta in apply order. Empty before the first checkpoint.
    pub chain: Vec<CheckpointRef>,
    /// Path of the live log segment.
    pub log_path: PathBuf,
    /// Logical LSN of the log segment's byte 0.
    pub log_base: Lsn,
    /// Valid prefix of the manifest itself (a crash mid-append leaves a torn
    /// tail that [`CheckpointStore::open`] cuts before appending again).
    pub manifest_valid_bytes: u64,
}

impl RecoveryPlan {
    /// The last chain element — the checkpoint whose LSN and snapshot
    /// timestamp bound the log tail. `None` before the first checkpoint.
    pub fn last_checkpoint(&self) -> Option<&CheckpointRef> {
        self.chain.last()
    }

    /// Physical file offset in the log segment where tail replay starts:
    /// the last chain element's LSN translated into the segment, or 0
    /// without a checkpoint.
    pub fn log_tail_offset(&self) -> u64 {
        match self.chain.last() {
            Some(ckpt) => ckpt.lsn.0.saturating_sub(self.log_base.0),
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint writer / reader
// ---------------------------------------------------------------------------

/// Streams a checkpoint image into its temporary file (`ckpt.tmp` for a
/// base, `delta.tmp` for a delta).
///
/// Rows are buffered and emitted as ordinary redo-log `Write` frames (at
/// `end_ts = read_ts`, batched to `ROW_BATCH_TARGET` bytes per frame),
/// framed between a header and a trailer. Delta writers additionally accept
/// [`write_delete`](Self::write_delete) tombstones, emitted as `Delete`
/// frames ahead of the trailer. Obtain one from
/// [`CheckpointStore::begin_checkpoint`] or
/// [`CheckpointStore::begin_delta`], feed every op through, then
/// [`finish`](Self::finish).
pub struct CheckpointWriter {
    file: File,
    tmp_path: PathBuf,
    lsn: Lsn,
    read_ts: Timestamp,
    /// Snapshot timestamp of the previous chain element (`Some` for a delta
    /// writer; `None` for a base image, which rejects deletes).
    parent_read_ts: Option<Timestamp>,
    ops: u64,
    deletes: Vec<(TableId, u64)>,
    batch: Vec<(TableId, Row)>,
    batch_bytes: usize,
    frame: Vec<u8>,
}

/// A finished (written + fsynced) checkpoint still under its temporary
/// name. Pass to [`CheckpointStore::install_checkpoint`] (base) or
/// [`CheckpointStore::install_delta`] (delta) to make it part of the
/// recovery source.
pub struct FinishedCheckpoint {
    tmp_path: PathBuf,
    lsn: Lsn,
    read_ts: Timestamp,
    parent_read_ts: Option<Timestamp>,
    /// Number of row (write) ops in the image.
    pub rows: u64,
    /// Number of delete ops in the image (always 0 for a base).
    pub deletes: u64,
    /// Size of the checkpoint file in bytes.
    pub bytes: u64,
}

impl CheckpointWriter {
    fn create(
        tmp_path: PathBuf,
        lsn: Lsn,
        read_ts: Timestamp,
        parent_read_ts: Option<Timestamp>,
    ) -> Result<CheckpointWriter> {
        let mut file = File::create(&tmp_path).map_err(io_err)?;
        let mut header = Vec::with_capacity(36);
        header.extend_from_slice(CKPT_MAGIC);
        match parent_read_ts {
            None => {
                header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
                header.extend_from_slice(&lsn.0.to_le_bytes());
                header.extend_from_slice(&read_ts.raw().to_le_bytes());
            }
            Some(parent) => {
                header.extend_from_slice(&CKPT_DELTA_VERSION.to_le_bytes());
                header.extend_from_slice(&lsn.0.to_le_bytes());
                header.extend_from_slice(&read_ts.raw().to_le_bytes());
                header.extend_from_slice(&parent.raw().to_le_bytes());
            }
        }
        let mut frame = Vec::with_capacity(header.len() + 16);
        frame_body_into(&mut frame, &header);
        file.write_all(&frame).map_err(io_err)?;
        Ok(CheckpointWriter {
            file,
            tmp_path,
            lsn,
            read_ts,
            parent_read_ts,
            ops: 0,
            deletes: Vec::new(),
            batch: Vec::new(),
            batch_bytes: 0,
            frame,
        })
    }

    /// The snapshot read timestamp this image is being taken at.
    pub fn read_ts(&self) -> Timestamp {
        self.read_ts
    }

    /// The log LSN this image covers.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// The previous chain element's snapshot timestamp (`Some` iff this is
    /// a delta writer).
    pub fn parent_read_ts(&self) -> Option<Timestamp> {
        self.parent_read_ts
    }

    /// Add one visible row to the image. Rows may arrive in any order; the
    /// image carries no ordering guarantees beyond "one op per live row".
    pub fn write_row(&mut self, table: TableId, row: &[u8]) -> Result<()> {
        self.batch.push((table, Row::copy_from_slice(row)));
        self.batch_bytes += row.len() + 9;
        self.ops += 1;
        if self.batch_bytes >= ROW_BATCH_TARGET {
            self.flush_batch()?;
        }
        Ok(())
    }

    /// Add one deleted primary key to the image (delta writers only — a
    /// base image enumerates live rows and has nothing to delete).
    /// Recovery applies a delta's deletes before its writes, so a spurious
    /// tombstone for a key the same delta rewrites is harmless.
    pub fn write_delete(&mut self, table: TableId, key: u64) -> Result<()> {
        if self.parent_read_ts.is_none() {
            return Err(invalid("a base checkpoint image cannot carry deletes"));
        }
        self.deletes.push((table, key));
        self.ops += 1;
        Ok(())
    }

    fn flush_batch(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        self.frame.clear();
        encode_frame_into(
            &mut self.frame,
            self.read_ts,
            self.batch
                .iter()
                .map(|(table, row)| LogOpRef::Write { table: *table, row }),
        );
        self.file.write_all(&self.frame).map_err(io_err)?;
        self.batch.clear();
        self.batch_bytes = 0;
        Ok(())
    }

    /// Flush the last row batch and the buffered deletes, append the
    /// trailer frame (which is what marks the image complete — a checkpoint
    /// without it is treated as torn and never loaded) and fsync.
    pub fn finish(mut self) -> Result<FinishedCheckpoint> {
        self.flush_batch()?;
        let row_ops = self.ops - self.deletes.len() as u64;
        for chunk in self.deletes.chunks(ROW_BATCH_TARGET / 16) {
            self.frame.clear();
            encode_frame_into(
                &mut self.frame,
                self.read_ts,
                chunk
                    .iter()
                    .map(|&(table, key)| LogOpRef::Delete { table, key }),
            );
            self.file.write_all(&self.frame).map_err(io_err)?;
        }
        let mut trailer = Vec::with_capacity(16);
        trailer.extend_from_slice(CKPT_TRAILER);
        trailer.extend_from_slice(&self.ops.to_le_bytes());
        self.frame.clear();
        frame_body_into(&mut self.frame, &trailer);
        self.file.write_all(&self.frame).map_err(io_err)?;
        self.file.sync_all().map_err(io_err)?;
        let bytes = self.file.stream_position().map_err(io_err)?;
        Ok(FinishedCheckpoint {
            tmp_path: self.tmp_path,
            lsn: self.lsn,
            read_ts: self.read_ts,
            parent_read_ts: self.parent_read_ts,
            rows: row_ops,
            deletes: self.deletes.len() as u64,
            bytes,
        })
    }
}

/// A fully validated checkpoint image, loaded into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointContents {
    /// Log LSN the image covers.
    pub lsn: Lsn,
    /// Snapshot read timestamp of the image.
    pub read_ts: Timestamp,
    /// For a delta image, the previous chain element's snapshot timestamp;
    /// `None` for a base image.
    pub parent_read_ts: Option<Timestamp>,
    /// Every row in the image, in file order.
    pub rows: Vec<(TableId, Row)>,
    /// Primary keys deleted since the parent snapshot (delta images only;
    /// apply these **before** the rows).
    pub deletes: Vec<(TableId, u64)>,
}

/// Read and validate a checkpoint file (base or delta).
///
/// Validation is strict because a checkpoint is only ever read after the
/// manifest durably named it, at which point it must be perfect: header
/// magic/version, every row frame's checksum, the trailer's op count, and
/// the absence of trailing bytes are all checked. Any shortfall —
/// including a torn tail, which in a log would be tolerated — is
/// [`MmdbError::CheckpointInvalid`]: loading half a checkpoint would
/// silently lose rows. Base images (version 1) additionally reject delete
/// ops — a base enumerates live rows and has nothing to delete.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointContents> {
    let file = File::open(path.as_ref()).map_err(io_err)?;
    let mut frames = FrameStream::new(file, CKPT_CHUNK, 0);
    let header = match frames.next_body()? {
        Some((_, body)) => body,
        None => return Err(invalid("checkpoint file has no header frame")),
    };
    if header.len() < 12 || &header[..8] != CKPT_MAGIC {
        return Err(invalid("checkpoint header magic mismatch"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let parent_read_ts = match version {
        CKPT_VERSION if header.len() == 28 => None,
        CKPT_DELTA_VERSION if header.len() == 36 => Some(Timestamp(u64::from_le_bytes(
            header[28..36].try_into().expect("8 bytes"),
        ))),
        CKPT_VERSION | CKPT_DELTA_VERSION => {
            return Err(invalid("checkpoint header length mismatch"))
        }
        _ => return Err(invalid("unsupported checkpoint version")),
    };
    let lsn = Lsn(u64::from_le_bytes(
        header[12..20].try_into().expect("8 bytes"),
    ));
    let read_ts = Timestamp(u64::from_le_bytes(
        header[20..28].try_into().expect("8 bytes"),
    ));
    let mut rows: Vec<(TableId, Row)> = Vec::new();
    let mut deletes: Vec<(TableId, u64)> = Vec::new();
    let mut trailer_ops: Option<u64> = None;
    while let Some((offset, body)) = frames.next_body()? {
        if trailer_ops.is_some() {
            return Err(invalid("checkpoint has frames after its trailer"));
        }
        if body.len() == 16 && &body[..8] == CKPT_TRAILER {
            trailer_ops = Some(u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")));
            continue;
        }
        let record = decode_body(body, offset)?;
        if record.end_ts != read_ts {
            return Err(invalid("checkpoint row frame at a foreign timestamp"));
        }
        for op in record.ops {
            match op {
                crate::log::LogOp::Write { table, row } => rows.push((table, row)),
                crate::log::LogOp::Delete { table, key } => {
                    if parent_read_ts.is_none() {
                        return Err(invalid("checkpoint contains a delete op"));
                    }
                    deletes.push((table, key));
                }
            }
        }
    }
    let trailer_ops = trailer_ops.ok_or(invalid("checkpoint is missing its trailer frame"))?;
    if frames.torn_bytes() > 0 {
        return Err(invalid("checkpoint has bytes after its trailer frame"));
    }
    if trailer_ops != (rows.len() + deletes.len()) as u64 {
        return Err(invalid("checkpoint trailer op count mismatch"));
    }
    Ok(CheckpointContents {
        lsn,
        read_ts,
        parent_read_ts,
        rows,
        deletes,
    })
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Mutable manifest state: the append handle plus the entry currently in
/// force. Lock ordering: this mutex is taken **before** the logger's flush
/// lock (via [`GroupCommitLog::rotate_to`]'s publish callback); nothing
/// takes them in the other order.
struct ManifestState {
    file: File,
    current: ManifestEntry,
}

/// A checkpoint directory: the group-commit redo log, the manifest, and the
/// checkpoint lifecycle (write → install → truncate).
///
/// One store per database instance; the engines hold it alongside their
/// in-memory state and route their redo stream through
/// [`CheckpointStore::logger`].
pub struct CheckpointStore {
    dir: PathBuf,
    logger: Arc<GroupCommitLog>,
    manifest: Mutex<ManifestState>,
    /// Cumulative checkpoint-image bytes durably installed through this
    /// store handle (base + delta). The delta A/B benchmark and the CI
    /// bytes-written regression guard read this.
    bytes_written: std::sync::atomic::AtomicU64,
}

impl CheckpointStore {
    /// Create a fresh checkpoint directory: generation 0, an empty
    /// `wal-0.log`, no checkpoint. The log flushes via the inline-leader
    /// path only (no background tick).
    pub fn create(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        Self::create_inner(dir.as_ref(), None)
    }

    /// [`create`](Self::create) with a background group-commit flush tick.
    pub fn create_with_tick(dir: impl AsRef<Path>, tick: Duration) -> Result<CheckpointStore> {
        Self::create_inner(dir.as_ref(), Some(tick))
    }

    fn create_inner(dir: &Path, tick: Option<Duration>) -> Result<CheckpointStore> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let entry = ManifestEntry {
            generation: 0,
            log_name: "wal-0.log".to_string(),
            log_base: Lsn::ZERO,
            chain: Vec::new(),
        };
        let log_path = dir.join(&entry.log_name);
        let logger = match tick {
            Some(tick) => GroupCommitLog::with_tick(&log_path, tick),
            None => GroupCommitLog::create(&log_path),
        }
        .map_err(io_err)?;
        let manifest_path = dir.join(MANIFEST);
        let mut file = File::create(&manifest_path).map_err(io_err)?;
        append_manifest_entry(&mut file, &entry)?;
        sync_parent_dir(&manifest_path);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            logger: Arc::new(logger),
            manifest: Mutex::new(ManifestState {
                file,
                current: entry,
            }),
            bytes_written: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Decode the manifest's last complete entry into a [`RecoveryPlan`].
    ///
    /// Read-only: touches neither the log nor the checkpoint file, so it is
    /// safe to call on a directory that is about to be recovered (or merely
    /// inspected). A torn manifest tail falls back to the previous entry;
    /// corruption inside the valid region, or a manifest with no complete
    /// entry at all, is an error.
    pub fn plan(dir: impl AsRef<Path>) -> Result<RecoveryPlan> {
        let dir = dir.as_ref();
        let file = File::open(dir.join(MANIFEST)).map_err(io_err)?;
        let mut frames = FrameStream::new(file, CKPT_CHUNK, 0);
        let mut last: Option<ManifestEntry> = None;
        while let Some((_, body)) = frames.next_body()? {
            last = Some(ManifestEntry::decode(body)?);
        }
        let entry = last.ok_or(invalid("manifest has no complete entry"))?;
        Ok(RecoveryPlan {
            generation: entry.generation,
            chain: entry
                .chain
                .iter()
                .map(|meta| CheckpointRef {
                    path: dir.join(&meta.name),
                    lsn: meta.lsn,
                    read_ts: meta.read_ts,
                })
                .collect(),
            log_path: dir.join(&entry.log_name),
            log_base: entry.log_base,
            manifest_valid_bytes: frames.consumed(),
        })
    }

    /// Reopen a directory after recovery.
    ///
    /// `valid_bytes` is the *physical* prefix of the live log segment that
    /// recovery decoded cleanly (the `valid_bytes` of the tail read); the
    /// segment is cut back to it and appends resume at
    /// `log_base + valid_bytes`. The manifest's own torn tail (if a crash
    /// interrupted an entry append) is cut the same way before the file is
    /// reused for appends. A stale `ckpt.tmp` from an interrupted write is
    /// deleted.
    pub fn open(
        dir: impl AsRef<Path>,
        plan: &RecoveryPlan,
        valid_bytes: u64,
    ) -> Result<CheckpointStore> {
        Self::open_inner(dir.as_ref(), plan, valid_bytes, None)
    }

    /// [`open`](Self::open) with a background group-commit flush tick.
    pub fn open_with_tick(
        dir: impl AsRef<Path>,
        plan: &RecoveryPlan,
        valid_bytes: u64,
        tick: Duration,
    ) -> Result<CheckpointStore> {
        Self::open_inner(dir.as_ref(), plan, valid_bytes, Some(tick))
    }

    fn open_inner(
        dir: &Path,
        plan: &RecoveryPlan,
        valid_bytes: u64,
        tick: Option<Duration>,
    ) -> Result<CheckpointStore> {
        let logger = match tick {
            Some(tick) => GroupCommitLog::open_append_with_tick(
                &plan.log_path,
                plan.log_base,
                valid_bytes,
                tick,
            ),
            None => GroupCommitLog::open_append(&plan.log_path, plan.log_base, valid_bytes),
        }
        .map_err(io_err)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(MANIFEST))
            .map_err(io_err)?;
        file.set_len(plan.manifest_valid_bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        let _ = fs::remove_file(dir.join("ckpt.tmp"));
        let _ = fs::remove_file(dir.join("delta.tmp"));
        let log_name = file_name(&plan.log_path)?;
        let chain = plan
            .chain
            .iter()
            .map(|ckpt| {
                Ok(CheckpointMeta {
                    name: file_name(&ckpt.path)?,
                    lsn: ckpt.lsn,
                    read_ts: ckpt.read_ts,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        // Garbage-collect image files the winning manifest entry does not
        // reference — e.g. the stale deltas of a compaction whose new base
        // was published but whose file deletes never ran. The manifest, not
        // the directory listing, is authoritative; unreferenced files are
        // dead weight.
        if let Ok(entries) = fs::read_dir(dir) {
            for dirent in entries.flatten() {
                let name = dirent.file_name();
                let Some(name) = name.to_str() else { continue };
                let is_image = (name.starts_with("ckpt-") || name.starts_with("delta-"))
                    && name.ends_with(".db");
                if is_image && !chain.iter().any(|meta| meta.name == name) {
                    let _ = fs::remove_file(dirent.path());
                }
            }
        }
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            logger: Arc::new(logger),
            manifest: Mutex::new(ManifestState {
                file,
                current: ManifestEntry {
                    generation: plan.generation,
                    log_name,
                    log_base: plan.log_base,
                    chain,
                },
            }),
            bytes_written: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The group-commit redo log; engines route their commit frames here.
    pub fn logger(&self) -> &Arc<GroupCommitLog> {
        &self.logger
    }

    /// Path of the live log segment `logger()` is appending to. The delta
    /// checkpointers scan its immutable prefix (bytes below a captured
    /// checkpoint LSN) after flushing the logger.
    pub fn log_path(&self) -> PathBuf {
        let m = self.manifest.lock();
        self.dir.join(&m.current.log_name)
    }

    /// Generation of the manifest entry currently in force.
    pub fn generation(&self) -> u64 {
        self.manifest.lock().current.generation
    }

    /// The last element of the installed checkpoint chain (the one whose
    /// LSN bounds the log tail), if any.
    pub fn last_checkpoint(&self) -> Option<CheckpointRef> {
        let m = self.manifest.lock();
        m.current.chain.last().map(|meta| CheckpointRef {
            path: self.dir.join(&meta.name),
            lsn: meta.lsn,
            read_ts: meta.read_ts,
        })
    }

    /// The installed checkpoint chain currently in force (base first, then
    /// every delta in apply order).
    pub fn chain(&self) -> Vec<CheckpointRef> {
        let m = self.manifest.lock();
        m.current
            .chain
            .iter()
            .map(|meta| CheckpointRef {
                path: self.dir.join(&meta.name),
                lsn: meta.lsn,
                read_ts: meta.read_ts,
            })
            .collect()
    }

    /// Number of files in the installed checkpoint chain (0 before the
    /// first checkpoint, 1 after a base, 1+n with n deltas).
    pub fn chain_len(&self) -> usize {
        self.manifest.lock().current.chain.len()
    }

    /// Cumulative checkpoint-image bytes durably installed through this
    /// store handle (base + delta images; resets with the handle).
    pub fn checkpoint_bytes_written(&self) -> u64 {
        self.bytes_written
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Redo-log bytes appended since the last installed checkpoint's LSN
    /// (since the beginning of time without one).
    pub fn log_bytes_since_checkpoint(&self) -> u64 {
        let since = {
            let m = self.manifest.lock();
            m.current.chain.last().map(|meta| meta.lsn.0).unwrap_or(0)
        };
        self.logger.appended_lsn().0.saturating_sub(since)
    }

    /// Should a checkpoint be taken now, per `policy`?
    pub fn checkpoint_due(&self, policy: &CheckpointPolicy) -> bool {
        policy.due(self.log_bytes_since_checkpoint())
    }

    /// Per `policy`, should the next checkpoint be a delta (extend the
    /// chain) rather than a fresh base? True only when deltas are enabled
    /// (`max_chain > 1`), a base exists to delta against, and the chain has
    /// room; otherwise the next checkpoint compacts to a base.
    pub fn delta_due(&self, policy: &CheckpointPolicy) -> bool {
        if policy.max_chain <= 1 {
            return false;
        }
        let len = self.chain_len();
        len >= 1 && len < policy.max_chain as usize
    }

    /// Open `ckpt.tmp` for a new base image covering log LSN `lsn` at
    /// snapshot timestamp `read_ts`. At most one checkpoint writer should
    /// exist at a time (they share the tmp names); the engines serialize
    /// checkpoints.
    pub fn begin_checkpoint(&self, lsn: Lsn, read_ts: Timestamp) -> Result<CheckpointWriter> {
        CheckpointWriter::create(self.dir.join("ckpt.tmp"), lsn, read_ts, None)
    }

    /// Open `delta.tmp` for a delta image covering log LSN `lsn` at
    /// snapshot timestamp `read_ts`, relative to the current chain's last
    /// element (whose `read_ts` becomes the delta's parent snapshot).
    /// Requires an installed chain to delta against.
    pub fn begin_delta(&self, lsn: Lsn, read_ts: Timestamp) -> Result<CheckpointWriter> {
        let parent = self
            .last_checkpoint()
            .ok_or(invalid("no checkpoint installed to delta against"))?;
        if read_ts < parent.read_ts {
            return Err(invalid("delta snapshot predates its parent checkpoint"));
        }
        CheckpointWriter::create(
            self.dir.join("delta.tmp"),
            lsn,
            read_ts,
            Some(parent.read_ts),
        )
    }

    /// Make a finished base image the recovery source: rename it to
    /// `ckpt-<g>.db`, fsync the directory, append (and fsync) a manifest
    /// entry whose chain is just this image. The log is untouched — call
    /// [`truncate_log`](Self::truncate_log) next to reclaim its prefix. The
    /// previously installed chain's files (base and any deltas — this is
    /// how a chain compacts) are deleted once the new entry is durable.
    pub fn install_checkpoint(&self, finished: FinishedCheckpoint) -> Result<CheckpointRef> {
        if finished.parent_read_ts.is_some() {
            return Err(invalid("a delta image must be installed via install_delta"));
        }
        let mut m = self.manifest.lock();
        let generation = m.current.generation + 1;
        let name = format!("ckpt-{generation}.db");
        let path = self.dir.join(&name);
        fs::rename(&finished.tmp_path, &path).map_err(io_err)?;
        sync_parent_dir(&path);
        let entry = ManifestEntry {
            generation,
            log_name: m.current.log_name.clone(),
            log_base: m.current.log_base,
            chain: vec![CheckpointMeta {
                name,
                lsn: finished.lsn,
                read_ts: finished.read_ts,
            }],
        };
        append_manifest_entry(&mut m.file, &entry)?;
        let old_chain = std::mem::take(&mut m.current.chain);
        m.current = entry;
        drop(m);
        self.bytes_written
            .fetch_add(finished.bytes, std::sync::atomic::Ordering::Relaxed);
        for old in old_chain {
            let _ = fs::remove_file(self.dir.join(old.name));
        }
        Ok(CheckpointRef {
            path,
            lsn: finished.lsn,
            read_ts: finished.read_ts,
        })
    }

    /// Append a finished delta image to the installed chain: rename it to
    /// `delta-<g>.db`, fsync the directory, append (and fsync) a manifest
    /// entry with the extended chain. No file is deleted — the chain's
    /// earlier elements remain the recovery prefix. The delta's parent
    /// snapshot must match the current chain tip (checkpoints are
    /// serialized by the engines, so a mismatch is a protocol bug).
    pub fn install_delta(&self, finished: FinishedCheckpoint) -> Result<CheckpointRef> {
        let Some(parent_read_ts) = finished.parent_read_ts else {
            return Err(invalid(
                "a base image must be installed via install_checkpoint",
            ));
        };
        let mut m = self.manifest.lock();
        let tip = m
            .current
            .chain
            .last()
            .ok_or(invalid("no checkpoint chain to append a delta to"))?;
        if tip.read_ts != parent_read_ts {
            return Err(invalid(
                "delta parent snapshot does not match the chain tip",
            ));
        }
        let generation = m.current.generation + 1;
        let name = format!("delta-{generation}.db");
        let path = self.dir.join(&name);
        fs::rename(&finished.tmp_path, &path).map_err(io_err)?;
        sync_parent_dir(&path);
        let mut chain = m.current.chain.clone();
        chain.push(CheckpointMeta {
            name,
            lsn: finished.lsn,
            read_ts: finished.read_ts,
        });
        let entry = ManifestEntry {
            generation,
            log_name: m.current.log_name.clone(),
            log_base: m.current.log_base,
            chain,
        };
        append_manifest_entry(&mut m.file, &entry)?;
        m.current = entry;
        drop(m);
        self.bytes_written
            .fetch_add(finished.bytes, std::sync::atomic::Ordering::Relaxed);
        Ok(CheckpointRef {
            path,
            lsn: finished.lsn,
            read_ts: finished.read_ts,
        })
    }

    /// Truncate the redo log below the chain tip's LSN by rotating onto
    /// `wal-<g>.log` (see [`GroupCommitLog::rotate_to`]). The manifest
    /// entry naming the new segment is the rotation's publish step —
    /// appended under the log's flush lock, before any new batch can harden
    /// into the new segment — so a crash at any byte recovers from the old
    /// segment. The old segment is deleted only after the entry is durable.
    pub fn truncate_log(&self) -> Result<()> {
        let mut m = self.manifest.lock();
        let tip = m
            .current
            .chain
            .last()
            .cloned()
            .ok_or(invalid("no checkpoint installed to truncate below"))?;
        let generation = m.current.generation + 1;
        let log_name = format!("wal-{generation}.log");
        let new_path = self.dir.join(&log_name);
        let old_path = self.dir.join(&m.current.log_name);
        let entry = ManifestEntry {
            generation,
            log_name,
            log_base: tip.lsn,
            chain: m.current.chain.clone(),
        };
        let state = &mut *m;
        self.logger.rotate_to(&new_path, tip.lsn, || {
            append_manifest_entry(&mut state.file, &entry)
        })?;
        m.current = entry;
        drop(m);
        let _ = fs::remove_file(old_path);
        Ok(())
    }
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.manifest.lock();
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("generation", &m.current.generation)
            .field("log", &m.current.log_name)
            .field("log_base", &m.current.log_base)
            .field("chain", &m.current.chain)
            .finish()
    }
}

fn file_name(path: &Path) -> Result<String> {
    path.file_name()
        .and_then(|name| name.to_str())
        .map(str::to_string)
        .ok_or(invalid("manifest path has no valid file name"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{read_log_file_from, LogOp, LogRecord, RedoLogger};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmdb-checkpoint-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(ts: u64, rows: usize) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: (0..rows)
                .map(|i| LogOp::Write {
                    table: TableId(0),
                    row: Row::copy_from_slice(&[i as u8; 24]),
                })
                .collect(),
        }
    }

    #[test]
    fn fresh_store_plans_generation_zero() {
        let dir = scratch_dir("fresh-plan");
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store.generation(), 0);
        assert!(store.last_checkpoint().is_none());
        drop(store);
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 0);
        assert_eq!(plan.chain, Vec::new());
        assert_eq!(plan.last_checkpoint(), None);
        assert_eq!(plan.log_base, Lsn::ZERO);
        assert_eq!(plan.log_tail_offset(), 0);
        assert_eq!(plan.log_path, dir.join("wal-0.log"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_write_read_round_trip_across_batches() {
        let dir = scratch_dir("ckpt-round-trip");
        let store = CheckpointStore::create(&dir).unwrap();
        // Enough row bytes to force several ROW_BATCH_TARGET flushes.
        let mut writer = store.begin_checkpoint(Lsn(123), Timestamp(77)).unwrap();
        let row_len = 1000;
        let total = 3 * ROW_BATCH_TARGET / row_len;
        let mut expected = Vec::new();
        for i in 0..total {
            let mut row = vec![0u8; row_len];
            row[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let table = TableId((i % 3) as u32);
            writer.write_row(table, &row).unwrap();
            expected.push((table, Row::copy_from_slice(&row)));
        }
        let finished = writer.finish().unwrap();
        assert_eq!(finished.rows, total as u64);
        let contents = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(contents.lsn, Lsn(123));
        assert_eq!(contents.read_ts, Timestamp(77));
        assert_eq!(contents.rows, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let dir = scratch_dir("ckpt-empty");
        let store = CheckpointStore::create(&dir).unwrap();
        let writer = store.begin_checkpoint(Lsn(5), Timestamp(9)).unwrap();
        let finished = writer.finish().unwrap();
        assert_eq!(finished.rows, 0);
        let contents = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(contents.rows, Vec::new());
        assert_eq!(contents.read_ts, Timestamp(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_never_reads_as_a_smaller_image() {
        let dir = scratch_dir("ckpt-truncated");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut writer = store.begin_checkpoint(Lsn(1), Timestamp(2)).unwrap();
        for i in 0..40u64 {
            writer.write_row(TableId(0), &i.to_le_bytes()).unwrap();
        }
        writer.finish().unwrap();
        let full = fs::read(dir.join("ckpt.tmp")).unwrap();
        let whole = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(whole.rows.len(), 40);
        let cut_path = dir.join("ckpt.cut");
        for cut in 0..full.len() {
            fs::write(&cut_path, &full[..cut]).unwrap();
            let err = read_checkpoint(&cut_path).expect_err("prefix must not validate");
            assert!(
                matches!(
                    err,
                    MmdbError::CheckpointInvalid { .. } | MmdbError::LogCorrupt { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_and_truncate_advance_the_manifest() {
        let dir = scratch_dir("install-truncate");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        // Ten committed records; checkpoint after the first six.
        for ts in 1..=6u64 {
            logger.append(record(ts, 2));
        }
        logger.flush().unwrap();
        let ckpt_lsn = logger.appended_lsn();
        let read_ts = Timestamp(6);
        let mut writer = store.begin_checkpoint(ckpt_lsn, read_ts).unwrap();
        for i in 0..12u64 {
            writer.write_row(TableId(0), &[i as u8; 24]).unwrap();
        }
        let installed = store.install_checkpoint(writer.finish().unwrap()).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(installed.path, dir.join("ckpt-1.db"));
        assert!(dir.join("ckpt-1.db").exists());
        assert!(!dir.join("ckpt.tmp").exists());

        for ts in 7..=10u64 {
            logger.append(record(ts, 2));
        }
        store.truncate_log().unwrap();
        assert_eq!(store.generation(), 2);
        assert!(dir.join("wal-2.log").exists());
        assert!(!dir.join("wal-0.log").exists());
        assert_eq!(logger.base_lsn(), ckpt_lsn);

        // One more commit lands in the new segment.
        logger.append(record(11, 1));
        logger.flush().unwrap();
        drop(store);

        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 2);
        assert_eq!(plan.log_path, dir.join("wal-2.log"));
        assert_eq!(plan.log_base, ckpt_lsn);
        assert_eq!(plan.chain.len(), 1);
        let ckpt = plan
            .last_checkpoint()
            .cloned()
            .expect("checkpoint installed");
        assert_eq!(ckpt.lsn, ckpt_lsn);
        assert_eq!(ckpt.read_ts, read_ts);
        let contents = read_checkpoint(&ckpt.path).unwrap();
        assert_eq!(contents.rows.len(), 12);
        // The tail holds exactly the post-checkpoint records.
        let tail = read_log_file_from(&plan.log_path, plan.log_tail_offset()).unwrap();
        let tail_ts: Vec<u64> = tail.records.iter().map(|r| r.end_ts.raw()).collect();
        assert_eq!(tail_ts, vec![7, 8, 9, 10, 11]);
        assert_eq!(tail.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_falls_back_to_the_previous_entry() {
        let dir = scratch_dir("manifest-torn");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        drop(store);
        let manifest_path = dir.join(MANIFEST);
        let full = fs::read(&manifest_path).unwrap();
        let gen0 = CheckpointStore::plan(&dir).map(|p| p.generation).unwrap();
        assert_eq!(gen0, 1);
        // Find the first entry's frame length so cuts land inside entry 2.
        let plan_at = |bytes: &[u8]| -> Result<RecoveryPlan> {
            fs::write(&manifest_path, bytes).unwrap();
            CheckpointStore::plan(&dir)
        };
        let first_len = {
            let body_len = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + body_len + 8
        };
        for cut in first_len..=full.len() {
            let plan = plan_at(&full[..cut]).unwrap();
            if cut == full.len() {
                assert_eq!(plan.generation, 1);
            } else {
                assert_eq!(plan.generation, 0, "cut at {cut}");
                assert_eq!(plan.manifest_valid_bytes, first_len as u64);
            }
        }
        // Cuts inside the first entry leave no complete entry at all.
        for cut in 0..first_len {
            let err = plan_at(&full[..cut]).expect_err("no complete entry");
            assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_cuts_the_torn_manifest_tail_and_resumes() {
        let dir = scratch_dir("open-resume");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        drop(store);
        // Simulate a crash mid-append of a third manifest entry.
        let manifest_path = dir.join(MANIFEST);
        let mut bytes = fs::read(&manifest_path).unwrap();
        let valid = bytes.len() as u64;
        bytes.extend_from_slice(&[0x17; 5]);
        fs::write(&manifest_path, &bytes).unwrap();

        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.manifest_valid_bytes, valid);
        // `valid_bytes` is a physical file offset — exactly what `open`
        // wants for the cut.
        let tail = read_log_file_from(&plan.log_path, plan.log_tail_offset()).unwrap();
        let store = CheckpointStore::open(&dir, &plan, tail.valid_bytes).unwrap();
        assert_eq!(store.generation(), 1);
        // A new install appends cleanly after the cut tail.
        let logger = Arc::clone(store.logger());
        logger.append(record(2, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(2))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        store.truncate_log().unwrap();
        drop(store);
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 3);
        assert_eq!(plan.last_checkpoint().unwrap().read_ts, Timestamp(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_round_trips_writes_and_deletes() {
        let dir = scratch_dir("delta-round-trip");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();

        logger.append(record(2, 1));
        logger.flush().unwrap();
        let mut writer = store
            .begin_delta(logger.appended_lsn(), Timestamp(5))
            .unwrap();
        assert_eq!(writer.parent_read_ts(), Some(Timestamp(1)));
        writer.write_row(TableId(0), &[7u8; 24]).unwrap();
        writer.write_delete(TableId(1), 42).unwrap();
        writer.write_delete(TableId(0), 9).unwrap();
        let finished = writer.finish().unwrap();
        assert_eq!(finished.rows, 1);
        assert_eq!(finished.deletes, 2);
        let contents = read_checkpoint(dir.join("delta.tmp")).unwrap();
        assert_eq!(contents.read_ts, Timestamp(5));
        assert_eq!(contents.parent_read_ts, Some(Timestamp(1)));
        assert_eq!(
            contents.rows,
            vec![(TableId(0), Row::copy_from_slice(&[7u8; 24]))]
        );
        assert_eq!(contents.deletes, vec![(TableId(1), 42), (TableId(0), 9)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn base_writer_rejects_deletes() {
        let dir = scratch_dir("base-no-deletes");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut writer = store.begin_checkpoint(Lsn(1), Timestamp(1)).unwrap();
        let err = writer.write_delete(TableId(0), 1).expect_err("must reject");
        assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_requires_an_installed_base() {
        let dir = scratch_dir("delta-needs-base");
        let store = CheckpointStore::create(&dir).unwrap();
        let err = match store.begin_delta(Lsn(1), Timestamp(1)) {
            Ok(_) => panic!("no base yet"),
            Err(err) => err,
        };
        assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_delta_extends_the_chain_and_compaction_resets_it() {
        let dir = scratch_dir("delta-chain");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        let base_bytes = store.checkpoint_bytes_written();
        assert!(base_bytes > 0);

        // Two deltas extend the chain; the manifest survives reopen.
        for (ts, expect_len) in [(3u64, 2usize), (6, 3)] {
            logger.append(record(ts, 1));
            logger.flush().unwrap();
            let mut writer = store
                .begin_delta(logger.appended_lsn(), Timestamp(ts))
                .unwrap();
            writer.write_row(TableId(0), &[ts as u8; 16]).unwrap();
            store.install_delta(writer.finish().unwrap()).unwrap();
            assert_eq!(store.chain_len(), expect_len);
        }
        assert!(store.checkpoint_bytes_written() > base_bytes);
        assert!(dir.join("ckpt-1.db").exists());
        assert!(dir.join("delta-2.db").exists());
        assert!(dir.join("delta-3.db").exists());
        store.truncate_log().unwrap();

        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.chain.len(), 3);
        assert_eq!(plan.chain[0].path, dir.join("ckpt-1.db"));
        assert_eq!(plan.chain[1].path, dir.join("delta-2.db"));
        assert_eq!(plan.chain[2].path, dir.join("delta-3.db"));
        assert_eq!(plan.last_checkpoint().unwrap().read_ts, Timestamp(6));
        assert_eq!(plan.log_base, plan.last_checkpoint().unwrap().lsn);

        // Policy: with max_chain 3 the full chain means the next
        // checkpoint compacts.
        let policy = CheckpointPolicy::delta(1, 3);
        assert!(!store.delta_due(&policy));
        let policy = CheckpointPolicy::delta(1, 4);
        assert!(store.delta_due(&policy));
        assert!(!store.delta_due(&CheckpointPolicy::every_log_bytes(1)));

        // Compaction: a fresh base resets the chain and removes the old
        // chain's files.
        logger.append(record(7, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(7))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        assert_eq!(store.chain_len(), 1);
        assert!(!dir.join("ckpt-1.db").exists());
        assert!(!dir.join("delta-2.db").exists());
        assert!(!dir.join("delta-3.db").exists());
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.chain.len(), 1);
        assert_eq!(plan.last_checkpoint().unwrap().read_ts, Timestamp(7));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_routes_enforce_image_kind() {
        let dir = scratch_dir("install-kind");
        let store = CheckpointStore::create(&dir).unwrap();
        let writer = store.begin_checkpoint(Lsn(1), Timestamp(1)).unwrap();
        let finished = writer.finish().unwrap();
        let err = store
            .install_delta(finished)
            .expect_err("base via install_delta");
        assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        let writer = store.begin_checkpoint(Lsn(1), Timestamp(1)).unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        let writer = store.begin_delta(Lsn(2), Timestamp(2)).unwrap();
        let finished = writer.finish().unwrap();
        let err = store
            .install_checkpoint(finished)
            .expect_err("delta via install_checkpoint");
        assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_unreferenced_image_files() {
        let dir = scratch_dir("open-sweep");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        drop(store);
        // A crash mid-compaction can leave stale images and tmp files.
        fs::write(dir.join("delta-9.db"), b"stale").unwrap();
        fs::write(dir.join("ckpt.tmp"), b"stale").unwrap();
        fs::write(dir.join("delta.tmp"), b"stale").unwrap();
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.chain.len(), 1);
        let tail = read_log_file_from(&plan.log_path, plan.log_tail_offset()).unwrap();
        let store = CheckpointStore::open(&dir, &plan, tail.valid_bytes).unwrap();
        assert_eq!(store.chain_len(), 1);
        assert!(!dir.join("delta-9.db").exists());
        assert!(!dir.join("ckpt.tmp").exists());
        assert!(!dir.join("delta.tmp").exists());
        assert!(dir.join("ckpt-1.db").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_due_tracks_log_growth() {
        let dir = scratch_dir("due");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        assert!(!store.checkpoint_due(&CheckpointPolicy::MANUAL));
        let policy = CheckpointPolicy::every_log_bytes(64);
        assert!(!store.checkpoint_due(&policy));
        while store.log_bytes_since_checkpoint() < 64 {
            logger.append(record(1, 1));
        }
        assert!(store.checkpoint_due(&policy));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        assert!(!store.checkpoint_due(&policy));
        let _ = fs::remove_dir_all(&dir);
    }
}
