//! Checkpointing and redo-log truncation.
//!
//! Without checkpoints the redo log grows without bound and recovery time is
//! proportional to the whole history. This module bounds both: a *checkpoint*
//! is a consistent snapshot-isolation image of every table serialized to a
//! file, and once it is durably installed the log prefix below the
//! checkpoint's LSN is dead weight — recovery becomes *load checkpoint +
//! replay tail* (paper §3.3: "periodically, the system checkpoints the
//! database so the log can be truncated").
//!
//! ## Directory layout
//!
//! A [`CheckpointStore`] owns one directory:
//!
//! ```text
//! <dir>/MANIFEST       append-only, framed; the recovery root
//! <dir>/wal-<g>.log    the redo log segment of generation <g>
//! <dir>/ckpt-<g>.db    the checkpoint installed at generation <g>
//! <dir>/ckpt.tmp       a checkpoint being written (never read by recovery)
//! ```
//!
//! Every file uses the redo log's wire discipline (length prefix with XOR
//! self-check, body, trailing checksum — see [`crate::log`]), so a torn tail
//! is always distinguishable from corruption.
//!
//! ## The manifest
//!
//! The `MANIFEST` is an append-only sequence of framed entries; the **last
//! complete entry wins**. Each entry names the live log segment (and the
//! logical LSN of its byte 0) plus, optionally, the installed checkpoint
//! (its file, LSN, and snapshot read timestamp). An entry is only ever
//! appended *after* every file it references is durable, so the last
//! complete entry always describes files that exist with valid contents; a
//! crash mid-append leaves a torn tail that recovery skips, falling back to
//! the previous entry.
//!
//! ## The checkpoint protocol
//!
//! 1. **Write** — [`CheckpointStore::begin_checkpoint`] opens `ckpt.tmp`;
//!    the caller streams every visible row through
//!    [`CheckpointWriter::write_row`] and calls [`CheckpointWriter::finish`],
//!    which appends a trailer frame (row count) and fsyncs. A crash here
//!    leaves only a dead tmp file.
//! 2. **Install** — [`CheckpointStore::install_checkpoint`] renames the tmp
//!    file to `ckpt-<g>.db`, fsyncs the directory, then appends (and fsyncs)
//!    a manifest entry pointing at it. A crash before the entry is complete
//!    recovers from the previous manifest entry.
//! 3. **Truncate** — [`CheckpointStore::truncate_log`] rotates the
//!    [`GroupCommitLog`] onto `wal-<g>.log` keeping only bytes at LSNs `>=`
//!    the checkpoint LSN; the manifest entry naming the new segment is
//!    appended *inside* the rotation's publish window (under the flush lock,
//!    before any new batch can harden into the new segment), so a crash at
//!    any byte of the truncation recovers from the old segment. Only after
//!    the entry is durable is the old segment deleted.
//!
//! Each step is individually crash-atomic, which is why they are exposed as
//! separate operations: the recovery crash tests drive byte-level crash
//! states between and inside each one.
//!
//! ## Consistency contract
//!
//! The writer records the pair `(ckpt_lsn, read_ts)` chosen by the caller.
//! The engines capture `ckpt_lsn = appended_lsn()` **before** drawing the
//! snapshot timestamp `read_ts`; since both engines draw a commit's end
//! timestamp before appending its frame, every frame wholly below `ckpt_lsn`
//! commits at `end_ts < read_ts` and is therefore inside the snapshot.
//! Recovery loads the checkpoint rows, then replays the log tail from
//! `ckpt_lsn`, skipping records with `end_ts <= read_ts` (already in the
//! image). Rows are serialized as ordinary redo `Write` ops at
//! `end_ts = read_ts`, so the checkpoint is literally a compacted,
//! reordered prefix of the log.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mmdb_common::durability::CheckpointPolicy;
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{TableId, Timestamp};
use mmdb_common::row::Row;

use crate::group_commit::{sync_parent_dir, GroupCommitLog};
use crate::log::{decode_body, encode_frame_into, frame_body_into, FrameStream, LogOpRef, Lsn};

/// Magic bytes opening a checkpoint file's header frame.
const CKPT_MAGIC: &[u8; 8] = b"MMDBCKP1";
/// Magic bytes of the trailer frame that marks a checkpoint complete.
const CKPT_TRAILER: &[u8; 8] = b"MMDBCKPE";
/// Checkpoint format version (inside the header frame).
const CKPT_VERSION: u32 = 1;
/// The manifest file name inside a checkpoint directory.
const MANIFEST: &str = "MANIFEST";
/// Row frames are flushed once the pending batch reaches this many bytes.
const ROW_BATCH_TARGET: usize = 64 * 1024;
/// Chunk size for streaming checkpoint/manifest reads.
const CKPT_CHUNK: usize = 64 * 1024;

fn io_err(e: std::io::Error) -> MmdbError {
    MmdbError::LogIo(e.to_string())
}

fn invalid(reason: &'static str) -> MmdbError {
    MmdbError::CheckpointInvalid { reason }
}

// ---------------------------------------------------------------------------
// Manifest entries
// ---------------------------------------------------------------------------

/// One manifest entry: the state of the directory at a generation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    /// Monotone generation counter; bumped by install and truncate.
    generation: u64,
    /// File name (within the directory) of the live log segment.
    log_name: String,
    /// Logical LSN of the log segment's byte 0.
    log_base: Lsn,
    /// The installed checkpoint, if any.
    checkpoint: Option<CheckpointMeta>,
}

/// The checkpoint portion of a manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckpointMeta {
    /// File name (within the directory) of the checkpoint.
    name: String,
    /// Log LSN the checkpoint covers: every record below it is in the image.
    lsn: Lsn,
    /// Snapshot read timestamp of the image.
    read_ts: Timestamp,
}

impl ManifestEntry {
    fn encode_into(&self, body: &mut Vec<u8>) {
        body.extend_from_slice(&self.generation.to_le_bytes());
        body.extend_from_slice(&self.log_base.0.to_le_bytes());
        body.extend_from_slice(&(self.log_name.len() as u32).to_le_bytes());
        body.extend_from_slice(self.log_name.as_bytes());
        match &self.checkpoint {
            None => body.push(0),
            Some(meta) => {
                body.push(1);
                body.extend_from_slice(&meta.lsn.0.to_le_bytes());
                body.extend_from_slice(&meta.read_ts.raw().to_le_bytes());
                body.extend_from_slice(&(meta.name.len() as u32).to_le_bytes());
                body.extend_from_slice(meta.name.as_bytes());
            }
        }
    }

    /// Decode an entry body. The frame checksum already passed, so any
    /// structural mismatch here means the manifest was written by something
    /// else (or a format bug), not a crash — [`MmdbError::CheckpointInvalid`].
    fn decode(body: &[u8]) -> Result<ManifestEntry> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            let slice = body
                .get(pos..pos + n)
                .ok_or(invalid("manifest entry body too short"))?;
            pos += n;
            Ok(slice)
        };
        let generation = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let log_base = Lsn(u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")));
        let name_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let log_name = String::from_utf8(take(name_len)?.to_vec())
            .map_err(|_| invalid("manifest log name is not UTF-8"))?;
        let checkpoint = match take(1)?[0] {
            0 => None,
            1 => {
                let lsn = Lsn(u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")));
                let read_ts = Timestamp(u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")));
                let name_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
                let name = String::from_utf8(take(name_len)?.to_vec())
                    .map_err(|_| invalid("manifest checkpoint name is not UTF-8"))?;
                Some(CheckpointMeta { name, lsn, read_ts })
            }
            _ => return Err(invalid("manifest entry has an unknown checkpoint tag")),
        };
        if pos != body.len() {
            return Err(invalid("manifest entry has trailing bytes"));
        }
        Ok(ManifestEntry {
            generation,
            log_name,
            log_base,
            checkpoint,
        })
    }
}

/// Frame an entry and append it durably (write + fsync).
fn append_manifest_entry(file: &mut File, entry: &ManifestEntry) -> Result<()> {
    let mut body = Vec::with_capacity(64);
    entry.encode_into(&mut body);
    let mut frame = Vec::with_capacity(body.len() + 16);
    frame_body_into(&mut frame, &body);
    file.write_all(&frame).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Recovery plan
// ---------------------------------------------------------------------------

/// A reference to an installed checkpoint, resolved to a full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRef {
    /// Path of the checkpoint file.
    pub path: PathBuf,
    /// Log LSN the checkpoint covers.
    pub lsn: Lsn,
    /// Snapshot read timestamp of the image.
    pub read_ts: Timestamp,
}

/// What recovery should do, decoded from the manifest's last complete entry.
///
/// Produced by [`CheckpointStore::plan`] without touching the log or the
/// checkpoint file, so callers can sequence their own recovery: read the
/// checkpoint (if any), stream the log tail from
/// [`RecoveryPlan::log_tail_offset`], then reopen the store with
/// [`CheckpointStore::open`] passing the physical prefix the tail read
/// validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// Generation of the winning manifest entry.
    pub generation: u64,
    /// The installed checkpoint to load first, if any.
    pub checkpoint: Option<CheckpointRef>,
    /// Path of the live log segment.
    pub log_path: PathBuf,
    /// Logical LSN of the log segment's byte 0.
    pub log_base: Lsn,
    /// Valid prefix of the manifest itself (a crash mid-append leaves a torn
    /// tail that [`CheckpointStore::open`] cuts before appending again).
    pub manifest_valid_bytes: u64,
}

impl RecoveryPlan {
    /// Physical file offset in the log segment where tail replay starts:
    /// the checkpoint LSN translated into the segment, or 0 without one.
    pub fn log_tail_offset(&self) -> u64 {
        match &self.checkpoint {
            Some(ckpt) => ckpt.lsn.0.saturating_sub(self.log_base.0),
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint writer / reader
// ---------------------------------------------------------------------------

/// Streams a checkpoint image into `ckpt.tmp`.
///
/// Rows are buffered and emitted as ordinary redo-log `Write` frames (at
/// `end_ts = read_ts`, batched to `ROW_BATCH_TARGET` bytes per frame), framed
/// between a header and a trailer. Obtain one from
/// [`CheckpointStore::begin_checkpoint`], feed every visible row through
/// [`write_row`](Self::write_row), then [`finish`](Self::finish).
pub struct CheckpointWriter {
    file: File,
    tmp_path: PathBuf,
    lsn: Lsn,
    read_ts: Timestamp,
    rows: u64,
    batch: Vec<(TableId, Row)>,
    batch_bytes: usize,
    frame: Vec<u8>,
}

/// A finished (written + fsynced) checkpoint still under its temporary
/// name. Pass to [`CheckpointStore::install_checkpoint`] to make it the
/// recovery source.
pub struct FinishedCheckpoint {
    tmp_path: PathBuf,
    lsn: Lsn,
    read_ts: Timestamp,
    /// Number of rows in the image.
    pub rows: u64,
    /// Size of the checkpoint file in bytes.
    pub bytes: u64,
}

impl CheckpointWriter {
    fn create(tmp_path: PathBuf, lsn: Lsn, read_ts: Timestamp) -> Result<CheckpointWriter> {
        let mut file = File::create(&tmp_path).map_err(io_err)?;
        let mut header = Vec::with_capacity(28);
        header.extend_from_slice(CKPT_MAGIC);
        header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        header.extend_from_slice(&lsn.0.to_le_bytes());
        header.extend_from_slice(&read_ts.raw().to_le_bytes());
        let mut frame = Vec::with_capacity(header.len() + 16);
        frame_body_into(&mut frame, &header);
        file.write_all(&frame).map_err(io_err)?;
        Ok(CheckpointWriter {
            file,
            tmp_path,
            lsn,
            read_ts,
            rows: 0,
            batch: Vec::new(),
            batch_bytes: 0,
            frame,
        })
    }

    /// The snapshot read timestamp this image is being taken at.
    pub fn read_ts(&self) -> Timestamp {
        self.read_ts
    }

    /// The log LSN this image covers.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// Add one visible row to the image. Rows may arrive in any order; the
    /// image carries no ordering guarantees beyond "one op per live row".
    pub fn write_row(&mut self, table: TableId, row: &[u8]) -> Result<()> {
        self.batch.push((table, Row::copy_from_slice(row)));
        self.batch_bytes += row.len() + 9;
        self.rows += 1;
        if self.batch_bytes >= ROW_BATCH_TARGET {
            self.flush_batch()?;
        }
        Ok(())
    }

    fn flush_batch(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        self.frame.clear();
        encode_frame_into(
            &mut self.frame,
            self.read_ts,
            self.batch
                .iter()
                .map(|(table, row)| LogOpRef::Write { table: *table, row }),
        );
        self.file.write_all(&self.frame).map_err(io_err)?;
        self.batch.clear();
        self.batch_bytes = 0;
        Ok(())
    }

    /// Flush the last batch, append the trailer frame (which is what marks
    /// the image complete — a checkpoint without it is treated as torn and
    /// never loaded) and fsync.
    pub fn finish(mut self) -> Result<FinishedCheckpoint> {
        self.flush_batch()?;
        let mut trailer = Vec::with_capacity(16);
        trailer.extend_from_slice(CKPT_TRAILER);
        trailer.extend_from_slice(&self.rows.to_le_bytes());
        self.frame.clear();
        frame_body_into(&mut self.frame, &trailer);
        self.file.write_all(&self.frame).map_err(io_err)?;
        self.file.sync_all().map_err(io_err)?;
        let bytes = self.file.stream_position().map_err(io_err)?;
        Ok(FinishedCheckpoint {
            tmp_path: self.tmp_path,
            lsn: self.lsn,
            read_ts: self.read_ts,
            rows: self.rows,
            bytes,
        })
    }
}

/// A fully validated checkpoint image, loaded into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointContents {
    /// Log LSN the image covers.
    pub lsn: Lsn,
    /// Snapshot read timestamp of the image.
    pub read_ts: Timestamp,
    /// Every row in the image, in file order.
    pub rows: Vec<(TableId, Row)>,
}

/// Read and validate a checkpoint file.
///
/// Validation is strict because a checkpoint is only ever read after the
/// manifest durably named it, at which point it must be perfect: header
/// magic/version, every row frame's checksum, the trailer's row count, and
/// the absence of trailing bytes are all checked. Any shortfall —
/// including a torn tail, which in a log would be tolerated — is
/// [`MmdbError::CheckpointInvalid`]: loading half a checkpoint would
/// silently lose rows.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointContents> {
    let file = File::open(path.as_ref()).map_err(io_err)?;
    let mut frames = FrameStream::new(file, CKPT_CHUNK, 0);
    let header = match frames.next_body()? {
        Some((_, body)) => body,
        None => return Err(invalid("checkpoint file has no header frame")),
    };
    if header.len() != 28 || &header[..8] != CKPT_MAGIC {
        return Err(invalid("checkpoint header magic mismatch"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(invalid("unsupported checkpoint version"));
    }
    let lsn = Lsn(u64::from_le_bytes(
        header[12..20].try_into().expect("8 bytes"),
    ));
    let read_ts = Timestamp(u64::from_le_bytes(
        header[20..28].try_into().expect("8 bytes"),
    ));
    let mut rows: Vec<(TableId, Row)> = Vec::new();
    let mut trailer_rows: Option<u64> = None;
    while let Some((offset, body)) = frames.next_body()? {
        if trailer_rows.is_some() {
            return Err(invalid("checkpoint has frames after its trailer"));
        }
        if body.len() == 16 && &body[..8] == CKPT_TRAILER {
            trailer_rows = Some(u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")));
            continue;
        }
        let record = decode_body(body, offset)?;
        if record.end_ts != read_ts {
            return Err(invalid("checkpoint row frame at a foreign timestamp"));
        }
        for op in record.ops {
            match op {
                crate::log::LogOp::Write { table, row } => rows.push((table, row)),
                crate::log::LogOp::Delete { .. } => {
                    return Err(invalid("checkpoint contains a delete op"));
                }
            }
        }
    }
    let trailer_rows = trailer_rows.ok_or(invalid("checkpoint is missing its trailer frame"))?;
    if frames.torn_bytes() > 0 {
        return Err(invalid("checkpoint has bytes after its trailer frame"));
    }
    if trailer_rows != rows.len() as u64 {
        return Err(invalid("checkpoint trailer row count mismatch"));
    }
    Ok(CheckpointContents { lsn, read_ts, rows })
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Mutable manifest state: the append handle plus the entry currently in
/// force. Lock ordering: this mutex is taken **before** the logger's flush
/// lock (via [`GroupCommitLog::rotate_to`]'s publish callback); nothing
/// takes them in the other order.
struct ManifestState {
    file: File,
    current: ManifestEntry,
}

/// A checkpoint directory: the group-commit redo log, the manifest, and the
/// checkpoint lifecycle (write → install → truncate).
///
/// One store per database instance; the engines hold it alongside their
/// in-memory state and route their redo stream through
/// [`CheckpointStore::logger`].
pub struct CheckpointStore {
    dir: PathBuf,
    logger: Arc<GroupCommitLog>,
    manifest: Mutex<ManifestState>,
}

impl CheckpointStore {
    /// Create a fresh checkpoint directory: generation 0, an empty
    /// `wal-0.log`, no checkpoint. The log flushes via the inline-leader
    /// path only (no background tick).
    pub fn create(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        Self::create_inner(dir.as_ref(), None)
    }

    /// [`create`](Self::create) with a background group-commit flush tick.
    pub fn create_with_tick(dir: impl AsRef<Path>, tick: Duration) -> Result<CheckpointStore> {
        Self::create_inner(dir.as_ref(), Some(tick))
    }

    fn create_inner(dir: &Path, tick: Option<Duration>) -> Result<CheckpointStore> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let entry = ManifestEntry {
            generation: 0,
            log_name: "wal-0.log".to_string(),
            log_base: Lsn::ZERO,
            checkpoint: None,
        };
        let log_path = dir.join(&entry.log_name);
        let logger = match tick {
            Some(tick) => GroupCommitLog::with_tick(&log_path, tick),
            None => GroupCommitLog::create(&log_path),
        }
        .map_err(io_err)?;
        let manifest_path = dir.join(MANIFEST);
        let mut file = File::create(&manifest_path).map_err(io_err)?;
        append_manifest_entry(&mut file, &entry)?;
        sync_parent_dir(&manifest_path);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            logger: Arc::new(logger),
            manifest: Mutex::new(ManifestState {
                file,
                current: entry,
            }),
        })
    }

    /// Decode the manifest's last complete entry into a [`RecoveryPlan`].
    ///
    /// Read-only: touches neither the log nor the checkpoint file, so it is
    /// safe to call on a directory that is about to be recovered (or merely
    /// inspected). A torn manifest tail falls back to the previous entry;
    /// corruption inside the valid region, or a manifest with no complete
    /// entry at all, is an error.
    pub fn plan(dir: impl AsRef<Path>) -> Result<RecoveryPlan> {
        let dir = dir.as_ref();
        let file = File::open(dir.join(MANIFEST)).map_err(io_err)?;
        let mut frames = FrameStream::new(file, CKPT_CHUNK, 0);
        let mut last: Option<ManifestEntry> = None;
        while let Some((_, body)) = frames.next_body()? {
            last = Some(ManifestEntry::decode(body)?);
        }
        let entry = last.ok_or(invalid("manifest has no complete entry"))?;
        Ok(RecoveryPlan {
            generation: entry.generation,
            checkpoint: entry.checkpoint.as_ref().map(|meta| CheckpointRef {
                path: dir.join(&meta.name),
                lsn: meta.lsn,
                read_ts: meta.read_ts,
            }),
            log_path: dir.join(&entry.log_name),
            log_base: entry.log_base,
            manifest_valid_bytes: frames.consumed(),
        })
    }

    /// Reopen a directory after recovery.
    ///
    /// `valid_bytes` is the *physical* prefix of the live log segment that
    /// recovery decoded cleanly (the `valid_bytes` of the tail read); the
    /// segment is cut back to it and appends resume at
    /// `log_base + valid_bytes`. The manifest's own torn tail (if a crash
    /// interrupted an entry append) is cut the same way before the file is
    /// reused for appends. A stale `ckpt.tmp` from an interrupted write is
    /// deleted.
    pub fn open(
        dir: impl AsRef<Path>,
        plan: &RecoveryPlan,
        valid_bytes: u64,
    ) -> Result<CheckpointStore> {
        Self::open_inner(dir.as_ref(), plan, valid_bytes, None)
    }

    /// [`open`](Self::open) with a background group-commit flush tick.
    pub fn open_with_tick(
        dir: impl AsRef<Path>,
        plan: &RecoveryPlan,
        valid_bytes: u64,
        tick: Duration,
    ) -> Result<CheckpointStore> {
        Self::open_inner(dir.as_ref(), plan, valid_bytes, Some(tick))
    }

    fn open_inner(
        dir: &Path,
        plan: &RecoveryPlan,
        valid_bytes: u64,
        tick: Option<Duration>,
    ) -> Result<CheckpointStore> {
        let logger = match tick {
            Some(tick) => GroupCommitLog::open_append_with_tick(
                &plan.log_path,
                plan.log_base,
                valid_bytes,
                tick,
            ),
            None => GroupCommitLog::open_append(&plan.log_path, plan.log_base, valid_bytes),
        }
        .map_err(io_err)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(MANIFEST))
            .map_err(io_err)?;
        file.set_len(plan.manifest_valid_bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        let _ = fs::remove_file(dir.join("ckpt.tmp"));
        let log_name = file_name(&plan.log_path)?;
        let checkpoint = match &plan.checkpoint {
            None => None,
            Some(ckpt) => Some(CheckpointMeta {
                name: file_name(&ckpt.path)?,
                lsn: ckpt.lsn,
                read_ts: ckpt.read_ts,
            }),
        };
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            logger: Arc::new(logger),
            manifest: Mutex::new(ManifestState {
                file,
                current: ManifestEntry {
                    generation: plan.generation,
                    log_name,
                    log_base: plan.log_base,
                    checkpoint,
                },
            }),
        })
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The group-commit redo log; engines route their commit frames here.
    pub fn logger(&self) -> &Arc<GroupCommitLog> {
        &self.logger
    }

    /// Generation of the manifest entry currently in force.
    pub fn generation(&self) -> u64 {
        self.manifest.lock().current.generation
    }

    /// The installed checkpoint currently in force, if any.
    pub fn last_checkpoint(&self) -> Option<CheckpointRef> {
        let m = self.manifest.lock();
        m.current.checkpoint.as_ref().map(|meta| CheckpointRef {
            path: self.dir.join(&meta.name),
            lsn: meta.lsn,
            read_ts: meta.read_ts,
        })
    }

    /// Redo-log bytes appended since the last installed checkpoint's LSN
    /// (since the beginning of time without one).
    pub fn log_bytes_since_checkpoint(&self) -> u64 {
        let since = {
            let m = self.manifest.lock();
            m.current
                .checkpoint
                .as_ref()
                .map(|meta| meta.lsn.0)
                .unwrap_or(0)
        };
        self.logger.appended_lsn().0.saturating_sub(since)
    }

    /// Should a checkpoint be taken now, per `policy`?
    pub fn checkpoint_due(&self, policy: &CheckpointPolicy) -> bool {
        policy.due(self.log_bytes_since_checkpoint())
    }

    /// Open `ckpt.tmp` for a new image covering log LSN `lsn` at snapshot
    /// timestamp `read_ts`. At most one checkpoint writer should exist at a
    /// time (they share the tmp name); the engines serialize checkpoints.
    pub fn begin_checkpoint(&self, lsn: Lsn, read_ts: Timestamp) -> Result<CheckpointWriter> {
        CheckpointWriter::create(self.dir.join("ckpt.tmp"), lsn, read_ts)
    }

    /// Make a finished image the recovery source: rename it to
    /// `ckpt-<g>.db`, fsync the directory, append (and fsync) a manifest
    /// entry naming it. The log is untouched — call
    /// [`truncate_log`](Self::truncate_log) next to reclaim its prefix. The
    /// previously installed checkpoint file (if any) is deleted once the new
    /// entry is durable.
    pub fn install_checkpoint(&self, finished: FinishedCheckpoint) -> Result<CheckpointRef> {
        let mut m = self.manifest.lock();
        let generation = m.current.generation + 1;
        let name = format!("ckpt-{generation}.db");
        let path = self.dir.join(&name);
        fs::rename(&finished.tmp_path, &path).map_err(io_err)?;
        sync_parent_dir(&path);
        let entry = ManifestEntry {
            generation,
            log_name: m.current.log_name.clone(),
            log_base: m.current.log_base,
            checkpoint: Some(CheckpointMeta {
                name,
                lsn: finished.lsn,
                read_ts: finished.read_ts,
            }),
        };
        append_manifest_entry(&mut m.file, &entry)?;
        let old = m.current.checkpoint.take();
        m.current = entry;
        drop(m);
        if let Some(old) = old {
            let _ = fs::remove_file(self.dir.join(old.name));
        }
        Ok(CheckpointRef {
            path,
            lsn: finished.lsn,
            read_ts: finished.read_ts,
        })
    }

    /// Truncate the redo log below the installed checkpoint's LSN by
    /// rotating onto `wal-<g>.log` (see [`GroupCommitLog::rotate_to`]). The
    /// manifest entry naming the new segment is the rotation's publish
    /// step — appended under the log's flush lock, before any new batch can
    /// harden into the new segment — so a crash at any byte recovers from
    /// the old segment. The old segment is deleted only after the entry is
    /// durable.
    pub fn truncate_log(&self) -> Result<()> {
        let mut m = self.manifest.lock();
        let ckpt = m
            .current
            .checkpoint
            .clone()
            .ok_or(invalid("no checkpoint installed to truncate below"))?;
        let generation = m.current.generation + 1;
        let log_name = format!("wal-{generation}.log");
        let new_path = self.dir.join(&log_name);
        let old_path = self.dir.join(&m.current.log_name);
        let entry = ManifestEntry {
            generation,
            log_name,
            log_base: ckpt.lsn,
            checkpoint: Some(ckpt.clone()),
        };
        let state = &mut *m;
        self.logger.rotate_to(&new_path, ckpt.lsn, || {
            append_manifest_entry(&mut state.file, &entry)
        })?;
        m.current = entry;
        drop(m);
        let _ = fs::remove_file(old_path);
        Ok(())
    }
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.manifest.lock();
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("generation", &m.current.generation)
            .field("log", &m.current.log_name)
            .field("log_base", &m.current.log_base)
            .field("checkpoint", &m.current.checkpoint)
            .finish()
    }
}

fn file_name(path: &Path) -> Result<String> {
    path.file_name()
        .and_then(|name| name.to_str())
        .map(str::to_string)
        .ok_or(invalid("manifest path has no valid file name"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{read_log_file_from, LogOp, LogRecord, RedoLogger};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmdb-checkpoint-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(ts: u64, rows: usize) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: (0..rows)
                .map(|i| LogOp::Write {
                    table: TableId(0),
                    row: Row::copy_from_slice(&[i as u8; 24]),
                })
                .collect(),
        }
    }

    #[test]
    fn fresh_store_plans_generation_zero() {
        let dir = scratch_dir("fresh-plan");
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store.generation(), 0);
        assert!(store.last_checkpoint().is_none());
        drop(store);
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 0);
        assert_eq!(plan.checkpoint, None);
        assert_eq!(plan.log_base, Lsn::ZERO);
        assert_eq!(plan.log_tail_offset(), 0);
        assert_eq!(plan.log_path, dir.join("wal-0.log"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_write_read_round_trip_across_batches() {
        let dir = scratch_dir("ckpt-round-trip");
        let store = CheckpointStore::create(&dir).unwrap();
        // Enough row bytes to force several ROW_BATCH_TARGET flushes.
        let mut writer = store.begin_checkpoint(Lsn(123), Timestamp(77)).unwrap();
        let row_len = 1000;
        let total = 3 * ROW_BATCH_TARGET / row_len;
        let mut expected = Vec::new();
        for i in 0..total {
            let mut row = vec![0u8; row_len];
            row[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let table = TableId((i % 3) as u32);
            writer.write_row(table, &row).unwrap();
            expected.push((table, Row::copy_from_slice(&row)));
        }
        let finished = writer.finish().unwrap();
        assert_eq!(finished.rows, total as u64);
        let contents = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(contents.lsn, Lsn(123));
        assert_eq!(contents.read_ts, Timestamp(77));
        assert_eq!(contents.rows, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let dir = scratch_dir("ckpt-empty");
        let store = CheckpointStore::create(&dir).unwrap();
        let writer = store.begin_checkpoint(Lsn(5), Timestamp(9)).unwrap();
        let finished = writer.finish().unwrap();
        assert_eq!(finished.rows, 0);
        let contents = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(contents.rows, Vec::new());
        assert_eq!(contents.read_ts, Timestamp(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_never_reads_as_a_smaller_image() {
        let dir = scratch_dir("ckpt-truncated");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut writer = store.begin_checkpoint(Lsn(1), Timestamp(2)).unwrap();
        for i in 0..40u64 {
            writer.write_row(TableId(0), &i.to_le_bytes()).unwrap();
        }
        writer.finish().unwrap();
        let full = fs::read(dir.join("ckpt.tmp")).unwrap();
        let whole = read_checkpoint(dir.join("ckpt.tmp")).unwrap();
        assert_eq!(whole.rows.len(), 40);
        let cut_path = dir.join("ckpt.cut");
        for cut in 0..full.len() {
            fs::write(&cut_path, &full[..cut]).unwrap();
            let err = read_checkpoint(&cut_path).expect_err("prefix must not validate");
            assert!(
                matches!(
                    err,
                    MmdbError::CheckpointInvalid { .. } | MmdbError::LogCorrupt { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_and_truncate_advance_the_manifest() {
        let dir = scratch_dir("install-truncate");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        // Ten committed records; checkpoint after the first six.
        for ts in 1..=6u64 {
            logger.append(record(ts, 2));
        }
        logger.flush().unwrap();
        let ckpt_lsn = logger.appended_lsn();
        let read_ts = Timestamp(6);
        let mut writer = store.begin_checkpoint(ckpt_lsn, read_ts).unwrap();
        for i in 0..12u64 {
            writer.write_row(TableId(0), &[i as u8; 24]).unwrap();
        }
        let installed = store.install_checkpoint(writer.finish().unwrap()).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(installed.path, dir.join("ckpt-1.db"));
        assert!(dir.join("ckpt-1.db").exists());
        assert!(!dir.join("ckpt.tmp").exists());

        for ts in 7..=10u64 {
            logger.append(record(ts, 2));
        }
        store.truncate_log().unwrap();
        assert_eq!(store.generation(), 2);
        assert!(dir.join("wal-2.log").exists());
        assert!(!dir.join("wal-0.log").exists());
        assert_eq!(logger.base_lsn(), ckpt_lsn);

        // One more commit lands in the new segment.
        logger.append(record(11, 1));
        logger.flush().unwrap();
        drop(store);

        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 2);
        assert_eq!(plan.log_path, dir.join("wal-2.log"));
        assert_eq!(plan.log_base, ckpt_lsn);
        let ckpt = plan.checkpoint.clone().expect("checkpoint installed");
        assert_eq!(ckpt.lsn, ckpt_lsn);
        assert_eq!(ckpt.read_ts, read_ts);
        let contents = read_checkpoint(&ckpt.path).unwrap();
        assert_eq!(contents.rows.len(), 12);
        // The tail holds exactly the post-checkpoint records.
        let tail = read_log_file_from(&plan.log_path, plan.log_tail_offset()).unwrap();
        let tail_ts: Vec<u64> = tail.records.iter().map(|r| r.end_ts.raw()).collect();
        assert_eq!(tail_ts, vec![7, 8, 9, 10, 11]);
        assert_eq!(tail.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_falls_back_to_the_previous_entry() {
        let dir = scratch_dir("manifest-torn");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        drop(store);
        let manifest_path = dir.join(MANIFEST);
        let full = fs::read(&manifest_path).unwrap();
        let gen0 = CheckpointStore::plan(&dir).map(|p| p.generation).unwrap();
        assert_eq!(gen0, 1);
        // Find the first entry's frame length so cuts land inside entry 2.
        let plan_at = |bytes: &[u8]| -> Result<RecoveryPlan> {
            fs::write(&manifest_path, bytes).unwrap();
            CheckpointStore::plan(&dir)
        };
        let first_len = {
            let body_len = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + body_len + 8
        };
        for cut in first_len..=full.len() {
            let plan = plan_at(&full[..cut]).unwrap();
            if cut == full.len() {
                assert_eq!(plan.generation, 1);
            } else {
                assert_eq!(plan.generation, 0, "cut at {cut}");
                assert_eq!(plan.manifest_valid_bytes, first_len as u64);
            }
        }
        // Cuts inside the first entry leave no complete entry at all.
        for cut in 0..first_len {
            let err = plan_at(&full[..cut]).expect_err("no complete entry");
            assert!(matches!(err, MmdbError::CheckpointInvalid { .. }));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_cuts_the_torn_manifest_tail_and_resumes() {
        let dir = scratch_dir("open-resume");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        logger.append(record(1, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        drop(store);
        // Simulate a crash mid-append of a third manifest entry.
        let manifest_path = dir.join(MANIFEST);
        let mut bytes = fs::read(&manifest_path).unwrap();
        let valid = bytes.len() as u64;
        bytes.extend_from_slice(&[0x17; 5]);
        fs::write(&manifest_path, &bytes).unwrap();

        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.manifest_valid_bytes, valid);
        // `valid_bytes` is a physical file offset — exactly what `open`
        // wants for the cut.
        let tail = read_log_file_from(&plan.log_path, plan.log_tail_offset()).unwrap();
        let store = CheckpointStore::open(&dir, &plan, tail.valid_bytes).unwrap();
        assert_eq!(store.generation(), 1);
        // A new install appends cleanly after the cut tail.
        let logger = Arc::clone(store.logger());
        logger.append(record(2, 1));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(2))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        store.truncate_log().unwrap();
        drop(store);
        let plan = CheckpointStore::plan(&dir).unwrap();
        assert_eq!(plan.generation, 3);
        assert_eq!(plan.checkpoint.as_ref().unwrap().read_ts, Timestamp(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_due_tracks_log_growth() {
        let dir = scratch_dir("due");
        let store = CheckpointStore::create(&dir).unwrap();
        let logger = Arc::clone(store.logger());
        assert!(!store.checkpoint_due(&CheckpointPolicy::MANUAL));
        let policy = CheckpointPolicy::every_log_bytes(64);
        assert!(!store.checkpoint_due(&policy));
        while store.log_bytes_since_checkpoint() < 64 {
            logger.append(record(1, 1));
        }
        assert!(store.checkpoint_due(&policy));
        logger.flush().unwrap();
        let writer = store
            .begin_checkpoint(logger.appended_lsn(), Timestamp(1))
            .unwrap();
        store.install_checkpoint(writer.finish().unwrap()).unwrap();
        assert!(!store.checkpoint_due(&policy));
        let _ = fs::remove_dir_all(&dir);
    }
}
