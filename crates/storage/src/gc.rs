//! Garbage collection of obsolete versions (§2.3).
//!
//! Every update or delete eventually turns the old version into garbage: once
//! its end timestamp is older than the begin timestamp of every active
//! transaction it can no longer be visible to anyone and may be unlinked from
//! the indexes and reclaimed. Aborted transactions' new versions become
//! garbage immediately (their Begin field is set to infinity so they are
//! invisible), but they are reclaimed under the same watermark rule so that a
//! transaction that speculatively read them can never observe freed memory.
//!
//! Collection is *cooperative*: worker threads push garbage onto a global
//! lock-free queue as part of postprocessing and periodically run a bounded
//! collection step ([`MvStore::collect_garbage`](crate::store::MvStore::collect_garbage)).

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;

use mmdb_common::ids::{TableId, Timestamp};

use crate::table::VersionPtr;

/// One piece of garbage: a version that is obsolete once the watermark passes
/// `reclaimable_at`.
#[derive(Debug, Clone, Copy)]
pub struct GcItem {
    /// Table the version belongs to.
    pub table: TableId,
    /// The obsolete version.
    pub version: VersionPtr,
    /// The version may be reclaimed once every active transaction began after
    /// this timestamp.
    pub reclaimable_at: Timestamp,
}

/// Global queue of not-yet-reclaimed garbage.
#[derive(Debug, Default)]
pub struct GcQueue {
    queue: SegQueue<GcItem>,
    pending: AtomicUsize,
}

impl GcQueue {
    /// Create an empty queue.
    pub fn new() -> GcQueue {
        GcQueue {
            queue: SegQueue::new(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Enqueue a piece of garbage.
    pub fn push(&self, item: GcItem) {
        self.queue.push(item);
        self.pending.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeue one piece of garbage, if any.
    pub fn pop(&self) -> Option<GcItem> {
        let item = self.queue.pop();
        if item.is_some() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
        item
    }

    /// Number of pending items (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crossbeam::epoch;
    use mmdb_common::row::{rowbuf, TableSpec};

    fn some_version_ptr() -> VersionPtr {
        // Build a real version through a throwaway table so the pointer is a
        // valid allocation (the queue itself never dereferences it).
        let table = Table::new(TableId(0), TableSpec::keyed_u64("t", 4)).unwrap();
        let guard = epoch::pin();
        table.link_version(
            table
                .make_committed_version(Timestamp(1), rowbuf::keyed_row(1, 16, 0))
                .unwrap(),
            &guard,
        )
        // NOTE: the Table is dropped here and frees the version; tests below
        // only compare queue bookkeeping, never dereference.
    }

    #[test]
    fn push_pop_fifo_bookkeeping() {
        let q = GcQueue::new();
        assert!(q.is_empty());
        let ptr = some_version_ptr();
        for i in 0..10u64 {
            q.push(GcItem {
                table: TableId(0),
                version: ptr,
                reclaimable_at: Timestamp(i),
            });
        }
        assert_eq!(q.len(), 10);
        let mut seen = 0;
        while let Some(item) = q.pop() {
            assert_eq!(item.table, TableId(0));
            seen += 1;
        }
        assert_eq!(seen, 10);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn concurrent_producers_consumers_balance() {
        use std::sync::Arc;
        let q = Arc::new(GcQueue::new());
        let ptr = some_version_ptr();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        q.push(GcItem {
                            table: TableId(1),
                            version: ptr,
                            reclaimable_at: Timestamp(i),
                        });
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(q.len(), 2000);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 2000);
        assert!(q.is_empty());
    }
}
