//! Group commit: a shared-buffer batched log writer.
//!
//! The paper's durability story (§5): *"transactions do not wait for log
//! I/O to complete"* — commits are hardened in batches by an asynchronous
//! group-commit tick. [`GroupCommitLog`] is that subsystem:
//!
//! * Committers [`append_frame`](crate::log::RedoLogger::append_frame) (or
//!   [`append_frame_ticketed`](crate::log::RedoLogger::append_frame_ticketed))
//!   into **one shared encode buffer** under a short mutex hold — a memcpy,
//!   never an I/O. The ticketed variant returns an [`Lsn`]: the logical byte
//!   offset the committer's frame ends at.
//! * A **flusher** hardens batches: it steals the whole shared buffer (a
//!   buffer swap, so append capacity is recycled and the steady state
//!   allocates nothing), writes it with **one `write` + one sync** per batch
//!   — however many transactions it contains — and only then publishes the
//!   batch-end offset as durable. Two flusher flavors exist:
//!   * a dedicated background thread waking every
//!     [`tick`](GroupCommitLog::with_tick), the paper's asynchronous group
//!     commit;
//!   * for tickless builds ([`GroupCommitLog::create`]), a **leader-elected
//!     inline flush**: the first [`wait_durable`] caller that finds the
//!     flush lock free hardens the batch for everyone queued behind it —
//!     followers just block on the ticket condvar and are covered by the
//!     leader's single sync.
//! * [`wait_durable`] blocks until the durable watermark covers the ticket.
//!   Because the buffer is appended in ticket order and batches are stolen
//!   and written whole, **a ticket is never reported durable before every
//!   lower ticket's bytes hit the file** (asserted by the concurrency tests
//!   below).
//!
//! Batch boundaries are **invisible on the wire**: the file is the exact
//! concatenation of the appended frames, byte-identical to what a
//! [`FileLogger`](crate::log::FileLogger) produces for the same appends.
//! [`LogReader`](crate::log::LogReader) and recovery are therefore
//! unaffected — a crash mid-batch is just a torn tail at some frame-interior
//! offset, which the recovery suite exercises explicitly.
//!
//! I/O errors are sticky, as in [`FileLogger`](crate::log::FileLogger): the
//! first failure poisons
//! the log, every later [`wait_durable`]/[`flush`] reports it, and the
//! durable watermark never advances past the last confirmed batch. A ticket
//! confirmed durable **before** the failure still succeeds — its bytes are
//! on the device regardless of what happened to later batches.
//!
//! [`wait_durable`]: crate::log::RedoLogger::wait_durable
//! [`flush`]: crate::log::RedoLogger::flush

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use mmdb_common::error::{MmdbError, Result};

use crate::log::{encode_record, LogRecord, Lsn, RedoLogger, StickyError};

/// Initial capacity of the shared append buffer and its flush twin. Sized
/// like `FileLogger`'s internal buffer so steady-state batches never grow
/// the allocation (the zero-allocation commit path depends on this).
const BUFFER_CAPACITY: usize = 1 << 20;

/// How long a durability waiter sleeps before re-checking the watermark.
/// Purely a safety net against lost wakeups or a wedged flusher — the
/// condvar notification is the normal wake path.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// The shared append state: the group-commit buffer every committer encodes
/// into, plus the logical end offset of the stream.
struct AppendState {
    /// Frames appended since the last batch was stolen.
    buf: Vec<u8>,
    /// Logical byte offset of the end of the stream (bytes appended ever).
    appended: u64,
}

/// The flusher's side: the file and the swap buffer batches are stolen into.
/// Held behind its own mutex so exactly one flusher (ticker, inline leader,
/// or an explicit `flush()`) hardens at a time, in stream order.
struct FlushState {
    file: File,
    /// Where `file` lives — needed to reopen it for reading when a
    /// checkpoint truncation copies the tail into a fresh segment.
    path: PathBuf,
    /// Batches are swapped in here, written, cleared — capacity recycles
    /// between the two buffers, so neither side allocates after warmup.
    scratch: Vec<u8>,
    /// Non-empty batches hardened so far (diagnostic: proves batching).
    batches: u64,
}

/// State shared between committers, waiters and the flusher(s).
struct Shared {
    /// Append side; also the mutex paired with `durable_cv` (the durable
    /// watermark is published under it, closing the missed-wakeup window).
    state: Mutex<AppendState>,
    /// Wakes `wait_durable` callers after each hardened batch (or failure).
    durable_cv: Condvar,
    /// Flush side; `try_lock` on this mutex is the leader election.
    flush: Mutex<FlushState>,
    /// Bytes confirmed on durable storage (monotone; published under
    /// `state`).
    durable: AtomicU64,
    /// Logical LSN of the current file's byte 0. Zero for a freshly created
    /// log; advanced by [`GroupCommitLog::rotate_to`] when a checkpoint
    /// truncates the stream — LSN tickets stay monotone across truncations,
    /// only the physical file shrinks. Written under the flush mutex.
    base: AtomicU64,
    /// First I/O error, sticky for the lifetime of the log.
    error: StickyError,
    /// Frames appended (one per committed transaction).
    records: AtomicU64,
    /// Tells the background ticker to exit.
    stop: AtomicBool,
}

impl Shared {
    /// Harden the current batch: steal the append buffer, write + sync it,
    /// publish the new durable watermark, wake waiters. Serialized by the
    /// flush mutex; `harden` is the convenience wrapper that acquires it.
    fn harden(&self) -> Result<()> {
        let mut flush = self.flush.lock();
        self.harden_locked(&mut flush)
    }

    fn harden_locked(&self, flush: &mut FlushState) -> Result<()> {
        // A torn log hardens nothing more. The failed batch may have left a
        // partial frame at the tail; writing any later batch after it would
        // turn that recoverable torn tail into mid-stream corruption — and
        // could durably persist frames of Sync transactions that were
        // reported rolled back. The file is also kept cut back to the
        // confirmed watermark (idempotent, best effort): the failing batch's
        // bytes may already sit in the page cache, and without the truncate
        // OS writeback could still land them on the device after the
        // rollback was reported. Only the wakeup below survives, so waiters
        // observe the error instead of sleeping out their safety timeout.
        if self.error.is_set() {
            let _ = flush
                .file
                .set_len(self.physical(self.durable.load(Ordering::Acquire)));
            drop(self.state.lock());
            self.durable_cv.notify_all();
            return self.error.check();
        }
        // Steal the batch: a buffer swap under the append mutex. Committers
        // are blocked only for the swap, never for the I/O below. The old
        // scratch (cleared after the previous write) becomes the new append
        // buffer, so capacity cycles between the two and neither reallocates
        // once warmed.
        let batch_end = {
            let mut st = self.state.lock();
            std::mem::swap(&mut st.buf, &mut flush.scratch);
            st.appended
        };
        if !flush.scratch.is_empty() {
            let result = flush
                .file
                .write_all(&flush.scratch)
                .and_then(|()| flush.file.sync_data());
            flush.scratch.clear();
            if let Err(e) = result {
                self.error.record(e);
                // Best effort: the batch is unconfirmed, so cut the file
                // back to the confirmed watermark — its bytes may have been
                // written (even fully, with only the sync failing) and must
                // not outlive a crash, or recovery would replay Sync
                // transactions that were reported rolled back.
                let _ = flush
                    .file
                    .set_len(self.physical(self.durable.load(Ordering::Acquire)));
            } else {
                flush.batches += 1;
            }
        }
        match self.error.get() {
            None => {
                // Publish under the append mutex: a waiter holding it from
                // watermark-check through `durable_cv.wait` cannot miss this
                // store-then-notify.
                let guard = self.state.lock();
                self.durable.fetch_max(batch_end, Ordering::Release);
                drop(guard);
                self.durable_cv.notify_all();
                Ok(())
            }
            Some(err) => {
                // Wake waiters so they observe the sticky error instead of
                // sleeping until their safety timeout.
                drop(self.state.lock());
                self.durable_cv.notify_all();
                Err(err)
            }
        }
    }

    /// Translate a logical LSN into a byte offset within the current file.
    fn physical(&self, lsn: u64) -> u64 {
        lsn.saturating_sub(self.base.load(Ordering::Acquire))
    }
}

/// A batched redo-log writer with per-transaction durability tickets: the
/// group-commit subsystem (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mmdb_storage::log::{read_log_file, LogOp, LogRecord, RedoLogger};
/// use mmdb_storage::group_commit::GroupCommitLog;
/// use mmdb_common::ids::{TableId, Timestamp};
/// use mmdb_common::row::Row;
///
/// let path = std::env::temp_dir().join(format!("gc-doc-{}.log", std::process::id()));
/// let log = Arc::new(GroupCommitLog::create(&path).unwrap());
/// log.append(LogRecord {
///     end_ts: Timestamp(7),
///     ops: vec![LogOp::Write { table: TableId(0), row: Row::from(vec![0u8; 16]) }],
/// });
/// // Tickless log: the explicit flush (or a Sync committer's
/// // `wait_durable`) hardens the batch.
/// log.flush().unwrap();
/// assert_eq!(read_log_file(&path).unwrap().records.len(), 1);
/// # drop(log); std::fs::remove_file(&path).unwrap();
/// ```
pub struct GroupCommitLog {
    shared: Arc<Shared>,
    tick: Option<Duration>,
    ticker: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitLog {
    /// Create (truncate) a tickless group-commit log at `path`: no
    /// background flusher runs, batches are hardened by leader-elected
    /// inline flushes in [`wait_durable`](crate::log::RedoLogger::wait_durable),
    /// by explicit [`flush`](crate::log::RedoLogger::flush) calls, and once
    /// more on drop.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<GroupCommitLog> {
        Self::new(path, None)
    }

    /// Create (truncate) a group-commit log whose dedicated background
    /// flusher hardens the shared buffer every `tick` — the paper's
    /// asynchronous group commit. Sync committers wait at most one tick (the
    /// inline-leader path stays available to explicit `flush` callers);
    /// Async committers never wait at all.
    pub fn with_tick(path: impl AsRef<Path>, tick: Duration) -> std::io::Result<GroupCommitLog> {
        Self::new(path, Some(tick))
    }

    fn new(path: impl AsRef<Path>, tick: Option<Duration>) -> std::io::Result<GroupCommitLog> {
        let file = File::create(&path)?;
        Self::from_file(file, path.as_ref().to_path_buf(), Lsn::ZERO, 0, tick)
    }

    /// Reopen an existing log file for appending after recovery.
    ///
    /// `base` is the logical LSN of the file's byte 0 (zero unless a prior
    /// checkpoint truncation rotated the stream — the manifest records it)
    /// and `valid_bytes` is the *physical* prefix recovery decoded cleanly:
    /// the file is first cut back to that offset (burying a torn tail
    /// mid-stream would corrupt every later record) and the cut is synced.
    /// The appended/durable watermarks resume at `base + valid_bytes`, so
    /// LSN tickets stay monotone across the restart.
    pub fn open_append(
        path: impl AsRef<Path>,
        base: Lsn,
        valid_bytes: u64,
    ) -> std::io::Result<GroupCommitLog> {
        Self::reopen(path, base, valid_bytes, None)
    }

    /// [`open_append`](Self::open_append) with a background flusher tick.
    pub fn open_append_with_tick(
        path: impl AsRef<Path>,
        base: Lsn,
        valid_bytes: u64,
        tick: Duration,
    ) -> std::io::Result<GroupCommitLog> {
        Self::reopen(path, base, valid_bytes, Some(tick))
    }

    fn reopen(
        path: impl AsRef<Path>,
        base: Lsn,
        valid_bytes: u64,
        tick: Option<Duration>,
    ) -> std::io::Result<GroupCommitLog> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(valid_bytes)?;
        file.sync_all()?;
        file.seek(SeekFrom::Start(valid_bytes))?;
        Self::from_file(file, path.as_ref().to_path_buf(), base, valid_bytes, tick)
    }

    fn from_file(
        file: File,
        path: PathBuf,
        base: Lsn,
        valid_bytes: u64,
        tick: Option<Duration>,
    ) -> std::io::Result<GroupCommitLog> {
        let end = base.0 + valid_bytes;
        let shared = Arc::new(Shared {
            state: Mutex::new(AppendState {
                buf: Vec::with_capacity(BUFFER_CAPACITY),
                appended: end,
            }),
            durable_cv: Condvar::new(),
            flush: Mutex::new(FlushState {
                file,
                path,
                scratch: Vec::with_capacity(BUFFER_CAPACITY),
                batches: 0,
            }),
            durable: AtomicU64::new(end),
            base: AtomicU64::new(base.0),
            error: StickyError::default(),
            records: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let ticker = tick.map(|tick| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mmdb-group-commit".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::Acquire) {
                        std::thread::sleep(tick);
                        // Errors are sticky and surfaced to waiters/flush
                        // callers; the ticker itself keeps ticking so
                        // waiters keep being woken.
                        let _ = shared.harden();
                    }
                })
                .expect("spawn group-commit flusher")
        });
        Ok(GroupCommitLog {
            shared,
            tick,
            ticker: Mutex::new(ticker),
        })
    }

    /// The background flusher tick, or `None` for a tickless (inline-leader)
    /// log.
    pub fn tick(&self) -> Option<Duration> {
        self.tick
    }

    /// Logical end offset of everything appended so far (durable or not).
    pub fn appended_lsn(&self) -> Lsn {
        Lsn(self.shared.state.lock().appended)
    }

    /// Offset below which every byte is confirmed on durable storage.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.shared.durable.load(Ordering::Acquire))
    }

    /// Number of non-empty batches hardened so far. With concurrent
    /// committers this is (much) smaller than
    /// [`records_written`](crate::log::RedoLogger::records_written) — the
    /// whole point of group commit, and what the mid-batch crash tests use
    /// to prove batches really spanned multiple transactions.
    pub fn batches_hardened(&self) -> u64 {
        self.shared.flush.lock().batches
    }

    /// Logical LSN of the current file's byte 0 (zero until a truncation
    /// rotates the stream).
    pub fn base_lsn(&self) -> Lsn {
        Lsn(self.shared.base.load(Ordering::Acquire))
    }

    /// Truncate the log's prefix below `keep_from` by rotating onto a fresh
    /// segment file: the durable tail (bytes at LSNs `keep_from..durable`)
    /// is copied into `new_path`, synced, then — still before any new batch
    /// can harden — `publish` runs (the checkpoint manifest append that
    /// makes the new segment the recovery source) and the log switches its
    /// file handle and base LSN to the new segment. The old file is left in
    /// place for the caller to delete once `publish` succeeded.
    ///
    /// Crash-safety hinges on holding the flush mutex across the whole
    /// sequence: no committer's bytes can become durable in the new segment
    /// until the manifest durably points at it, so a crash at any byte in
    /// here recovers from the old segment, which still holds everything that
    /// was ever confirmed durable. If `publish` fails the rotation is
    /// abandoned (the old file stays active, the new segment is deleted) and
    /// the error is returned.
    ///
    /// LSN tickets are unaffected: `appended`/`durable` are logical offsets
    /// and keep counting monotonically; only the base moves.
    pub fn rotate_to(
        &self,
        new_path: impl AsRef<Path>,
        keep_from: Lsn,
        publish: impl FnOnce() -> Result<()>,
    ) -> Result<()> {
        let new_path = new_path.as_ref();
        let shared = &*self.shared;
        let mut flush = shared.flush.lock();
        // Harden whatever is buffered so the old file holds every appended
        // byte — the tail copy below must not race the append buffer.
        shared.harden_locked(&mut flush)?;
        let base = shared.base.load(Ordering::Acquire);
        let durable = shared.durable.load(Ordering::Acquire);
        if keep_from.0 < base || keep_from.0 > durable {
            return Err(MmdbError::LogIo(format!(
                "rotate_to: keep_from {} outside the current segment [{base}, {durable}]",
                keep_from.0
            )));
        }
        let io = |e: std::io::Error| MmdbError::LogIo(e.to_string());
        let result = (|| {
            // Copy the tail through a reopened read handle (the write handle
            // sits at the append cursor and must not move).
            let mut src = File::open(&flush.path).map_err(io)?;
            src.seek(SeekFrom::Start(keep_from.0 - base)).map_err(io)?;
            let mut dst = File::create(new_path).map_err(io)?;
            let mut remaining = durable - keep_from.0;
            let mut chunk = vec![0u8; (BUFFER_CAPACITY).min(1 << 16)];
            while remaining > 0 {
                let want = chunk.len().min(remaining as usize);
                let n = src.read(&mut chunk[..want]).map_err(io)?;
                if n == 0 {
                    return Err(MmdbError::LogIo(
                        "rotate_to: old segment shorter than the durable watermark".into(),
                    ));
                }
                dst.write_all(&chunk[..n]).map_err(io)?;
                remaining -= n as u64;
            }
            dst.sync_all().map_err(io)?;
            sync_parent_dir(new_path);
            // The commit point: once the manifest durably names the new
            // segment, recovery reads it; until then it reads the old one.
            publish()?;
            Ok(dst)
        })();
        match result {
            Ok(dst) => {
                flush.file = dst;
                flush.path = new_path.to_path_buf();
                shared.base.store(keep_from.0, Ordering::Release);
                Ok(())
            }
            Err(err) => {
                let _ = std::fs::remove_file(new_path);
                Err(err)
            }
        }
    }
}

/// Best-effort fsync of a file's parent directory, so a freshly created
/// segment's directory entry survives a machine crash. Errors are ignored:
/// directory syncs are unsupported on some filesystems and the copied data
/// itself is already synced.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

impl RedoLogger for GroupCommitLog {
    fn append(&self, record: LogRecord) {
        self.append_frame_ticketed(&encode_record(&record));
    }

    fn append_frame(&self, frame: &[u8]) {
        self.append_frame_ticketed(frame);
    }

    fn append_frame_ticketed(&self, frame: &[u8]) -> Lsn {
        let lsn = {
            let mut st = self.shared.state.lock();
            // A torn log buffers no further bytes — they could never be
            // hardened (the flusher is gated on the sticky error), so
            // keeping them would only grow the buffer without bound. The
            // ticket still advances, stays monotone, and can never be
            // reported durable.
            if !self.shared.error.is_set() {
                st.buf.extend_from_slice(frame);
            }
            st.appended += frame.len() as u64;
            Lsn(st.appended)
        };
        self.shared.records.fetch_add(1, Ordering::Relaxed);
        lsn
    }

    fn wait_durable(&self, upto: Lsn) -> Result<()> {
        let shared = &*self.shared;
        loop {
            // Durability confirmed before (or despite) any later failure
            // counts: the bytes are on the device.
            if shared.durable.load(Ordering::Acquire) >= upto.0 {
                return Ok(());
            }
            if let Some(err) = shared.error.get() {
                return Err(err);
            }
            if self.tick.is_none() {
                // Leader election: whoever wins the flush lock hardens the
                // batch — which covers every committer queued so far — while
                // the losers block on the condvar below and are woken by the
                // leader's publish.
                if let Some(mut flush) = shared.flush.try_lock() {
                    let _ = shared.harden_locked(&mut flush);
                    continue;
                }
            }
            let mut st = shared.state.lock();
            // Re-check both exit conditions under the mutex the watermark
            // (and the error wakeup) are published under — after this point
            // neither a publish nor a failing harden's notify can slip past
            // the wait.
            if shared.durable.load(Ordering::Acquire) >= upto.0 {
                return Ok(());
            }
            if let Some(err) = shared.error.get() {
                return Err(err);
            }
            // Timed slice, not an unbounded wait: a safety net so a wedged
            // or shut-down flusher degrades into polling instead of hanging
            // the committer forever.
            shared.durable_cv.wait_for(&mut st, WAIT_SLICE);
        }
    }

    fn flush(&self) -> Result<()> {
        self.shared.harden()
    }

    fn records_written(&self) -> u64 {
        self.shared.records.load(Ordering::Relaxed)
    }
}

impl Drop for GroupCommitLog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.ticker.lock().take() {
            let _ = handle.join();
        }
        // Final harden so a cleanly dropped log leaves no torn tail.
        let _ = self.shared.harden();
    }
}

impl std::fmt::Debug for GroupCommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitLog")
            .field("tick", &self.tick)
            .field("appended", &self.appended_lsn().0)
            .field("durable", &self.durable_lsn().0)
            .field("records", &self.records_written())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{read_log_bytes, read_log_file, FileLogger, LogOp};
    use mmdb_common::error::MmdbError;
    use mmdb_common::ids::{TableId, Timestamp};
    use mmdb_common::row::Row;

    fn record(ts: u64, fill: u8) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: vec![LogOp::Write {
                table: TableId(0),
                row: Row::from(vec![fill; 24]),
            }],
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmdb-groupcommit-{}-{tag}.log", std::process::id()))
    }

    #[test]
    fn batched_frames_round_trip_and_boundaries_are_invisible() {
        let path = scratch("roundtrip");
        let records: Vec<LogRecord> = (0..10).map(|i| record(i + 1, i as u8)).collect();
        {
            let log = GroupCommitLog::create(&path).unwrap();
            for r in &records[..4] {
                log.append(r.clone());
            }
            log.flush().unwrap(); // batch 1: four records, one write+sync
            for r in &records[4..] {
                log.append(r.clone());
            }
            log.flush().unwrap(); // batch 2: six records
            assert_eq!(log.records_written(), 10);
            assert_eq!(log.batches_hardened(), 2);
            assert_eq!(log.durable_lsn(), log.appended_lsn());
        }
        // The wire stream is the plain concatenation of the frames — batch
        // boundaries left no trace, and a FileLogger produces the identical
        // bytes for the same appends.
        let bytes = std::fs::read(&path).unwrap();
        let outcome = read_log_bytes(&bytes).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, records);
        let file_path = scratch("roundtrip-file");
        {
            let file_log = FileLogger::create(&file_path).unwrap();
            for r in &records {
                file_log.append(r.clone());
            }
            file_log.flush().unwrap();
        }
        assert_eq!(bytes, std::fs::read(&file_path).unwrap());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&file_path);
    }

    #[test]
    fn drop_hardens_the_tail() {
        let path = scratch("drop");
        {
            let log = GroupCommitLog::create(&path).unwrap();
            log.append(record(1, 0xAA));
            // No flush, no wait: drop must harden the buffered frame.
        }
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(1, 0xAA)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ticked_flusher_hardens_without_any_explicit_flush() {
        let path = scratch("ticked");
        let log = GroupCommitLog::with_tick(&path, Duration::from_millis(1)).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(3, 1)));
        // The background flusher alone must advance the watermark.
        log.wait_durable(lsn).unwrap();
        assert!(log.durable_lsn() >= lsn);
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(3, 1)]);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tickless_wait_durable_elects_an_inline_leader() {
        let path = scratch("leader");
        let log = GroupCommitLog::create(&path).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(5, 2)));
        // No ticker exists; wait_durable itself must flush.
        log.wait_durable(lsn).unwrap();
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(5, 2)]);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    /// The ordering acceptance test: racing committers against the flusher,
    /// a ticket is never reported durable before every lower LSN's bytes are
    /// in the file. Each committer checks the *file size on disk* right
    /// after `wait_durable` returns — `lsn` is a byte offset, so
    /// `file_len >= lsn` is exactly "my bytes (and everything before them)
    /// hit the file".
    #[test]
    fn wait_durable_never_reports_before_lower_lsns_hit_the_file() {
        for (tag, tick) in [
            ("order-tickless", None),
            ("order-ticked", Some(Duration::from_micros(200))),
        ] {
            let path = scratch(tag);
            let log = Arc::new(match tick {
                None => GroupCommitLog::create(&path).unwrap(),
                Some(t) => GroupCommitLog::with_tick(&path, t).unwrap(),
            });
            const THREADS: u64 = 4;
            const APPENDS: u64 = 64;
            std::thread::scope(|scope| {
                for w in 0..THREADS {
                    let log = Arc::clone(&log);
                    let path = path.clone();
                    scope.spawn(move || {
                        for i in 0..APPENDS {
                            let rec = record(w * APPENDS + i + 1, w as u8);
                            let lsn = log.append_frame_ticketed(&encode_record(&rec));
                            log.wait_durable(lsn).unwrap();
                            let len = std::fs::metadata(&path).expect("log exists").len();
                            assert!(
                                len >= lsn.0,
                                "[{tag}] ticket {lsn:?} reported durable but the file \
                                 holds only {len} bytes"
                            );
                        }
                    });
                }
            });
            log.flush().unwrap();
            let outcome = read_log_file(&path).unwrap();
            assert!(outcome.is_clean());
            assert_eq!(outcome.records.len(), (THREADS * APPENDS) as usize);
            assert_eq!(log.records_written(), THREADS * APPENDS);
            drop(log);
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Concurrent Sync committers share flushes: far fewer hardened batches
    /// than records. (Deterministic upper bound is impossible under
    /// scheduling noise; the assertion is the weak one that batching
    /// happened at all, the committed benchmark datapoint carries the
    /// quantitative claim.)
    #[test]
    fn concurrent_committers_coalesce_into_batches() {
        let path = scratch("coalesce");
        let log = Arc::new(GroupCommitLog::create(&path).unwrap());
        const THREADS: u64 = 4;
        const APPENDS: u64 = 128;
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..APPENDS {
                        let rec = record(w * APPENDS + i + 1, w as u8);
                        let lsn = log.append_frame_ticketed(&encode_record(&rec));
                        log.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        assert_eq!(log.records_written(), THREADS * APPENDS);
        assert!(
            log.batches_hardened() < THREADS * APPENDS,
            "every record got its own batch — group commit never coalesced \
             ({} batches for {} records)",
            log.batches_hardened(),
            THREADS * APPENDS
        );
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn io_errors_are_sticky_and_propagate_through_wait_durable() {
        // /dev/full accepts the open but fails every write with ENOSPC:
        // the ticket can never become durable, and the error must reach the
        // waiting committer instead of hanging or silently succeeding.
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let log = GroupCommitLog::create("/dev/full").unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(1, 3)));
        let first = log.wait_durable(lsn);
        assert!(
            matches!(first, Err(MmdbError::LogIo(_))),
            "wait_durable must surface the write failure, got {first:?}"
        );
        // Sticky: later waits and flushes keep failing with the first error.
        assert_eq!(first, log.wait_durable(lsn));
        assert_eq!(first, log.flush());
        // Appends after the failure never panic or block.
        let lsn2 = log.append_frame_ticketed(&encode_record(&record(2, 4)));
        assert!(lsn2 > lsn);
        assert!(log.wait_durable(lsn2).is_err());
        assert_eq!(log.durable_lsn(), Lsn::ZERO);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn ticked_log_surfaces_flusher_errors_to_waiters() {
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let log = GroupCommitLog::with_tick("/dev/full", Duration::from_millis(1)).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(1, 5)));
        // The *background* flusher hits ENOSPC; the waiter must still learn
        // about it promptly (woken by the failing harden, not the timeout).
        let result = log.wait_durable(lsn);
        assert!(matches!(result, Err(MmdbError::LogIo(_))), "{result:?}");
    }

    /// Once the log is torn, no later batch may be written: the failed
    /// batch can have left a partial frame at the tail, and appending past
    /// it would turn a recoverable torn tail into mid-stream corruption
    /// (and durably persist frames of transactions that were reported
    /// rolled back). Simulates the tear by recording the sticky error
    /// directly, then drives every write path (flush, wait_durable leader,
    /// drop) and asserts the file never grows.
    #[test]
    fn a_torn_log_never_writes_later_batches() {
        let path = scratch("torn-gate");
        let log = GroupCommitLog::create(&path).unwrap();
        log.append(record(1, 1));
        log.flush().unwrap();
        let confirmed = log.durable_lsn();

        log.shared
            .error
            .record(std::io::Error::other("simulated mid-batch tear"));
        // Simulate the failing batch's partial progress: unconfirmed bytes
        // that reached the file (or page cache) before the error.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"unconfirmed partial batch").unwrap();
        }
        let lsn = log.append_frame_ticketed(&encode_record(&record(2, 2)));
        assert!(lsn > confirmed, "tickets stay monotone after the tear");
        assert!(log.flush().is_err());
        assert!(log.wait_durable(lsn).is_err());
        // A ticket confirmed durable before the failure still succeeds.
        log.wait_durable(confirmed).unwrap();
        assert_eq!(log.durable_lsn(), confirmed);
        drop(log); // the final drop-harden must not write either

        // The gated hardens truncated the unconfirmed tail back to the
        // watermark: the file holds exactly the confirmed prefix, cleanly.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            confirmed.0,
            "unconfirmed bytes must be cut back to the durable watermark"
        );
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(
            outcome.records,
            vec![record(1, 1)],
            "no bytes may reach the file after the tear"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_append_cuts_the_torn_tail_and_resumes_lsns() {
        let path = scratch("reopen");
        let end;
        {
            let log = GroupCommitLog::create(&path).unwrap();
            log.append(record(1, 1));
            log.append(record(2, 2));
            log.flush().unwrap();
            end = log.appended_lsn();
        }
        // Crash: a partial frame at the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let recovered = read_log_file(&path).unwrap();
        assert_eq!(recovered.records, vec![record(1, 1)]);
        {
            let log = GroupCommitLog::open_append(&path, Lsn::ZERO, recovered.valid_bytes).unwrap();
            assert_eq!(log.appended_lsn(), Lsn(recovered.valid_bytes));
            assert_eq!(log.durable_lsn(), Lsn(recovered.valid_bytes));
            assert!(log.appended_lsn() < end, "the torn record is gone");
            let lsn = log.append_frame_ticketed(&encode_record(&record(3, 3)));
            log.wait_durable(lsn).unwrap();
        }
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, vec![record(1, 1), record(3, 3)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotate_to_truncates_the_prefix_and_keeps_lsns_monotone() {
        let path = scratch("rotate-old");
        let new_path = scratch("rotate-new");
        let log = GroupCommitLog::create(&path).unwrap();
        let a = log.append_frame_ticketed(&encode_record(&record(1, 0)));
        log.flush().unwrap();
        let b = log.append_frame_ticketed(&encode_record(&record(2, 1)));
        // Record 2 is only buffered; rotation must harden it first, then
        // carry it (the tail above the keep point) into the new segment.
        log.rotate_to(&new_path, a, || Ok(())).unwrap();
        assert_eq!(log.base_lsn(), a);
        assert_eq!(log.durable_lsn(), b);
        assert_eq!(
            read_log_file(&new_path).unwrap().records,
            vec![record(2, 1)]
        );
        // Appends continue into the new segment with monotone tickets.
        let c = log.append_frame_ticketed(&encode_record(&record(3, 2)));
        assert!(c > b);
        log.wait_durable(c).unwrap();
        assert_eq!(
            std::fs::metadata(&new_path).unwrap().len(),
            c.0 - a.0,
            "physical length is the logical length minus the base"
        );
        let outcome = read_log_file(&new_path).unwrap();
        assert_eq!(outcome.records, vec![record(2, 1), record(3, 2)]);
        // The old segment is the caller's to delete, untouched since.
        assert_eq!(read_log_file(&path).unwrap().records.len(), 2);
        drop(log);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&new_path);
    }

    #[test]
    fn rotate_to_publish_failure_keeps_the_old_segment_active() {
        let path = scratch("rotate-fail-old");
        let new_path = scratch("rotate-fail-new");
        let log = GroupCommitLog::create(&path).unwrap();
        let a = log.append_frame_ticketed(&encode_record(&record(1, 0)));
        log.flush().unwrap();
        let err = log
            .rotate_to(&new_path, a, || {
                Err(MmdbError::LogIo("manifest append failed".into()))
            })
            .unwrap_err();
        assert!(matches!(err, MmdbError::LogIo(_)));
        assert_eq!(log.base_lsn(), Lsn::ZERO, "rotation abandoned");
        assert!(!new_path.exists(), "half-built segment must be removed");
        // The log keeps serving on the old file.
        let b = log.append_frame_ticketed(&encode_record(&record(2, 1)));
        log.wait_durable(b).unwrap();
        assert_eq!(read_log_file(&path).unwrap().records.len(), 2);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lsn_tickets_are_monotone_byte_offsets() {
        let path = scratch("lsn");
        let log = GroupCommitLog::create(&path).unwrap();
        assert_eq!(log.appended_lsn(), Lsn::ZERO);
        let frame = encode_record(&record(1, 0));
        let a = log.append_frame_ticketed(&frame);
        let b = log.append_frame_ticketed(&frame);
        assert_eq!(a.0, frame.len() as u64);
        assert_eq!(b.0, 2 * frame.len() as u64);
        assert!(b > a);
        assert_eq!(log.appended_lsn(), b);
        assert_eq!(log.durable_lsn(), Lsn::ZERO);
        log.flush().unwrap();
        assert_eq!(log.durable_lsn(), b);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }
}
