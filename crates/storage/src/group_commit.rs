//! Group commit: a shared-buffer batched log writer.
//!
//! The paper's durability story (§5): *"transactions do not wait for log
//! I/O to complete"* — commits are hardened in batches by an asynchronous
//! group-commit tick. [`GroupCommitLog`] is that subsystem:
//!
//! * Committers [`append_frame`](crate::log::RedoLogger::append_frame) (or
//!   [`append_frame_ticketed`](crate::log::RedoLogger::append_frame_ticketed))
//!   into **one shared encode buffer** under a short mutex hold — a memcpy,
//!   never an I/O. The ticketed variant returns an [`Lsn`]: the logical byte
//!   offset the committer's frame ends at.
//! * A **flusher** hardens batches: it steals the whole shared buffer (a
//!   buffer swap, so append capacity is recycled and the steady state
//!   allocates nothing), writes it with **one `write` + one sync** per batch
//!   — however many transactions it contains — and only then publishes the
//!   batch-end offset as durable. Two flusher flavors exist:
//!   * a dedicated background thread waking every
//!     [`tick`](GroupCommitLog::with_tick), the paper's asynchronous group
//!     commit;
//!   * for tickless builds ([`GroupCommitLog::create`]), a **leader-elected
//!     inline flush**: the first [`wait_durable`] caller that finds the
//!     flush lock free hardens the batch for everyone queued behind it —
//!     followers just block on the ticket condvar and are covered by the
//!     leader's single sync.
//! * [`wait_durable`] blocks until the durable watermark covers the ticket.
//!   Because the buffer is appended in ticket order and batches are stolen
//!   and written whole, **a ticket is never reported durable before every
//!   lower ticket's bytes hit the file** (asserted by the concurrency tests
//!   below).
//!
//! Batch boundaries are **invisible on the wire**: the file is the exact
//! concatenation of the appended frames, byte-identical to what a
//! [`FileLogger`](crate::log::FileLogger) produces for the same appends.
//! [`LogReader`](crate::log::LogReader) and recovery are therefore
//! unaffected — a crash mid-batch is just a torn tail at some frame-interior
//! offset, which the recovery suite exercises explicitly.
//!
//! I/O errors are sticky, as in [`FileLogger`](crate::log::FileLogger): the
//! first failure poisons
//! the log, every later [`wait_durable`]/[`flush`] reports it, and the
//! durable watermark never advances past the last confirmed batch. A ticket
//! confirmed durable **before** the failure still succeeds — its bytes are
//! on the device regardless of what happened to later batches.
//!
//! [`wait_durable`]: crate::log::RedoLogger::wait_durable
//! [`flush`]: crate::log::RedoLogger::flush

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use mmdb_common::error::Result;

use crate::log::{encode_record, LogRecord, Lsn, RedoLogger, StickyError};

/// Initial capacity of the shared append buffer and its flush twin. Sized
/// like `FileLogger`'s internal buffer so steady-state batches never grow
/// the allocation (the zero-allocation commit path depends on this).
const BUFFER_CAPACITY: usize = 1 << 20;

/// How long a durability waiter sleeps before re-checking the watermark.
/// Purely a safety net against lost wakeups or a wedged flusher — the
/// condvar notification is the normal wake path.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// The shared append state: the group-commit buffer every committer encodes
/// into, plus the logical end offset of the stream.
struct AppendState {
    /// Frames appended since the last batch was stolen.
    buf: Vec<u8>,
    /// Logical byte offset of the end of the stream (bytes appended ever).
    appended: u64,
}

/// The flusher's side: the file and the swap buffer batches are stolen into.
/// Held behind its own mutex so exactly one flusher (ticker, inline leader,
/// or an explicit `flush()`) hardens at a time, in stream order.
struct FlushState {
    file: File,
    /// Batches are swapped in here, written, cleared — capacity recycles
    /// between the two buffers, so neither side allocates after warmup.
    scratch: Vec<u8>,
    /// Non-empty batches hardened so far (diagnostic: proves batching).
    batches: u64,
}

/// State shared between committers, waiters and the flusher(s).
struct Shared {
    /// Append side; also the mutex paired with `durable_cv` (the durable
    /// watermark is published under it, closing the missed-wakeup window).
    state: Mutex<AppendState>,
    /// Wakes `wait_durable` callers after each hardened batch (or failure).
    durable_cv: Condvar,
    /// Flush side; `try_lock` on this mutex is the leader election.
    flush: Mutex<FlushState>,
    /// Bytes confirmed on durable storage (monotone; published under
    /// `state`).
    durable: AtomicU64,
    /// First I/O error, sticky for the lifetime of the log.
    error: StickyError,
    /// Frames appended (one per committed transaction).
    records: AtomicU64,
    /// Tells the background ticker to exit.
    stop: AtomicBool,
}

impl Shared {
    /// Harden the current batch: steal the append buffer, write + sync it,
    /// publish the new durable watermark, wake waiters. Serialized by the
    /// flush mutex; `harden` is the convenience wrapper that acquires it.
    fn harden(&self) -> Result<()> {
        let mut flush = self.flush.lock();
        self.harden_locked(&mut flush)
    }

    fn harden_locked(&self, flush: &mut FlushState) -> Result<()> {
        // A torn log hardens nothing more. The failed batch may have left a
        // partial frame at the tail; writing any later batch after it would
        // turn that recoverable torn tail into mid-stream corruption — and
        // could durably persist frames of Sync transactions that were
        // reported rolled back. The file is also kept cut back to the
        // confirmed watermark (idempotent, best effort): the failing batch's
        // bytes may already sit in the page cache, and without the truncate
        // OS writeback could still land them on the device after the
        // rollback was reported. Only the wakeup below survives, so waiters
        // observe the error instead of sleeping out their safety timeout.
        if self.error.is_set() {
            let _ = flush.file.set_len(self.durable.load(Ordering::Acquire));
            drop(self.state.lock());
            self.durable_cv.notify_all();
            return self.error.check();
        }
        // Steal the batch: a buffer swap under the append mutex. Committers
        // are blocked only for the swap, never for the I/O below. The old
        // scratch (cleared after the previous write) becomes the new append
        // buffer, so capacity cycles between the two and neither reallocates
        // once warmed.
        let batch_end = {
            let mut st = self.state.lock();
            std::mem::swap(&mut st.buf, &mut flush.scratch);
            st.appended
        };
        if !flush.scratch.is_empty() {
            let result = flush
                .file
                .write_all(&flush.scratch)
                .and_then(|()| flush.file.sync_data());
            flush.scratch.clear();
            if let Err(e) = result {
                self.error.record(e);
                // Best effort: the batch is unconfirmed, so cut the file
                // back to the confirmed watermark — its bytes may have been
                // written (even fully, with only the sync failing) and must
                // not outlive a crash, or recovery would replay Sync
                // transactions that were reported rolled back.
                let _ = flush.file.set_len(self.durable.load(Ordering::Acquire));
            } else {
                flush.batches += 1;
            }
        }
        match self.error.get() {
            None => {
                // Publish under the append mutex: a waiter holding it from
                // watermark-check through `durable_cv.wait` cannot miss this
                // store-then-notify.
                let guard = self.state.lock();
                self.durable.fetch_max(batch_end, Ordering::Release);
                drop(guard);
                self.durable_cv.notify_all();
                Ok(())
            }
            Some(err) => {
                // Wake waiters so they observe the sticky error instead of
                // sleeping until their safety timeout.
                drop(self.state.lock());
                self.durable_cv.notify_all();
                Err(err)
            }
        }
    }
}

/// A batched redo-log writer with per-transaction durability tickets: the
/// group-commit subsystem (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mmdb_storage::log::{read_log_file, LogOp, LogRecord, RedoLogger};
/// use mmdb_storage::group_commit::GroupCommitLog;
/// use mmdb_common::ids::{TableId, Timestamp};
/// use mmdb_common::row::Row;
///
/// let path = std::env::temp_dir().join(format!("gc-doc-{}.log", std::process::id()));
/// let log = Arc::new(GroupCommitLog::create(&path).unwrap());
/// log.append(LogRecord {
///     end_ts: Timestamp(7),
///     ops: vec![LogOp::Write { table: TableId(0), row: Row::from(vec![0u8; 16]) }],
/// });
/// // Tickless log: the explicit flush (or a Sync committer's
/// // `wait_durable`) hardens the batch.
/// log.flush().unwrap();
/// assert_eq!(read_log_file(&path).unwrap().records.len(), 1);
/// # drop(log); std::fs::remove_file(&path).unwrap();
/// ```
pub struct GroupCommitLog {
    shared: Arc<Shared>,
    tick: Option<Duration>,
    ticker: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitLog {
    /// Create (truncate) a tickless group-commit log at `path`: no
    /// background flusher runs, batches are hardened by leader-elected
    /// inline flushes in [`wait_durable`](crate::log::RedoLogger::wait_durable),
    /// by explicit [`flush`](crate::log::RedoLogger::flush) calls, and once
    /// more on drop.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<GroupCommitLog> {
        Self::new(path, None)
    }

    /// Create (truncate) a group-commit log whose dedicated background
    /// flusher hardens the shared buffer every `tick` — the paper's
    /// asynchronous group commit. Sync committers wait at most one tick (the
    /// inline-leader path stays available to explicit `flush` callers);
    /// Async committers never wait at all.
    pub fn with_tick(path: impl AsRef<Path>, tick: Duration) -> std::io::Result<GroupCommitLog> {
        Self::new(path, Some(tick))
    }

    fn new(path: impl AsRef<Path>, tick: Option<Duration>) -> std::io::Result<GroupCommitLog> {
        let file = File::create(path)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(AppendState {
                buf: Vec::with_capacity(BUFFER_CAPACITY),
                appended: 0,
            }),
            durable_cv: Condvar::new(),
            flush: Mutex::new(FlushState {
                file,
                scratch: Vec::with_capacity(BUFFER_CAPACITY),
                batches: 0,
            }),
            durable: AtomicU64::new(0),
            error: StickyError::default(),
            records: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let ticker = tick.map(|tick| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mmdb-group-commit".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::Acquire) {
                        std::thread::sleep(tick);
                        // Errors are sticky and surfaced to waiters/flush
                        // callers; the ticker itself keeps ticking so
                        // waiters keep being woken.
                        let _ = shared.harden();
                    }
                })
                .expect("spawn group-commit flusher")
        });
        Ok(GroupCommitLog {
            shared,
            tick,
            ticker: Mutex::new(ticker),
        })
    }

    /// The background flusher tick, or `None` for a tickless (inline-leader)
    /// log.
    pub fn tick(&self) -> Option<Duration> {
        self.tick
    }

    /// Logical end offset of everything appended so far (durable or not).
    pub fn appended_lsn(&self) -> Lsn {
        Lsn(self.shared.state.lock().appended)
    }

    /// Offset below which every byte is confirmed on durable storage.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.shared.durable.load(Ordering::Acquire))
    }

    /// Number of non-empty batches hardened so far. With concurrent
    /// committers this is (much) smaller than
    /// [`records_written`](crate::log::RedoLogger::records_written) — the
    /// whole point of group commit, and what the mid-batch crash tests use
    /// to prove batches really spanned multiple transactions.
    pub fn batches_hardened(&self) -> u64 {
        self.shared.flush.lock().batches
    }
}

impl RedoLogger for GroupCommitLog {
    fn append(&self, record: LogRecord) {
        self.append_frame_ticketed(&encode_record(&record));
    }

    fn append_frame(&self, frame: &[u8]) {
        self.append_frame_ticketed(frame);
    }

    fn append_frame_ticketed(&self, frame: &[u8]) -> Lsn {
        let lsn = {
            let mut st = self.shared.state.lock();
            // A torn log buffers no further bytes — they could never be
            // hardened (the flusher is gated on the sticky error), so
            // keeping them would only grow the buffer without bound. The
            // ticket still advances, stays monotone, and can never be
            // reported durable.
            if !self.shared.error.is_set() {
                st.buf.extend_from_slice(frame);
            }
            st.appended += frame.len() as u64;
            Lsn(st.appended)
        };
        self.shared.records.fetch_add(1, Ordering::Relaxed);
        lsn
    }

    fn wait_durable(&self, upto: Lsn) -> Result<()> {
        let shared = &*self.shared;
        loop {
            // Durability confirmed before (or despite) any later failure
            // counts: the bytes are on the device.
            if shared.durable.load(Ordering::Acquire) >= upto.0 {
                return Ok(());
            }
            if let Some(err) = shared.error.get() {
                return Err(err);
            }
            if self.tick.is_none() {
                // Leader election: whoever wins the flush lock hardens the
                // batch — which covers every committer queued so far — while
                // the losers block on the condvar below and are woken by the
                // leader's publish.
                if let Some(mut flush) = shared.flush.try_lock() {
                    let _ = shared.harden_locked(&mut flush);
                    continue;
                }
            }
            let mut st = shared.state.lock();
            // Re-check both exit conditions under the mutex the watermark
            // (and the error wakeup) are published under — after this point
            // neither a publish nor a failing harden's notify can slip past
            // the wait.
            if shared.durable.load(Ordering::Acquire) >= upto.0 {
                return Ok(());
            }
            if let Some(err) = shared.error.get() {
                return Err(err);
            }
            // Timed slice, not an unbounded wait: a safety net so a wedged
            // or shut-down flusher degrades into polling instead of hanging
            // the committer forever.
            shared.durable_cv.wait_for(&mut st, WAIT_SLICE);
        }
    }

    fn flush(&self) -> Result<()> {
        self.shared.harden()
    }

    fn records_written(&self) -> u64 {
        self.shared.records.load(Ordering::Relaxed)
    }
}

impl Drop for GroupCommitLog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.ticker.lock().take() {
            let _ = handle.join();
        }
        // Final harden so a cleanly dropped log leaves no torn tail.
        let _ = self.shared.harden();
    }
}

impl std::fmt::Debug for GroupCommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitLog")
            .field("tick", &self.tick)
            .field("appended", &self.appended_lsn().0)
            .field("durable", &self.durable_lsn().0)
            .field("records", &self.records_written())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{read_log_bytes, read_log_file, FileLogger, LogOp};
    use mmdb_common::error::MmdbError;
    use mmdb_common::ids::{TableId, Timestamp};
    use mmdb_common::row::Row;

    fn record(ts: u64, fill: u8) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: vec![LogOp::Write {
                table: TableId(0),
                row: Row::from(vec![fill; 24]),
            }],
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmdb-groupcommit-{}-{tag}.log", std::process::id()))
    }

    #[test]
    fn batched_frames_round_trip_and_boundaries_are_invisible() {
        let path = scratch("roundtrip");
        let records: Vec<LogRecord> = (0..10).map(|i| record(i + 1, i as u8)).collect();
        {
            let log = GroupCommitLog::create(&path).unwrap();
            for r in &records[..4] {
                log.append(r.clone());
            }
            log.flush().unwrap(); // batch 1: four records, one write+sync
            for r in &records[4..] {
                log.append(r.clone());
            }
            log.flush().unwrap(); // batch 2: six records
            assert_eq!(log.records_written(), 10);
            assert_eq!(log.batches_hardened(), 2);
            assert_eq!(log.durable_lsn(), log.appended_lsn());
        }
        // The wire stream is the plain concatenation of the frames — batch
        // boundaries left no trace, and a FileLogger produces the identical
        // bytes for the same appends.
        let bytes = std::fs::read(&path).unwrap();
        let outcome = read_log_bytes(&bytes).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, records);
        let file_path = scratch("roundtrip-file");
        {
            let file_log = FileLogger::create(&file_path).unwrap();
            for r in &records {
                file_log.append(r.clone());
            }
            file_log.flush().unwrap();
        }
        assert_eq!(bytes, std::fs::read(&file_path).unwrap());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&file_path);
    }

    #[test]
    fn drop_hardens_the_tail() {
        let path = scratch("drop");
        {
            let log = GroupCommitLog::create(&path).unwrap();
            log.append(record(1, 0xAA));
            // No flush, no wait: drop must harden the buffered frame.
        }
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(1, 0xAA)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ticked_flusher_hardens_without_any_explicit_flush() {
        let path = scratch("ticked");
        let log = GroupCommitLog::with_tick(&path, Duration::from_millis(1)).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(3, 1)));
        // The background flusher alone must advance the watermark.
        log.wait_durable(lsn).unwrap();
        assert!(log.durable_lsn() >= lsn);
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(3, 1)]);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tickless_wait_durable_elects_an_inline_leader() {
        let path = scratch("leader");
        let log = GroupCommitLog::create(&path).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(5, 2)));
        // No ticker exists; wait_durable itself must flush.
        log.wait_durable(lsn).unwrap();
        assert_eq!(read_log_file(&path).unwrap().records, vec![record(5, 2)]);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    /// The ordering acceptance test: racing committers against the flusher,
    /// a ticket is never reported durable before every lower LSN's bytes are
    /// in the file. Each committer checks the *file size on disk* right
    /// after `wait_durable` returns — `lsn` is a byte offset, so
    /// `file_len >= lsn` is exactly "my bytes (and everything before them)
    /// hit the file".
    #[test]
    fn wait_durable_never_reports_before_lower_lsns_hit_the_file() {
        for (tag, tick) in [
            ("order-tickless", None),
            ("order-ticked", Some(Duration::from_micros(200))),
        ] {
            let path = scratch(tag);
            let log = Arc::new(match tick {
                None => GroupCommitLog::create(&path).unwrap(),
                Some(t) => GroupCommitLog::with_tick(&path, t).unwrap(),
            });
            const THREADS: u64 = 4;
            const APPENDS: u64 = 64;
            std::thread::scope(|scope| {
                for w in 0..THREADS {
                    let log = Arc::clone(&log);
                    let path = path.clone();
                    scope.spawn(move || {
                        for i in 0..APPENDS {
                            let rec = record(w * APPENDS + i + 1, w as u8);
                            let lsn = log.append_frame_ticketed(&encode_record(&rec));
                            log.wait_durable(lsn).unwrap();
                            let len = std::fs::metadata(&path).expect("log exists").len();
                            assert!(
                                len >= lsn.0,
                                "[{tag}] ticket {lsn:?} reported durable but the file \
                                 holds only {len} bytes"
                            );
                        }
                    });
                }
            });
            log.flush().unwrap();
            let outcome = read_log_file(&path).unwrap();
            assert!(outcome.is_clean());
            assert_eq!(outcome.records.len(), (THREADS * APPENDS) as usize);
            assert_eq!(log.records_written(), THREADS * APPENDS);
            drop(log);
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Concurrent Sync committers share flushes: far fewer hardened batches
    /// than records. (Deterministic upper bound is impossible under
    /// scheduling noise; the assertion is the weak one that batching
    /// happened at all, the committed benchmark datapoint carries the
    /// quantitative claim.)
    #[test]
    fn concurrent_committers_coalesce_into_batches() {
        let path = scratch("coalesce");
        let log = Arc::new(GroupCommitLog::create(&path).unwrap());
        const THREADS: u64 = 4;
        const APPENDS: u64 = 128;
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..APPENDS {
                        let rec = record(w * APPENDS + i + 1, w as u8);
                        let lsn = log.append_frame_ticketed(&encode_record(&rec));
                        log.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        assert_eq!(log.records_written(), THREADS * APPENDS);
        assert!(
            log.batches_hardened() < THREADS * APPENDS,
            "every record got its own batch — group commit never coalesced \
             ({} batches for {} records)",
            log.batches_hardened(),
            THREADS * APPENDS
        );
        drop(log);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn io_errors_are_sticky_and_propagate_through_wait_durable() {
        // /dev/full accepts the open but fails every write with ENOSPC:
        // the ticket can never become durable, and the error must reach the
        // waiting committer instead of hanging or silently succeeding.
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let log = GroupCommitLog::create("/dev/full").unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(1, 3)));
        let first = log.wait_durable(lsn);
        assert!(
            matches!(first, Err(MmdbError::LogIo(_))),
            "wait_durable must surface the write failure, got {first:?}"
        );
        // Sticky: later waits and flushes keep failing with the first error.
        assert_eq!(first, log.wait_durable(lsn));
        assert_eq!(first, log.flush());
        // Appends after the failure never panic or block.
        let lsn2 = log.append_frame_ticketed(&encode_record(&record(2, 4)));
        assert!(lsn2 > lsn);
        assert!(log.wait_durable(lsn2).is_err());
        assert_eq!(log.durable_lsn(), Lsn::ZERO);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn ticked_log_surfaces_flusher_errors_to_waiters() {
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let log = GroupCommitLog::with_tick("/dev/full", Duration::from_millis(1)).unwrap();
        let lsn = log.append_frame_ticketed(&encode_record(&record(1, 5)));
        // The *background* flusher hits ENOSPC; the waiter must still learn
        // about it promptly (woken by the failing harden, not the timeout).
        let result = log.wait_durable(lsn);
        assert!(matches!(result, Err(MmdbError::LogIo(_))), "{result:?}");
    }

    /// Once the log is torn, no later batch may be written: the failed
    /// batch can have left a partial frame at the tail, and appending past
    /// it would turn a recoverable torn tail into mid-stream corruption
    /// (and durably persist frames of transactions that were reported
    /// rolled back). Simulates the tear by recording the sticky error
    /// directly, then drives every write path (flush, wait_durable leader,
    /// drop) and asserts the file never grows.
    #[test]
    fn a_torn_log_never_writes_later_batches() {
        let path = scratch("torn-gate");
        let log = GroupCommitLog::create(&path).unwrap();
        log.append(record(1, 1));
        log.flush().unwrap();
        let confirmed = log.durable_lsn();

        log.shared
            .error
            .record(std::io::Error::other("simulated mid-batch tear"));
        // Simulate the failing batch's partial progress: unconfirmed bytes
        // that reached the file (or page cache) before the error.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"unconfirmed partial batch").unwrap();
        }
        let lsn = log.append_frame_ticketed(&encode_record(&record(2, 2)));
        assert!(lsn > confirmed, "tickets stay monotone after the tear");
        assert!(log.flush().is_err());
        assert!(log.wait_durable(lsn).is_err());
        // A ticket confirmed durable before the failure still succeeds.
        log.wait_durable(confirmed).unwrap();
        assert_eq!(log.durable_lsn(), confirmed);
        drop(log); // the final drop-harden must not write either

        // The gated hardens truncated the unconfirmed tail back to the
        // watermark: the file holds exactly the confirmed prefix, cleanly.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            confirmed.0,
            "unconfirmed bytes must be cut back to the durable watermark"
        );
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(
            outcome.records,
            vec![record(1, 1)],
            "no bytes may reach the file after the tear"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lsn_tickets_are_monotone_byte_offsets() {
        let path = scratch("lsn");
        let log = GroupCommitLog::create(&path).unwrap();
        assert_eq!(log.appended_lsn(), Lsn::ZERO);
        let frame = encode_record(&record(1, 0));
        let a = log.append_frame_ticketed(&frame);
        let b = log.append_frame_ticketed(&frame);
        assert_eq!(a.0, frame.len() as u64);
        assert_eq!(b.0, 2 * frame.len() as u64);
        assert!(b > a);
        assert_eq!(log.appended_lsn(), b);
        assert_eq!(log.durable_lsn(), Lsn::ZERO);
        log.flush().unwrap();
        assert_eq!(log.durable_lsn(), b);
        drop(log);
        let _ = std::fs::remove_file(&path);
    }
}
