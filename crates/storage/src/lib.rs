//! # mmdb-storage
//!
//! The multiversion storage substrate of mmdb: versions with tagged
//! Begin/End words, tables of latch-free hash indexes, the global transaction
//! table, cooperative garbage collection and asynchronous redo logging.
//!
//! This crate implements §2 of *"High-Performance Concurrency Control
//! Mechanisms for Main-Memory Databases"* (Larson et al., VLDB 2011) minus
//! the visibility logic and the concurrency-control schemes themselves, which
//! live in `mmdb-core` and are layered on top of [`MvStore`].
//!
//! Module map:
//!
//! * [`version`] — the version record (Figure 1): Begin/End atomics, payload,
//!   per-index chain pointers.
//! * [`table`] — tables: per-index [`mmdb_index::HashIndex`] +
//!   [`mmdb_index::BucketLockTable`], key extraction, version linking.
//! * [`txn_table`] — transaction handles (state machine, commit-dependency
//!   and wait-for-dependency bookkeeping) and the global transaction table.
//! * [`gc`] — the garbage queue feeding cooperative collection.
//! * [`log`] — non-blocking redo logging (null / in-memory / file) and the
//!   durability-ticket surface ([`log::Lsn`]).
//! * [`group_commit`] — the shared-buffer batched log writer
//!   ([`GroupCommitLog`]): one `write`+sync per batch, per-transaction
//!   durability tickets, background-tick or leader-elected flushing.
//! * [`checkpoint`] — checkpointing and log truncation
//!   ([`CheckpointStore`]): consistent snapshot images, the torn-tolerant
//!   `MANIFEST`, and crash-atomic write → install → truncate, turning
//!   recovery into load-checkpoint + replay-tail.
//! * [`recovery`] — partitioned parallel recovery: one decode pass over the
//!   checkpoint chain + log tail, table-sharded apply workers.
//! * [`store`] — [`MvStore`], the bundle shared by all transactions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod checkpoint;
pub mod gc;
pub mod group_commit;
pub mod log;
pub mod recovery;
pub mod store;
pub mod table;
pub mod txn_table;
pub mod version;

pub use checkpoint::{
    read_checkpoint, CheckpointContents, CheckpointRef, CheckpointStore, CheckpointWriter,
    FinishedCheckpoint, RecoveryPlan,
};
pub use gc::{GcItem, GcQueue};
pub use group_commit::GroupCommitLog;
pub use log::{FileLogger, LogOp, LogRecord, Lsn, MemoryLogger, NullLogger, RedoLogger};
pub use recovery::{recover_partitioned, RecoveredImage};
pub use store::MvStore;
pub use table::{Table, VersionPtr};
pub use txn_table::{DepRegistration, TxnHandle, TxnState, TxnTable};
pub use version::Version;
