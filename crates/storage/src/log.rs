//! Redo logging.
//!
//! The paper's experimental setup (§5): *"Each transaction generates log
//! records but these are asynchronously written to durable storage;
//! transactions do not wait for log I/O to complete."* Commit ordering is
//! determined by end timestamps included in the records, so multiple log
//! streams are possible (§3.2).
//!
//! The engine therefore only needs a non-blocking `append`. Three
//! implementations are provided:
//!
//! * [`NullLogger`] — drops records (pure concurrency-control measurements).
//! * [`MemoryLogger`] — keeps records in memory; used by tests to assert
//!   ordering and content.
//! * [`FileLogger`] — appends length-prefixed binary records to a file
//!   through an internal buffer; `flush` is explicit (group commit) and never
//!   on the transaction's commit path.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use mmdb_common::ids::{TableId, Timestamp};
use mmdb_common::row::Row;

/// One logged write of a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// A new version (insert or the "after" image of an update).
    Write {
        /// Table written.
        table: TableId,
        /// Full payload of the new version.
        row: Row,
    },
    /// A delete, logged by primary key (§3.2: "deletes are logged by writing
    /// a unique key").
    Delete {
        /// Table written.
        table: TableId,
        /// Primary-index key of the deleted row.
        key: u64,
    },
}

/// A commit record: the transaction's end timestamp plus its writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Commit (end) timestamp — determines replay order.
    pub end_ts: Timestamp,
    /// The transaction's redo operations.
    pub ops: Vec<LogOp>,
}

impl LogRecord {
    /// Approximate serialized size in bytes (payload + 8 bytes of metadata
    /// per record, as in the paper's I/O estimate).
    pub fn byte_size(&self) -> u64 {
        let body: usize = self
            .ops
            .iter()
            .map(|op| match op {
                LogOp::Write { row, .. } => row.len() + 8,
                LogOp::Delete { .. } => 16,
            })
            .sum();
        body as u64 + 8
    }
}

/// A redo-log sink. `append` must never block on I/O.
pub trait RedoLogger: Send + Sync + 'static {
    /// Append one commit record.
    fn append(&self, record: LogRecord);

    /// Force buffered records towards durable storage (group commit tick).
    fn flush(&self) {}

    /// Number of records appended so far.
    fn records_written(&self) -> u64;
}

/// Logger that discards everything (useful to isolate CC costs).
#[derive(Debug, Default)]
pub struct NullLogger {
    count: std::sync::atomic::AtomicU64,
}

impl NullLogger {
    /// Create a new discarding logger.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RedoLogger for NullLogger {
    fn append(&self, _record: LogRecord) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn records_written(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Logger that retains all records in memory (tests, examples).
#[derive(Debug, Default)]
pub struct MemoryLogger {
    records: Mutex<Vec<LogRecord>>,
}

impl MemoryLogger {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all records appended so far.
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Total bytes that would have been written.
    pub fn byte_size(&self) -> u64 {
        self.records.lock().iter().map(LogRecord::byte_size).sum()
    }
}

impl RedoLogger for MemoryLogger {
    fn append(&self, record: LogRecord) {
        self.records.lock().push(record);
    }
    fn records_written(&self) -> u64 {
        self.records.lock().len() as u64
    }
}

/// Logger appending binary records to a file through a buffer. Appends go to
/// an in-memory buffer under a mutex; actual file writes happen on `flush`
/// (called by a background ticker or at shutdown), so the commit path never
/// waits for I/O — matching the paper's asynchronous group commit.
pub struct FileLogger {
    writer: Mutex<BufWriter<File>>,
    count: std::sync::atomic::AtomicU64,
}

impl FileLogger {
    /// Create (truncate) a log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileLogger> {
        let file = File::create(path)?;
        Ok(FileLogger {
            writer: Mutex::new(BufWriter::with_capacity(1 << 20, file)),
            count: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

impl RedoLogger for FileLogger {
    fn append(&self, record: LogRecord) {
        let mut w = self.writer.lock();
        // Record header: end timestamp + op count.
        let _ = w.write_all(&record.end_ts.raw().to_le_bytes());
        let _ = w.write_all(&(record.ops.len() as u32).to_le_bytes());
        for op in &record.ops {
            match op {
                LogOp::Write { table, row } => {
                    let _ = w.write_all(&[0u8]);
                    let _ = w.write_all(&table.0.to_le_bytes());
                    let _ = w.write_all(&(row.len() as u32).to_le_bytes());
                    let _ = w.write_all(row);
                }
                LogOp::Delete { table, key } => {
                    let _ = w.write_all(&[1u8]);
                    let _ = w.write_all(&table.0.to_le_bytes());
                    let _ = w.write_all(&key.to_le_bytes());
                }
            }
        }
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }

    fn records_written(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64, rows: usize) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: (0..rows)
                .map(|i| LogOp::Write {
                    table: TableId(0),
                    row: Row::from(vec![i as u8; 24]),
                })
                .collect(),
        }
    }

    #[test]
    fn memory_logger_preserves_order_and_content() {
        let log = MemoryLogger::new();
        log.append(record(10, 2));
        log.append(record(12, 1));
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].end_ts, Timestamp(10));
        assert_eq!(records[1].end_ts, Timestamp(12));
        assert_eq!(records[0].ops.len(), 2);
        assert_eq!(log.records_written(), 2);
        // 24-byte rows + 8 bytes metadata each + 8 per record.
        assert_eq!(log.byte_size(), (2 * 32 + 8) + (32 + 8));
    }

    #[test]
    fn null_logger_counts_only() {
        let log = NullLogger::new();
        log.append(record(1, 1));
        log.append(record(2, 1));
        assert_eq!(log.records_written(), 2);
    }

    #[test]
    fn delete_records_are_small() {
        let rec = LogRecord {
            end_ts: Timestamp(5),
            ops: vec![LogOp::Delete {
                table: TableId(3),
                key: 42,
            }],
        };
        assert_eq!(rec.byte_size(), 24);
    }

    #[test]
    fn file_logger_writes_bytes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-test-{}.bin", std::process::id()));
        {
            let log = FileLogger::create(&path).unwrap();
            log.append(record(7, 3));
            log.append(record(9, 1));
            log.flush();
            assert_eq!(log.records_written(), 2);
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len > 0, "file log should contain bytes after flush");
        let _ = std::fs::remove_file(&path);
    }
}
