//! Redo logging: write side and read (recovery) side.
//!
//! The paper's experimental setup (§5): *"Each transaction generates log
//! records but these are asynchronously written to durable storage;
//! transactions do not wait for log I/O to complete."* Commit ordering is
//! determined by end timestamps included in the records, so multiple log
//! streams are possible (§3.2).
//!
//! The engine therefore only needs a non-blocking `append`. Three
//! implementations are provided:
//!
//! * [`NullLogger`] — drops records (pure concurrency-control measurements).
//! * [`MemoryLogger`] — keeps records in memory; used by tests to assert
//!   ordering and content.
//! * [`FileLogger`] — appends framed binary records to a file through an
//!   internal buffer; `flush` is explicit (group commit) and never on the
//!   transaction's commit path. I/O errors are sticky and surfaced by
//!   [`RedoLogger::flush`].
//!
//! ## Wire format
//!
//! Each record is one self-delimiting frame:
//!
//! ```text
//! frame := [body_len: u32 LE] [body_len ^ LEN_CHECK: u32 LE] [body] [checksum: u64 LE]
//! body  := [end_ts: u64 LE] [op_count: u32 LE] op*
//! op    := 0x00 [table: u32 LE] [row_len: u32 LE] [row bytes]   (Write)
//!        | 0x01 [table: u32 LE] [key: u64 LE]                   (Delete)
//! ```
//!
//! `checksum` is [`hash_bytes`] over `body`; the length prefix carries its
//! own XOR self-check (it is what the reader walks the file by, so it can't
//! rely on the body checksum it locates). Together they let [`LogReader`]
//! distinguish a **torn tail** (a crash mid-append truncated the file:
//! fewer bytes remain than the frame promises — tolerated, the partial
//! frame is discarded) from **corruption** inside the valid region (length
//! self-check, checksum or structure mismatch — surfaced as
//! [`MmdbError::LogCorrupt`]).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use mmdb_common::error::{MmdbError, Result};
use mmdb_common::hash::hash_bytes;
use mmdb_common::ids::{TableId, Timestamp};
use mmdb_common::row::Row;

/// One logged write of a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// A new version (insert or the "after" image of an update).
    Write {
        /// Table written.
        table: TableId,
        /// Full payload of the new version.
        row: Row,
    },
    /// A delete, logged by primary key (§3.2: "deletes are logged by writing
    /// a unique key").
    Delete {
        /// Table written.
        table: TableId,
        /// Primary-index key of the deleted row.
        key: u64,
    },
}

/// A commit record: the transaction's end timestamp plus its writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Commit (end) timestamp — determines replay order.
    pub end_ts: Timestamp,
    /// The transaction's redo operations.
    pub ops: Vec<LogOp>,
}

impl LogRecord {
    /// Approximate serialized size in bytes (payload + 8 bytes of metadata
    /// per record, as in the paper's I/O estimate). The actual wire encoding
    /// ([`encode_record`]) adds framing (length prefix + checksum) on top.
    pub fn byte_size(&self) -> u64 {
        let body: usize = self
            .ops
            .iter()
            .map(|op| match op {
                LogOp::Write { row, .. } => row.len() + 8,
                LogOp::Delete { .. } => 16,
            })
            .sum();
        body as u64 + 8
    }
}

/// Borrowed view of one redo op — the allocation-free input of
/// [`encode_frame_into`]. The committing transaction derives these straight
/// from its write set; nothing is materialized.
#[derive(Debug, Clone, Copy)]
pub enum LogOpRef<'a> {
    /// A new version (insert or the "after" image of an update).
    Write {
        /// Table written.
        table: TableId,
        /// Full payload of the new version (borrowed from the version).
        row: &'a [u8],
    },
    /// A delete, logged by primary key.
    Delete {
        /// Table written.
        table: TableId,
        /// Primary-index key of the deleted row.
        key: u64,
    },
}

/// Serialize one record into `buf` as a framed wire record (appended; the
/// caller clears and reuses the buffer — after warmup this allocates
/// nothing). Byte-identical to [`encode_record`] for the same ops, which is
/// what keeps `FileLogger` streams written through either path comparable.
pub fn encode_frame_into<'a>(
    buf: &mut Vec<u8>,
    end_ts: Timestamp,
    ops: impl Iterator<Item = LogOpRef<'a>>,
) {
    let frame_start = buf.len();
    // Length prefix + self-check are patched once the body size is known.
    buf.extend_from_slice(&[0u8; 8]);
    let body_start = buf.len();
    buf.extend_from_slice(&end_ts.raw().to_le_bytes());
    // Op count is patched after the ops are written.
    let count_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    let mut op_count: u32 = 0;
    for op in ops {
        op_count += 1;
        match op {
            LogOpRef::Write { table, row } => {
                buf.push(0u8);
                buf.extend_from_slice(&table.0.to_le_bytes());
                buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
                buf.extend_from_slice(row);
            }
            LogOpRef::Delete { table, key } => {
                buf.push(1u8);
                buf.extend_from_slice(&table.0.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
            }
        }
    }
    buf[count_at..count_at + 4].copy_from_slice(&op_count.to_le_bytes());
    let body_len = (buf.len() - body_start) as u32;
    buf[frame_start..frame_start + 4].copy_from_slice(&body_len.to_le_bytes());
    buf[frame_start + 4..frame_start + 8]
        .copy_from_slice(&(body_len ^ LEN_CHECK_XOR).to_le_bytes());
    let checksum = hash_bytes(&buf[body_start..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
}

/// Serialize one record into its framed wire representation.
pub fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut frame = Vec::with_capacity(record.byte_size() as usize + 32);
    encode_frame_into(
        &mut frame,
        record.end_ts,
        record.ops.iter().map(|op| match op {
            LogOp::Write { table, row } => LogOpRef::Write { table: *table, row },
            LogOp::Delete { table, key } => LogOpRef::Delete {
                table: *table,
                key: *key,
            },
        }),
    );
    frame
}

/// The length prefix is what the reader walks the file by, so it carries its
/// own redundancy: a copy XORed with this constant. Without it, a corrupted
/// length in the middle of the file would make the rest of the log look like
/// a torn tail and silently drop committed records; with it, any readable
/// header whose two words disagree is surfaced as [`MmdbError::LogCorrupt`].
const LEN_CHECK_XOR: u32 = 0x5EC0_3D1E;

/// Decode one record body (the part covered by the checksum). `offset` is
/// the frame's byte offset in the log, used for error reporting only.
pub(crate) fn decode_body(body: &[u8], offset: u64) -> Result<LogRecord> {
    let corrupt = |reason: &'static str| MmdbError::LogCorrupt { offset, reason };
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        let slice = body
            .get(pos..pos + n)
            .ok_or(corrupt("record body shorter than its op list requires"))?;
        pos += n;
        Ok(slice)
    };
    let end_ts = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let op_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    let mut ops = Vec::with_capacity(op_count as usize);
    for _ in 0..op_count {
        let tag = take(1)?[0];
        let table = TableId(u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")));
        match tag {
            0 => {
                let row_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
                let row = Row::copy_from_slice(take(row_len)?);
                ops.push(LogOp::Write { table, row });
            }
            1 => {
                let key = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
                ops.push(LogOp::Delete { table, key });
            }
            _ => return Err(corrupt("unknown op tag")),
        }
    }
    if pos != body.len() {
        return Err(corrupt("trailing bytes after the last op"));
    }
    Ok(LogRecord {
        end_ts: Timestamp(end_ts),
        ops,
    })
}

/// Iterator-style decoder over the framed log bytes.
///
/// A crash truncates the log at an arbitrary byte offset, so the last frame
/// may be incomplete. [`LogReader::next_record`] treats an incomplete frame
/// as end-of-log (`Ok(None)` with [`LogReader::is_torn`] set) rather than
/// an error; anything structurally wrong *inside* a complete frame is
/// [`MmdbError::LogCorrupt`].
pub struct LogReader<'a> {
    buf: &'a [u8],
    pos: usize,
    torn: bool,
}

impl<'a> LogReader<'a> {
    /// Read frames from a byte buffer (e.g. the contents of a log file).
    pub fn new(buf: &'a [u8]) -> LogReader<'a> {
        LogReader {
            buf,
            pos: 0,
            torn: false,
        }
    }

    /// Byte offset of the next unread frame — after the final
    /// `next_record()`, the number of cleanly decoded bytes.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// True once the reader has hit an incomplete trailing frame.
    pub fn is_torn(&self) -> bool {
        self.torn
    }

    /// Decode the next complete record. `Ok(None)` means no complete frame
    /// remains — either a clean end of log or a torn tail (check
    /// [`is_torn`](Self::is_torn)).
    pub fn next_record(&mut self) -> Result<Option<LogRecord>> {
        if self.torn {
            return Ok(None);
        }
        let remaining = &self.buf[self.pos..];
        if remaining.is_empty() {
            return Ok(None);
        }
        let offset = self.pos as u64;
        if remaining.len() < 8 {
            self.torn = true;
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes"));
        let len_check = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if body_len ^ LEN_CHECK_XOR != len_check {
            // The walk depends on the length being right; a header whose two
            // words disagree is corruption, not a tear — treating it as a
            // torn tail would silently drop every later committed record.
            return Err(MmdbError::LogCorrupt {
                offset,
                reason: "length prefix fails its self-check",
            });
        }
        let body_len = body_len as usize;
        let frame_len = 8 + body_len + 8;
        if remaining.len() < frame_len {
            self.torn = true;
            return Ok(None);
        }
        let body = &remaining[8..8 + body_len];
        let stored = u64::from_le_bytes(
            remaining[8 + body_len..frame_len]
                .try_into()
                .expect("8 bytes"),
        );
        if hash_bytes(body) != stored {
            return Err(MmdbError::LogCorrupt {
                offset,
                reason: "checksum mismatch",
            });
        }
        let record = decode_body(body, offset)?;
        self.pos += frame_len;
        Ok(Some(record))
    }
}

/// Everything a tolerant read of a (possibly crash-truncated) log yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogReadOutcome {
    /// The completely written records, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes occupied by the complete frames.
    pub valid_bytes: u64,
    /// Bytes discarded as a torn (incomplete) trailing frame.
    pub torn_bytes: u64,
}

impl LogReadOutcome {
    /// True when the log ended exactly on a frame boundary.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0
    }
}

/// Decode every complete record from `buf`, tolerating a torn tail.
pub fn read_log_bytes(buf: &[u8]) -> Result<LogReadOutcome> {
    let mut reader = LogReader::new(buf);
    let mut records = Vec::new();
    while let Some(record) = reader.next_record()? {
        records.push(record);
    }
    let valid_bytes = reader.offset();
    Ok(LogReadOutcome {
        records,
        valid_bytes,
        torn_bytes: buf.len() as u64 - valid_bytes,
    })
}

/// Chunk size of the streaming log reader: how many bytes each `read(2)`
/// pulls from the file. Recovery memory is bounded by one chunk plus the
/// largest single frame, not the log size.
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Decode every complete record from the log file at `path`.
///
/// Frames are streamed through a fixed-size chunk buffer (`READ_CHUNK`);
/// the buffer only grows past that when a single frame is larger than a
/// chunk. The outcome is byte-for-byte identical to reading the whole file
/// and calling [`read_log_bytes`] — same records, same `valid_bytes` /
/// `torn_bytes`, same corruption offsets — without ever holding the log's
/// raw bytes in memory at once.
pub fn read_log_file(path: impl AsRef<Path>) -> Result<LogReadOutcome> {
    read_log_file_from(path, 0)
}

/// Decode every complete record from the log file at `path`, starting at
/// byte offset `start` (which must be a frame boundary — in practice a
/// checkpoint LSN translated to a physical offset, or 0).
///
/// Offsets in the outcome and in any [`MmdbError::LogCorrupt`] are absolute
/// file offsets: `valid_bytes` counts from byte 0, so `start` bytes of
/// skipped prefix are included in it.
pub fn read_log_file_from(path: impl AsRef<Path>, start: u64) -> Result<LogReadOutcome> {
    let io = |e: std::io::Error| MmdbError::LogIo(e.to_string());
    let mut file = File::open(path).map_err(io)?;
    if start > 0 {
        file.seek(SeekFrom::Start(start)).map_err(io)?;
    }
    read_log_stream(file, READ_CHUNK, start)
}

/// Decode the complete records occupying the first `len` bytes of the log
/// file at `path`, ignoring everything after.
///
/// The delta checkpointers use this to scan the immutable log prefix below a
/// captured checkpoint LSN: `len` is `ckpt_lsn - segment base`, which both
/// engines guarantee falls on a frame boundary (the LSN was read from the
/// logger's append counter), so the truncated read never reports torn bytes.
pub fn read_log_prefix(path: impl AsRef<Path>, len: u64) -> Result<LogReadOutcome> {
    let io = |e: std::io::Error| MmdbError::LogIo(e.to_string());
    let file = File::open(path).map_err(io)?;
    read_log_stream(file.take(len), READ_CHUNK, 0)
}

/// Streaming raw-frame reader: pulls `chunk`-sized reads from an [`Read`]
/// source and yields the body of each complete frame, mirroring
/// [`LogReader::next_record`]'s torn/corrupt discipline exactly. Shared by
/// the log read side (bodies decode as [`LogRecord`]s) and the checkpoint
/// subsystem (bodies are checkpoint header/row/trailer and manifest
/// entries — same wire discipline, different body schema).
pub(crate) struct FrameStream<R: Read> {
    reader: R,
    chunk: usize,
    /// `buf[start..]` is the undecoded window.
    buf: Vec<u8>,
    start: usize,
    /// Absolute offset of `buf[start]` (the cleanly consumed prefix).
    consumed: u64,
    eof: bool,
    /// Bytes of an incomplete trailing frame, set once the stream ends torn.
    torn_bytes: u64,
}

impl<R: Read> FrameStream<R> {
    /// Stream frames from `reader`, whose first byte sits at absolute offset
    /// `base` (for error reporting and byte accounting).
    pub(crate) fn new(reader: R, chunk: usize, base: u64) -> FrameStream<R> {
        FrameStream {
            reader,
            chunk,
            buf: Vec::with_capacity(chunk),
            start: 0,
            consumed: base,
            eof: false,
            torn_bytes: 0,
        }
    }

    /// Absolute offset of the cleanly consumed prefix.
    pub(crate) fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Bytes of an incomplete trailing frame (0 while frames remain or the
    /// stream ended exactly on a boundary).
    pub(crate) fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Top the window up to `need` bytes (compacting the consumed prefix
    /// first, so the buffer stays one chunk long in steady state and only
    /// grows when a single frame exceeds it).
    fn fill_to(&mut self, need: usize) -> std::io::Result<()> {
        while !self.eof && self.buf.len() - self.start < need {
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let old = self.buf.len();
            self.buf.resize(old + self.chunk.max(need - old), 0);
            match self.reader.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    self.eof = true;
                }
                Ok(n) => self.buf.truncate(old + n),
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The next complete frame's `(absolute offset, body)`. `Ok(None)` is a
    /// clean end or a torn tail — check [`torn_bytes`](Self::torn_bytes).
    pub(crate) fn next_body(&mut self) -> Result<Option<(u64, &[u8])>> {
        let io = |e: std::io::Error| MmdbError::LogIo(e.to_string());
        self.fill_to(8).map_err(io)?;
        let avail = self.buf.len() - self.start;
        if avail < 8 {
            // Clean end (nothing left) or a tail too short for a header.
            self.torn_bytes = avail as u64;
            return Ok(None);
        }
        let header = &self.buf[self.start..self.start + 8];
        let body_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len_check = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if body_len ^ LEN_CHECK_XOR != len_check {
            return Err(MmdbError::LogCorrupt {
                offset: self.consumed,
                reason: "length prefix fails its self-check",
            });
        }
        let frame_len = 8 + body_len as usize + 8;
        self.fill_to(frame_len).map_err(io)?;
        let avail = self.buf.len() - self.start;
        if avail < frame_len {
            // Torn tail: the header promises more bytes than remain.
            self.torn_bytes = avail as u64;
            return Ok(None);
        }
        let body_at = self.start + 8;
        let stored = u64::from_le_bytes(
            self.buf[body_at + body_len as usize..self.start + frame_len]
                .try_into()
                .expect("8 bytes"),
        );
        let body = &self.buf[body_at..body_at + body_len as usize];
        if hash_bytes(body) != stored {
            return Err(MmdbError::LogCorrupt {
                offset: self.consumed,
                reason: "checksum mismatch",
            });
        }
        let offset = self.consumed;
        self.start += frame_len;
        self.consumed += frame_len as u64;
        // Re-borrow after the bookkeeping so the borrow checker is happy.
        let body = &self.buf[body_at..body_at + body_len as usize];
        Ok(Some((offset, body)))
    }
}

/// Frame an opaque body with the log's wire discipline (length prefix with
/// XOR self-check, body, trailing checksum). The inverse of what
/// [`FrameStream::next_body`] verifies; used by the checkpoint subsystem for
/// its header/trailer/manifest frames.
pub(crate) fn frame_body_into(buf: &mut Vec<u8>, body: &[u8]) {
    let len = body.len() as u32;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&(len ^ LEN_CHECK_XOR).to_le_bytes());
    buf.extend_from_slice(body);
    buf.extend_from_slice(&hash_bytes(body).to_le_bytes());
}

/// Core of the streaming read: a [`FrameStream`] whose bodies decode as
/// [`LogRecord`]s. `base` is the absolute offset of the reader's first byte.
fn read_log_stream(reader: impl Read, chunk: usize, base: u64) -> Result<LogReadOutcome> {
    let mut frames = FrameStream::new(reader, chunk, base);
    let mut records = Vec::new();
    while let Some((offset, body)) = frames.next_body()? {
        records.push(decode_body(body, offset)?);
    }
    Ok(LogReadOutcome {
        records,
        valid_bytes: frames.consumed(),
        torn_bytes: frames.torn_bytes(),
    })
}

/// A durability ticket: the logical byte offset (within one logger's stream)
/// up to which a committer's redo bytes extend. Issued by
/// [`RedoLogger::append_frame_ticketed`]; redeemed by
/// [`RedoLogger::wait_durable`], which returns once every byte at offsets
/// `< lsn` is on durable storage.
///
/// Because the log is a single ordered stream, tickets are totally ordered:
/// a ticket becoming durable implies every lower ticket is durable too. The
/// numeric value is only meaningful within the logger that issued it;
/// loggers without batching issue [`Lsn::ZERO`] (their `wait_durable`
/// flushes everything regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The trivially-durable ticket (an empty log prefix).
    pub const ZERO: Lsn = Lsn(0);
}

/// What a [`recover`](LogReadOutcome)-style replay did: how much log it
/// consumed and how many records it applied. Returned by the engines'
/// `recover_bytes` / `recover_file` entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Number of log records replayed into the engine.
    pub records_applied: usize,
    /// Bytes of the log occupied by complete frames.
    pub valid_bytes: u64,
    /// Bytes discarded as a torn trailing frame (0 on a clean shutdown).
    pub torn_bytes: u64,
}

/// A redo-log sink. `append` must never block on I/O.
pub trait RedoLogger: Send + Sync + 'static {
    /// Append one commit record.
    fn append(&self, record: LogRecord);

    /// Append one pre-encoded record frame (the exact bytes
    /// [`encode_frame_into`] produces). This is the hot commit path: the
    /// transaction encodes into a reusable buffer and hands the borrow over,
    /// so byte-sink loggers ([`FileLogger`], [`NullLogger`]) append without
    /// any allocation. Implementations must not retain the borrow.
    ///
    /// The default decodes the frame and delegates to
    /// [`RedoLogger::append`], so record-keeping loggers (and any external
    /// implementation) keep working unchanged.
    fn append_frame(&self, frame: &[u8]) {
        let mut reader = LogReader::new(frame);
        while let Ok(Some(record)) = reader.next_record() {
            self.append(record);
        }
    }

    /// Append one pre-encoded record frame and receive a durability ticket.
    ///
    /// This is the commit path of transactions that may later want to wait
    /// for durability ([`Durability::Sync`](mmdb_common::Durability)): the
    /// returned [`Lsn`] covers this frame and, transitively, every frame
    /// appended before it. The append itself never blocks on I/O — batching
    /// loggers ([`crate::group_commit::GroupCommitLog`]) stage the bytes in a
    /// shared buffer and harden them on their next flush.
    ///
    /// The default delegates to [`RedoLogger::append_frame`] and issues
    /// [`Lsn::ZERO`]: for non-batching loggers the ticket's value is
    /// irrelevant because their [`RedoLogger::wait_durable`] flushes
    /// everything buffered regardless.
    fn append_frame_ticketed(&self, frame: &[u8]) -> Lsn {
        self.append_frame(frame);
        Lsn::ZERO
    }

    /// Block until every byte at offsets below `upto` is on durable storage.
    ///
    /// Ordering guarantee: a ticket is never reported durable before the
    /// bytes of **every** lower ticket have reached the file — the log is a
    /// single ordered stream and flushes cover prefixes.
    ///
    /// The default preserves the pre-ticket behavior: it simply
    /// [`flush`](RedoLogger::flush)es, which for a [`FileLogger`] means one
    /// write-and-sync per waiting transaction (the per-transaction-flush
    /// baseline the `perf-commit` experiment measures group commit against).
    ///
    /// Errors are the logger's sticky I/O errors; once the underlying file
    /// has failed, every subsequent wait fails. A ticket whose bytes were
    /// already confirmed durable before the failure still succeeds.
    fn wait_durable(&self, upto: Lsn) -> Result<()> {
        let _ = upto;
        self.flush()
    }

    /// Force buffered records to durable storage (the group commit tick):
    /// buffered bytes are written **and synced** (`fdatasync`-equivalent) so
    /// a crash of the whole machine, not just the process, cannot lose them.
    ///
    /// Returns the first I/O error encountered by any append or flush since
    /// the logger was created — errors are sticky, so a torn write during an
    /// earlier (fire-and-forget) `append` is still reported here.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Number of records appended so far.
    fn records_written(&self) -> u64;
}

/// Logger that discards everything (useful to isolate CC costs).
#[derive(Debug, Default)]
pub struct NullLogger {
    count: std::sync::atomic::AtomicU64,
}

impl NullLogger {
    /// Create a new discarding logger.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RedoLogger for NullLogger {
    fn append(&self, _record: LogRecord) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn append_frame(&self, _frame: &[u8]) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn records_written(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Logger that retains all records in memory (tests, examples).
#[derive(Debug, Default)]
pub struct MemoryLogger {
    records: Mutex<Vec<LogRecord>>,
}

impl MemoryLogger {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` over a borrow of every record appended so far, in append
    /// order, without cloning. This replaces the old `records()` accessor,
    /// which cloned every record (rows included) on each call — the recovery
    /// tests call this in loops, so the clones were O(history²) in aggregate.
    /// Callers that need owned records clone exactly what they keep.
    pub fn with_records<R>(&self, f: impl FnOnce(&[LogRecord]) -> R) -> R {
        f(&self.records.lock())
    }

    /// Total bytes that would have been written.
    pub fn byte_size(&self) -> u64 {
        self.records.lock().iter().map(LogRecord::byte_size).sum()
    }

    /// The exact bytes a [`FileLogger`] would have produced for the same
    /// append sequence (byte-exact comparison in tests).
    pub fn encoded_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for record in self.records.lock().iter() {
            out.extend_from_slice(&encode_record(record));
        }
        out
    }
}

impl RedoLogger for MemoryLogger {
    fn append(&self, record: LogRecord) {
        self.records.lock().push(record);
    }
    fn records_written(&self) -> u64 {
        self.records.lock().len() as u64
    }
}

/// First-error-wins sticky I/O error slot, shared by the file-backed
/// loggers ([`FileLogger`], [`crate::group_commit::GroupCommitLog`]): the
/// log is torn at the *earliest* failure point, so only the first error is
/// retained and every later flush/wait reports it.
#[derive(Debug, Default)]
pub(crate) struct StickyError(Mutex<Option<String>>);

impl StickyError {
    /// Record `err` if no earlier error is held; later ones are dropped.
    pub(crate) fn record(&self, err: std::io::Error) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(err.to_string());
        }
    }

    /// The held error, if any, as an [`MmdbError::LogIo`].
    pub(crate) fn get(&self) -> Option<MmdbError> {
        self.0.lock().as_ref().map(|m| MmdbError::LogIo(m.clone()))
    }

    /// True once an error has been recorded.
    pub(crate) fn is_set(&self) -> bool {
        self.0.lock().is_some()
    }

    /// `Ok(())` while clean, the held error otherwise.
    pub(crate) fn check(&self) -> Result<()> {
        match self.get() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

/// Logger appending framed binary records to a file through a buffer.
/// Appends go to an in-memory buffer under a mutex; actual file writes (and
/// the sync that makes them durable) happen on `flush` (called by a
/// background ticker or at shutdown), so the commit path never waits for
/// I/O — matching the paper's asynchronous group commit. For a logger whose
/// flush cadence is owned by the logger itself — a shared batch buffer, a
/// background flusher tick, per-transaction durability tickets — see
/// [`crate::group_commit::GroupCommitLog`].
///
/// Because appends are fire-and-forget, an I/O error cannot be returned to
/// the committing transaction. Instead the first error is recorded and every
/// subsequent [`flush`](RedoLogger::flush) fails with it, so the process
/// driving group commit learns the log is torn. A torn log accepts and
/// writes nothing further (dropping the logger discards, never retries, the
/// buffered tail), and the file is cut back to the last *synced* offset —
/// bytes past the tear must not surface after a crash, because recovery
/// would replay them even though their transactions were never confirmed.
pub struct FileLogger {
    inner: Mutex<FileBuf>,
    /// First I/O error seen by any append/flush; sticky once set.
    error: StickyError,
    count: std::sync::atomic::AtomicU64,
}

/// The buffered file behind a [`FileLogger`]. Hand-rolled rather than a
/// `BufWriter` because `BufWriter::drop` retries writing residual buffered
/// bytes — exactly what a torn log must never do.
struct FileBuf {
    file: File,
    /// Frames appended since the last write to the OS.
    buf: Vec<u8>,
    /// File offset up to which bytes are confirmed synced (the truncation
    /// target if a later write fails).
    confirmed: u64,
    /// File offset of everything handed to the OS (synced or not).
    written: u64,
}

/// `FileLogger` spills its buffer to the OS (without syncing) past this
/// size, bounding memory like `BufWriter` did.
const FILE_LOGGER_SPILL: usize = 1 << 20;

impl FileBuf {
    /// Hand the buffered bytes to the OS (no sync). On failure the buffer
    /// is discarded — the log is torn at its earliest unwritten byte and
    /// nothing after the tear may ever reach the file.
    fn write_buffered(&mut self, error: &StickyError) {
        let result = self.file.write_all(&self.buf);
        match result {
            Ok(()) => self.written += self.buf.len() as u64,
            Err(e) => {
                error.record(e);
                // Best effort: cut the file back to the synced prefix so the
                // failing write's partial progress cannot outlive a crash.
                let _ = self.file.set_len(self.confirmed);
            }
        }
        self.buf.clear();
    }
}

impl FileLogger {
    /// Create (truncate) a log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileLogger> {
        let file = File::create(path)?;
        Ok(FileLogger {
            inner: Mutex::new(FileBuf {
                file,
                buf: Vec::with_capacity(FILE_LOGGER_SPILL),
                confirmed: 0,
                written: 0,
            }),
            error: StickyError::default(),
            count: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Reopen an existing log file for appending after recovery.
    ///
    /// `valid_bytes` is what recovery reported
    /// ([`LogReadOutcome::valid_bytes`]): the file is first cut back to that
    /// offset — naively appending after a torn tail would bury the partial
    /// frame mid-stream and corrupt every later record — and the cut is
    /// synced before any new append can land. New frames continue the same
    /// stream, so a second recovery reads old and new records alike.
    pub fn open_append(path: impl AsRef<Path>, valid_bytes: u64) -> std::io::Result<FileLogger> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(valid_bytes)?;
        file.sync_all()?;
        file.seek(SeekFrom::Start(valid_bytes))?;
        Ok(FileLogger {
            inner: Mutex::new(FileBuf {
                file,
                buf: Vec::with_capacity(FILE_LOGGER_SPILL),
                confirmed: valid_bytes,
                written: valid_bytes,
            }),
            error: StickyError::default(),
            count: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

impl RedoLogger for FileLogger {
    fn append(&self, record: LogRecord) {
        self.append_frame(&encode_record(&record));
    }

    fn append_frame(&self, frame: &[u8]) {
        let mut g = self.inner.lock();
        // A torn log accepts no further bytes (they could only land after
        // the partial frame at the tear, where recovery must not read
        // them); the append stays fire-and-forget — the error surfaces at
        // the next flush.
        if !self.error.is_set() {
            g.buf.extend_from_slice(frame);
            if g.buf.len() >= FILE_LOGGER_SPILL {
                g.write_buffered(&self.error);
            }
        }
        drop(g);
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn flush(&self) -> Result<()> {
        let mut g = self.inner.lock();
        // Write the buffered bytes, then sync them to the device: flush
        // without sync would leave "durable" records in the page cache,
        // where a machine crash still loses them. Once the log is torn
        // (sticky error) nothing more is written — and the file is kept cut
        // back to the confirmed prefix (idempotent, best effort), so
        // unconfirmed bytes cannot resurface after a crash.
        if self.error.is_set() {
            let confirmed = g.confirmed;
            let _ = g.file.set_len(confirmed);
            drop(g);
            return self.error.check();
        }
        g.write_buffered(&self.error);
        if !self.error.is_set() {
            match g.file.sync_data() {
                Ok(()) => g.confirmed = g.written,
                Err(e) => {
                    self.error.record(e);
                    let confirmed = g.confirmed;
                    let _ = g.file.set_len(confirmed);
                }
            }
        }
        drop(g);
        self.error.check()
    }

    fn records_written(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64, rows: usize) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: (0..rows)
                .map(|i| LogOp::Write {
                    table: TableId(0),
                    row: Row::from(vec![i as u8; 24]),
                })
                .collect(),
        }
    }

    fn mixed_record(ts: u64) -> LogRecord {
        LogRecord {
            end_ts: Timestamp(ts),
            ops: vec![
                LogOp::Write {
                    table: TableId(2),
                    row: Row::from(vec![0xAB; 24]),
                },
                LogOp::Delete {
                    table: TableId(7),
                    key: 0xDEAD_BEEF,
                },
            ],
        }
    }

    #[test]
    fn memory_logger_preserves_order_and_content() {
        let log = MemoryLogger::new();
        log.append(record(10, 2));
        log.append(record(12, 1));
        log.with_records(|records| {
            assert_eq!(records.len(), 2);
            assert_eq!(records[0].end_ts, Timestamp(10));
            assert_eq!(records[1].end_ts, Timestamp(12));
            assert_eq!(records[0].ops.len(), 2);
        });
        assert_eq!(log.records_written(), 2);
        // 24-byte rows + 8 bytes metadata each + 8 per record.
        assert_eq!(log.byte_size(), (2 * 32 + 8) + (32 + 8));
    }

    #[test]
    fn null_logger_counts_only() {
        let log = NullLogger::new();
        log.append(record(1, 1));
        log.append(record(2, 1));
        assert_eq!(log.records_written(), 2);
    }

    #[test]
    fn delete_records_are_small() {
        let rec = LogRecord {
            end_ts: Timestamp(5),
            ops: vec![LogOp::Delete {
                table: TableId(3),
                key: 42,
            }],
        };
        assert_eq!(rec.byte_size(), 24);
    }

    #[test]
    fn encode_decode_round_trip() {
        let records = vec![record(7, 3), mixed_record(9), record(11, 0)];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let outcome = read_log_bytes(&bytes).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.valid_bytes, bytes.len() as u64);
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn torn_tail_at_every_offset_is_tolerated() {
        let records = vec![record(7, 3), mixed_record(9), record(11, 2)];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0u64];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len() as u64);
        }
        for cut in 0..=bytes.len() {
            let outcome = read_log_bytes(&bytes[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut} should be a torn tail, not corruption: {e}")
            });
            // Exactly the records whose frames fit below the cut survive.
            let survivors = boundaries
                .iter()
                .filter(|&&b| b > 0 && b <= cut as u64)
                .count();
            assert_eq!(
                outcome.records,
                records[..survivors],
                "wrong records for cut at {cut}"
            );
            assert_eq!(outcome.valid_bytes, boundaries[survivors]);
            assert_eq!(
                outcome.torn_bytes,
                cut as u64 - boundaries[survivors],
                "wrong torn byte count for cut at {cut}"
            );
            assert_eq!(outcome.is_clean(), cut as u64 == boundaries[survivors]);
        }
    }

    #[test]
    fn corruption_inside_valid_region_is_an_error() {
        let mut bytes = encode_record(&mixed_record(9));
        // Flip a byte in the body: frame is complete, checksum must fail.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = read_log_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                MmdbError::LogCorrupt {
                    offset: 0,
                    reason: "checksum mismatch"
                }
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn bad_op_tag_is_corruption_not_torn_tail() {
        // Hand-build a frame with a valid checksum but an invalid op tag.
        let mut body = Vec::new();
        body.extend_from_slice(&5u64.to_le_bytes()); // end_ts
        body.extend_from_slice(&1u32.to_le_bytes()); // op_count
        body.push(9u8); // bogus tag
        body.extend_from_slice(&0u32.to_le_bytes()); // table
        body.extend_from_slice(&0u64.to_le_bytes()); // key
        let mut frame = Vec::new();
        let len = body.len() as u32;
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&(len ^ LEN_CHECK_XOR).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&hash_bytes(&body).to_le_bytes());
        let err = read_log_bytes(&frame).unwrap_err();
        assert!(matches!(
            err,
            MmdbError::LogCorrupt {
                reason: "unknown op tag",
                ..
            }
        ));
    }

    #[test]
    fn corrupted_length_prefix_is_corruption_not_torn_tail() {
        // A bit-flip in a mid-file length prefix must not truncate the log
        // silently: the reader walks the file by these lengths, so a bad
        // one would otherwise misread every later frame as a torn tail.
        let records = vec![record(7, 2), record(9, 1)];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let mut flipped = bytes.clone();
        flipped[1] ^= 0x40; // raise record 0's body_len past the file size
        let err = read_log_bytes(&flipped).unwrap_err();
        assert!(
            matches!(
                err,
                MmdbError::LogCorrupt {
                    offset: 0,
                    reason: "length prefix fails its self-check"
                }
            ),
            "unexpected outcome for a corrupted length prefix: {err:?}"
        );
    }

    #[test]
    fn encode_frame_into_matches_encode_record_and_reuses_capacity() {
        let records = vec![record(7, 3), mixed_record(9), record(11, 0)];
        let mut buf = Vec::new();
        for r in &records {
            buf.clear();
            encode_frame_into(
                &mut buf,
                r.end_ts,
                r.ops.iter().map(|op| match op {
                    LogOp::Write { table, row } => LogOpRef::Write { table: *table, row },
                    LogOp::Delete { table, key } => LogOpRef::Delete {
                        table: *table,
                        key: *key,
                    },
                }),
            );
            assert_eq!(buf, encode_record(r), "byte-exact parity for {r:?}");
        }
    }

    #[test]
    fn append_frame_default_decodes_into_append() {
        let log = MemoryLogger::new();
        let rec = mixed_record(42);
        log.append_frame(&encode_record(&rec));
        log.with_records(|records| assert_eq!(records, std::slice::from_ref(&rec)));
        assert_eq!(log.records_written(), 1);
    }

    #[test]
    fn null_and_file_loggers_count_frames() {
        let null = NullLogger::new();
        null.append_frame(&encode_record(&record(1, 1)));
        assert_eq!(null.records_written(), 1);

        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-frame-test-{}.bin", std::process::id()));
        let rec = mixed_record(8);
        {
            let log = FileLogger::create(&path).unwrap();
            log.append_frame(&encode_record(&rec));
            log.flush().unwrap();
            assert_eq!(log.records_written(), 1);
        }
        let outcome = read_log_file(&path).unwrap();
        assert_eq!(outcome.records, vec![rec]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_logger_round_trips_through_the_reader() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-test-{}.bin", std::process::id()));
        let records = vec![record(7, 3), mixed_record(8), record(9, 1)];
        {
            let log = FileLogger::create(&path).unwrap();
            for r in &records {
                log.append(r.clone());
            }
            log.flush().unwrap();
            assert_eq!(log.records_written(), 3);
        }
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, records);
        // Byte-exact parity with the in-memory logger.
        let memory = MemoryLogger::new();
        for r in &records {
            memory.append(r.clone());
        }
        assert_eq!(std::fs::read(&path).unwrap(), memory.encoded_bytes());
        let _ = std::fs::remove_file(&path);
    }

    /// The torn-log contract: once the sticky error is set, the logger
    /// writes nothing further (including on drop — no `BufWriter`-style
    /// retry of buffered bytes) and keeps the file cut back to the last
    /// synced offset, so unconfirmed bytes can never surface in recovery.
    #[test]
    fn torn_file_logger_discards_its_tail_and_truncates_to_the_synced_prefix() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-torn-test-{}.bin", std::process::id()));
        let confirmed_len;
        {
            let log = FileLogger::create(&path).unwrap();
            log.append(record(1, 2));
            log.flush().unwrap(); // confirmed prefix
            confirmed_len = std::fs::metadata(&path).unwrap().len();

            // Simulate a failed later flush whose write partially reached
            // the file before the error stuck.
            log.error.record(std::io::Error::other("simulated tear"));
            {
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .unwrap();
                f.write_all(b"unconfirmed partial write").unwrap();
            }
            // Appends after the tear are dropped, the gated flush truncates,
            // and the drop at the end of this scope must not write either.
            log.append(record(2, 1));
            assert!(log.flush().is_err());
            assert_eq!(log.records_written(), 2);
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            confirmed_len,
            "the file must be cut back to the synced prefix"
        );
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, vec![record(1, 2)]);
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite regression: the streaming reader must agree byte-for-byte
    /// with the in-memory decoder, for every truncation point, with a chunk
    /// size small enough that every frame straddles chunk boundaries.
    #[test]
    fn streaming_reader_matches_in_memory_reader_at_every_cut() {
        let records = vec![record(7, 3), mixed_record(9), record(11, 2), record(13, 0)];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        // Chunk sizes chosen to hit: header split across chunks (7), body
        // split (16), frame boundary == chunk boundary sometimes (32), and a
        // chunk larger than the whole log (1 MiB).
        for chunk in [7usize, 16, 32, READ_CHUNK] {
            for cut in 0..=bytes.len() {
                let expect = read_log_bytes(&bytes[..cut]).unwrap();
                let got = read_log_stream(&bytes[..cut], chunk, 0).unwrap_or_else(|e| {
                    panic!("chunk {chunk} cut {cut}: stream errored where slice read did not: {e}")
                });
                assert_eq!(got, expect, "chunk {chunk} cut {cut}");
            }
        }
    }

    /// The required shape from the issue: a multi-chunk log whose *last*
    /// frame straddles a chunk boundary must decode completely.
    #[test]
    fn last_frame_straddling_a_chunk_boundary_decodes_completely() {
        let chunk = 64usize;
        let mut bytes = Vec::new();
        let mut records = Vec::new();
        // Fill several whole chunks, then place a final frame that starts
        // before a chunk boundary and ends after it.
        let mut ts = 1u64;
        while bytes.len() < 3 * chunk {
            let r = record(ts, 1);
            ts += 1;
            bytes.extend_from_slice(&encode_record(&r));
            records.push(r);
        }
        let last = record(ts, 2);
        let frame = encode_record(&last);
        assert!(
            bytes.len() % chunk != 0 || frame.len() > chunk,
            "test setup must make the last frame straddle a boundary"
        );
        bytes.extend_from_slice(&frame);
        records.push(last);
        let outcome = read_log_stream(&bytes[..], chunk, 0).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.valid_bytes, bytes.len() as u64);
    }

    /// Streaming corruption reporting is offset-identical to the in-memory
    /// reader, even when the corrupt frame sits past several chunks.
    #[test]
    fn streaming_reader_reports_corruption_at_the_same_offset() {
        let records = vec![record(7, 2), record(9, 1), mixed_record(11)];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let second_frame_at = encode_record(&records[0]).len();
        let mut flipped = bytes.clone();
        flipped[second_frame_at + 20] ^= 0xFF; // body byte of frame 1
        let expect = read_log_bytes(&flipped).unwrap_err();
        let got = read_log_stream(&flipped[..], 16, 0).unwrap_err();
        assert_eq!(format!("{got:?}"), format!("{expect:?}"));
    }

    /// `read_log_file_from` resumes at a frame boundary and reports absolute
    /// offsets, which is what checkpoint tail replay relies on.
    #[test]
    fn read_log_file_from_resumes_mid_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-from-test-{}.bin", std::process::id()));
        let records = vec![record(7, 2), mixed_record(9), record(11, 1)];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0u64];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len() as u64);
        }
        std::fs::write(&path, &bytes).unwrap();
        for (skip, start) in boundaries.iter().enumerate() {
            let outcome = read_log_file_from(&path, *start).unwrap();
            assert_eq!(outcome.records, records[skip..]);
            assert_eq!(outcome.valid_bytes, bytes.len() as u64);
            assert!(outcome.is_clean());
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite regression: `open_append` cuts the torn tail first, so
    /// continuing the log after a crash never buries garbage mid-stream.
    #[test]
    fn open_append_truncates_the_torn_tail_and_continues_the_stream() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmdb-log-reopen-test-{}.bin", std::process::id()));
        {
            let log = FileLogger::create(&path).unwrap();
            log.append(record(1, 2));
            log.append(record(2, 1));
            log.flush().unwrap();
        }
        // Crash: a partial frame at the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let recovered = read_log_file(&path).unwrap();
        assert_eq!(recovered.records, vec![record(1, 2)]);
        assert!(!recovered.is_clean());
        {
            let log = FileLogger::open_append(&path, recovered.valid_bytes).unwrap();
            log.append(record(3, 1));
            log.flush().unwrap();
        }
        let outcome = read_log_file(&path).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.records, vec![record(1, 2), record(3, 1)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_log_file_is_a_log_io_error() {
        let err = read_log_file("/nonexistent/mmdb-no-such-log.bin").unwrap_err();
        assert!(matches!(err, MmdbError::LogIo(_)));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn file_logger_io_errors_are_sticky_and_surface_in_flush() {
        // /dev/full accepts the open but fails every write with ENOSPC,
        // which is exactly the torn-write scenario flush must report.
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let log = FileLogger::create("/dev/full").unwrap();
        log.append(record(1, 2));
        let first = log.flush();
        assert!(
            matches!(first, Err(MmdbError::LogIo(_))),
            "flush should surface the write failure, got {first:?}"
        );
        // The error is sticky: later flushes keep failing with the first
        // error even if nothing new is buffered.
        let second = log.flush();
        assert_eq!(first, second);
        // Appends never panic or block on the broken file.
        log.append(record(2, 1));
        assert_eq!(log.records_written(), 2);
        assert!(log.flush().is_err());
    }
}
