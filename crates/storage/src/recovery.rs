//! Partitioned parallel recovery: load a checkpoint chain and replay the
//! log tail across a pool of table-sharded workers.
//!
//! Restart time is the denominator of the availability story (the paper's
//! §2.7 keeps redo logging cheap precisely so recovery stays a bulk load),
//! and a single-threaded loader leaves most of the machine idle during it.
//! [`recover_partitioned`] splits the work by table: a coordinator thread
//! makes one decode pass over the chain images and the log tail, routing
//! every op to a worker chosen by `TableId % workers`; each worker folds its
//! tables' ops into a primary-key map and hands the engine one materialized,
//! pk-ordered row batch per table.
//!
//! Two properties make this safe and deterministic:
//!
//! * **Tables are independent.** Every checkpoint/log op names exactly one
//!   table, so sharding by table needs no cross-worker ordering. Within a
//!   worker, chain ops apply in receipt order (the coordinator sends chain
//!   files in apply order, deletes before rows within each delta) and tail
//!   ops are buffered and sorted by `(end_ts, op sequence)` — the same
//!   serial order the single-threaded replay used.
//! * **The result is worker-count invariant.** The final pk→row map of each
//!   table depends only on the op sequence for that table, which is the
//!   same no matter how tables are distributed; a test below pins recovery
//!   with 1, 2, 3 and 8 workers to byte-identical images.
//!
//! Chain validation happens here too: the base must not claim a parent
//! snapshot, and each delta's recorded parent snapshot must equal the
//! preceding image's `read_ts` — a mismatched or reordered chain is
//! corruption, not something to paper over.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::sync::mpsc::{channel, Receiver, Sender};

use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{Key, TableId, Timestamp};
use mmdb_common::row::Row;

use crate::checkpoint::{read_checkpoint, RecoveryPlan};
use crate::log::{decode_body, FrameStream, LogOp, READ_CHUNK};

/// Extracts a row's primary key; must agree with the engine's primary-index
/// key spec. Shared by every worker thread, hence `Sync`.
pub type KeyOfFn<'a> = dyn Fn(TableId, &Row) -> Result<Key> + Sync + 'a;

/// Receives one materialized, pk-ordered row batch per recovered table.
/// Called concurrently from worker threads, but never twice for the same
/// table, so a per-table bulk load (e.g. `populate`) needs no extra locking.
pub type ApplyFn<'a> = dyn Fn(TableId, Vec<Row>) -> Result<()> + Sync + 'a;

/// What [`recover_partitioned`] did, in the same units the engines' recovery
/// reports use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredImage {
    /// Snapshot timestamp of the chain's last image ([`Timestamp::ZERO`]
    /// without a chain). Every replayed tail record is later than this; the
    /// engine must advance its clock past it before accepting commits.
    pub image_ts: Timestamp,
    /// Latest end timestamp replayed from the log tail (`image_ts` if the
    /// tail was empty). The clock must advance past this too.
    pub max_end_ts: Timestamp,
    /// Rows handed to the apply callback (the collapsed final image).
    pub rows_loaded: usize,
    /// Complete log-tail records newer than the image that were replayed.
    pub tail_records: usize,
    /// Valid prefix of the log segment in bytes (counted from byte 0 of the
    /// file, including the prefix below the checkpoint LSN).
    pub valid_bytes: u64,
    /// Bytes discarded as a torn trailing frame.
    pub torn_bytes: u64,
}

/// One routed unit of work. Chain ops apply in receipt order; tail ops carry
/// the `(end_ts, seq)` sort key that reconstructs serial order. Chain ops
/// are batched per (file, table) — a channel round-trip per row would
/// dominate the coordinator at delta-chain sizes, where hot rows recur in
/// every image.
enum Op {
    /// Rows from one chain image, in file order.
    ImageRows(Vec<Row>),
    /// Tombstones from one delta image (routed before that image's rows).
    ImageDeletes(Vec<Key>),
    /// A log-tail write.
    TailWrite {
        end_ts: Timestamp,
        seq: u64,
        row: Row,
    },
    /// A log-tail delete.
    TailDelete {
        end_ts: Timestamp,
        seq: u64,
        key: Key,
    },
}

struct Msg {
    table: TableId,
    op: Op,
}

/// Worker count the engines use when the caller does not pick one:
/// `MMDB_RECOVERY_WORKERS` if set, otherwise the machine's available
/// parallelism capped at 8 (the load turns I/O-bound past that).
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("MMDB_RECOVERY_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Load `plan`'s checkpoint chain and log tail into the engine behind
/// `apply`, fanning the work across `workers` threads (clamped to at least
/// one; one worker degenerates to the serial algorithm).
pub fn recover_partitioned(
    plan: &RecoveryPlan,
    workers: usize,
    key_of: &KeyOfFn<'_>,
    apply: &ApplyFn<'_>,
) -> Result<RecoveredImage> {
    let workers = workers.max(1);
    std::thread::scope(|scope| {
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            joins.push(scope.spawn(move || drain_partition(rx, key_of, apply)));
        }
        let fed = feed(plan, &senders);
        // Hang up before joining: workers drain until every sender is gone.
        drop(senders);
        let mut rows_loaded = 0usize;
        let mut worker_err = None;
        for join in joins {
            match join.join().expect("recovery worker panicked") {
                Ok(rows) => rows_loaded += rows,
                Err(err) => worker_err = Some(err),
            }
        }
        // A worker error is the root cause even when the coordinator saw a
        // closed channel first.
        if let Some(err) = worker_err {
            return Err(err);
        }
        let mut image = fed?;
        image.rows_loaded = rows_loaded;
        Ok(image)
    })
}

/// Coordinator pass: decode the chain and the log tail once, route every op.
/// `rows_loaded` in the returned image is 0; the caller fills it from the
/// workers' counts.
fn feed(plan: &RecoveryPlan, senders: &[Sender<Msg>]) -> Result<RecoveredImage> {
    let send = |table: TableId, op: Op| -> Result<()> {
        senders[table.0 as usize % senders.len()]
            .send(Msg { table, op })
            .map_err(|_| MmdbError::Internal("recovery worker exited early"))
    };
    let invalid = |reason: &'static str| MmdbError::CheckpointInvalid { reason };

    // Chain images, base first, deletes before rows within each delta.
    let mut parent: Option<Timestamp> = None;
    let mut image_ts = Timestamp::ZERO;
    for (i, ckpt) in plan.chain.iter().enumerate() {
        let contents = read_checkpoint(&ckpt.path)?;
        if contents.lsn != ckpt.lsn || contents.read_ts != ckpt.read_ts {
            return Err(invalid("checkpoint image disagrees with the manifest"));
        }
        if i == 0 && contents.parent_read_ts.is_some() {
            return Err(invalid("checkpoint chain begins with a delta image"));
        }
        if i > 0 && contents.parent_read_ts != parent {
            return Err(invalid("delta parent snapshot does not match the chain"));
        }
        parent = Some(contents.read_ts);
        image_ts = contents.read_ts;
        let mut deletes: BTreeMap<TableId, Vec<Key>> = BTreeMap::new();
        for (table, key) in contents.deletes {
            deletes.entry(table).or_default().push(key);
        }
        for (table, keys) in deletes {
            send(table, Op::ImageDeletes(keys))?;
        }
        let mut rows: BTreeMap<TableId, Vec<Row>> = BTreeMap::new();
        for (table, row) in contents.rows {
            rows.entry(table).or_default().push(row);
        }
        for (table, batch) in rows {
            send(table, Op::ImageRows(batch))?;
        }
    }

    // Log tail: one streaming decode pass from the last image's LSN.
    let io = |e: std::io::Error| MmdbError::LogIo(e.to_string());
    let mut file = File::open(&plan.log_path).map_err(io)?;
    let start = plan.log_tail_offset();
    if start > 0 {
        file.seek(SeekFrom::Start(start)).map_err(io)?;
    }
    let mut frames = FrameStream::new(file, READ_CHUNK, start);
    let mut tail_records = 0usize;
    let mut max_end_ts = image_ts;
    let mut seq = 0u64;
    while let Some((offset, body)) = frames.next_body()? {
        let record = decode_body(body, offset)?;
        // Commits at or below the image snapshot are already in the chain.
        if record.end_ts <= image_ts {
            continue;
        }
        tail_records += 1;
        max_end_ts = max_end_ts.max(record.end_ts);
        for op in record.ops {
            seq += 1;
            match op {
                LogOp::Write { table, row } => send(
                    table,
                    Op::TailWrite {
                        end_ts: record.end_ts,
                        seq,
                        row,
                    },
                )?,
                LogOp::Delete { table, key } => send(
                    table,
                    Op::TailDelete {
                        end_ts: record.end_ts,
                        seq,
                        key,
                    },
                )?,
            }
        }
    }
    Ok(RecoveredImage {
        image_ts,
        max_end_ts,
        rows_loaded: 0,
        tail_records,
        valid_bytes: frames.consumed(),
        torn_bytes: frames.torn_bytes(),
    })
}

/// Worker loop: fold this partition's ops into pk→row maps, then hand the
/// engine one ordered batch per table. Returns the number of rows applied.
fn drain_partition(rx: Receiver<Msg>, key_of: &KeyOfFn<'_>, apply: &ApplyFn<'_>) -> Result<usize> {
    let mut tables: BTreeMap<TableId, BTreeMap<Key, Row>> = BTreeMap::new();
    let mut tail: Vec<(Timestamp, u64, TableId, Op)> = Vec::new();
    for Msg { table, op } in rx {
        match op {
            Op::ImageRows(batch) => {
                let slot = tables.entry(table).or_default();
                for row in batch {
                    let key = key_of(table, &row)?;
                    slot.insert(key, row);
                }
            }
            Op::ImageDeletes(keys) => {
                let slot = tables.entry(table).or_default();
                for key in keys {
                    slot.remove(&key);
                }
            }
            Op::TailWrite { end_ts, seq, .. } | Op::TailDelete { end_ts, seq, .. } => {
                tail.push((end_ts, seq, table, op));
            }
        }
    }
    // Reconstruct serial replay order across this partition's tables.
    tail.sort_unstable_by_key(|(end_ts, seq, ..)| (*end_ts, *seq));
    for (.., table, op) in tail {
        match op {
            Op::TailWrite { row, .. } => {
                let key = key_of(table, &row)?;
                tables.entry(table).or_default().insert(key, row);
            }
            Op::TailDelete { key, .. } => {
                tables.entry(table).or_default().remove(&key);
            }
            Op::ImageRows(_) | Op::ImageDeletes(_) => unreachable!("chain ops apply on receipt"),
        }
    }
    let mut rows_loaded = 0usize;
    for (table, rows) in tables {
        rows_loaded += rows.len();
        apply(table, rows.into_values().collect())?;
    }
    Ok(rows_loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointStore;
    use crate::log::{encode_frame_into, LogOpRef, Lsn, RedoLogger};
    use std::fs;
    use std::sync::Mutex;

    fn append(store: &CheckpointStore, end_ts: Timestamp, ops: &[LogOpRef<'_>]) {
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, end_ts, ops.iter().copied());
        store.logger().append_frame(&frame);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mmdb-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn row(key: u64, payload: u8) -> Row {
        let mut bytes = [payload; 16];
        bytes[..8].copy_from_slice(&key.to_le_bytes());
        Row::copy_from_slice(&bytes)
    }

    fn key_of(_table: TableId, row: &Row) -> Result<Key> {
        Ok(u64::from_le_bytes(row[..8].try_into().unwrap()))
    }

    /// Build a dir holding: base {t0: k1,k2; t1: k1}, delta {t0: -k2, +k3;
    /// t1: k1 updated}, log tail {t0: +k4, t1: -k1} plus one pre-image
    /// record that must be filtered out.
    fn build_chain_dir(tag: &str) -> std::path::PathBuf {
        let dir = scratch_dir(tag);
        let store = CheckpointStore::create(&dir).unwrap();
        let t0 = TableId(0);
        let t1 = TableId(1);

        let mut base = store.begin_checkpoint(Lsn::ZERO, Timestamp(10)).unwrap();
        base.write_row(t0, &row(1, 0xa)).unwrap();
        base.write_row(t0, &row(2, 0xb)).unwrap();
        base.write_row(t1, &row(1, 0xc)).unwrap();
        store.install_checkpoint(base.finish().unwrap()).unwrap();

        let lsn = store.logger().appended_lsn();
        // This commit raced the checkpoint: its frame lands past the
        // captured LSN but its end timestamp is below the delta snapshot,
        // so the delta image already carries the row and tail replay must
        // skip the frame.
        append(
            &store,
            Timestamp(15),
            &[LogOpRef::Write {
                table: t0,
                row: &row(3, 0x1d),
            }],
        );
        let mut delta = store.begin_delta(lsn, Timestamp(20)).unwrap();
        delta.write_delete(t0, 2).unwrap();
        delta.write_row(t0, &row(3, 0x1d)).unwrap();
        delta.write_row(t1, &row(1, 0x2c)).unwrap();
        store.install_delta(delta.finish().unwrap()).unwrap();
        store.truncate_log().unwrap();

        append(
            &store,
            Timestamp(30),
            &[
                LogOpRef::Write {
                    table: t0,
                    row: &row(4, 0xe),
                },
                LogOpRef::Delete { table: t1, key: 1 },
            ],
        );
        store.logger().flush().unwrap();
        drop(store);
        dir
    }

    fn recover_rows(
        dir: &std::path::Path,
        workers: usize,
    ) -> (RecoveredImage, Vec<(TableId, Vec<Row>)>) {
        let plan = CheckpointStore::plan(dir).unwrap();
        let applied: Mutex<Vec<(TableId, Vec<Row>)>> = Mutex::new(Vec::new());
        let image = recover_partitioned(&plan, workers, &key_of, &|table, rows| {
            applied.lock().unwrap().push((table, rows));
            Ok(())
        })
        .unwrap();
        let mut applied = applied.into_inner().unwrap();
        applied.sort_by_key(|(table, _)| *table);
        (image, applied)
    }

    #[test]
    fn chain_plus_tail_collapses_to_the_serial_image() {
        let dir = build_chain_dir("collapse");
        let (image, applied) = recover_rows(&dir, 1);
        assert_eq!(image.image_ts, Timestamp(20));
        assert_eq!(image.max_end_ts, Timestamp(30));
        assert_eq!(image.tail_records, 1);
        assert_eq!(image.torn_bytes, 0);
        assert_eq!(image.rows_loaded, 3);
        // t0: base k1, delta deleted k2 and added k3, tail added k4.
        // t1: delta updated k1, tail deleted it (table reported empty).
        assert_eq!(
            applied,
            vec![
                (TableId(0), vec![row(1, 0xa), row(3, 0x1d), row(4, 0xe)]),
                (TableId(1), vec![]),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_is_worker_count_invariant() {
        let dir = build_chain_dir("invariant");
        let (serial_image, serial_rows) = recover_rows(&dir, 1);
        for workers in [2usize, 3, 8] {
            let (image, rows) = recover_rows(&dir, workers);
            assert_eq!(image, serial_image, "{workers} workers");
            assert_eq!(rows, serial_rows, "{workers} workers");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_delta_parent_is_rejected() {
        let dir = build_chain_dir("bad-parent");
        let plan = CheckpointStore::plan(&dir).unwrap();
        // Corrupt the plan: pretend the delta is the base.
        let mut bad = plan.clone();
        bad.chain.remove(0);
        let err = recover_partitioned(&bad, 2, &key_of, &|_, _| Ok(())).unwrap_err();
        assert!(
            matches!(err, MmdbError::CheckpointInvalid { .. }),
            "{err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_error_propagates() {
        let dir = build_chain_dir("worker-err");
        let plan = CheckpointStore::plan(&dir).unwrap();
        let err = recover_partitioned(&plan, 2, &key_of, &|_, _| {
            Err(MmdbError::Internal("apply refused"))
        })
        .unwrap_err();
        assert!(
            matches!(err, MmdbError::Internal("apply refused")),
            "{err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
