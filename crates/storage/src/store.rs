//! The multiversion store: tables + clock + transaction table + garbage
//! queue + redo log, bundled behind one handle shared by every transaction.
//!
//! The store is purely structural: it knows nothing about optimistic or
//! pessimistic concurrency control. The `mmdb-core` crate layers the paper's
//! two CC schemes on top of it.

use std::sync::Arc;

use crossbeam::epoch::{self, Guard};

use mmdb_common::clock::GlobalClock;
use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{TableId, Timestamp};
use mmdb_common::row::{Row, TableSpec};
use mmdb_common::stats::EngineStats;

use crate::catalog::Catalog;
use crate::gc::{GcItem, GcQueue};
use crate::log::{NullLogger, RedoLogger};
use crate::table::Table;
use crate::txn_table::TxnTable;

/// Shared multiversion storage state.
pub struct MvStore {
    clock: GlobalClock,
    /// Epoch-published append-only table registry: per-operation lookups
    /// ([`MvStore::table_in`]) are a lock-free load of the published slice —
    /// no `RwLock`, no `Arc` clone (tables are never removed, §2.1).
    tables: Catalog<Table>,
    txns: TxnTable,
    gc: GcQueue,
    logger: Arc<dyn RedoLogger>,
    /// When set, committing transactions skip the redo-log append. Only
    /// recovery replay uses this: replayed records drive ordinary
    /// transactions, and re-appending them to the very log being replayed
    /// would duplicate every tail record.
    log_suppressed: std::sync::atomic::AtomicBool,
    stats: EngineStats,
}

impl Default for MvStore {
    fn default() -> Self {
        Self::new(Arc::new(NullLogger::new()))
    }
}

impl MvStore {
    /// Create a store writing redo records to `logger`.
    pub fn new(logger: Arc<dyn RedoLogger>) -> MvStore {
        MvStore {
            clock: GlobalClock::new(),
            tables: Catalog::new(),
            txns: TxnTable::new(),
            gc: GcQueue::new(),
            logger,
            log_suppressed: std::sync::atomic::AtomicBool::new(false),
            stats: EngineStats::new(),
        }
    }

    /// The global clock.
    #[inline]
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// The transaction table.
    #[inline]
    pub fn txns(&self) -> &TxnTable {
        &self.txns
    }

    /// Engine statistics counters.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The redo logger.
    #[inline]
    pub fn logger(&self) -> &Arc<dyn RedoLogger> {
        &self.logger
    }

    /// The garbage queue.
    #[inline]
    pub fn gc_queue(&self) -> &GcQueue {
        &self.gc
    }

    /// Is redo logging currently suppressed (recovery replay in progress)?
    #[inline]
    pub fn log_suppressed(&self) -> bool {
        self.log_suppressed
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Suppress (or re-enable) redo logging. Recovery replay wraps its
    /// transactions in a suppressed window so replaying a log tail into an
    /// engine attached to that same log does not re-append every record.
    pub fn set_log_suppressed(&self, suppressed: bool) {
        self.log_suppressed
            .store(suppressed, std::sync::atomic::Ordering::Relaxed);
    }

    /// Create a table. Publication is a single atomic swap of the catalog
    /// slice; concurrent lookups never block on it.
    pub fn create_table(&self, spec: TableSpec) -> Result<TableId> {
        let idx = self
            .tables
            .push_with(|idx| Table::new(TableId(idx as u32), spec))?;
        Ok(TableId(idx as u32))
    }

    /// Look up a table without taking any lock or touching its reference
    /// count: a lock-free load of the epoch-published catalog slice. This is
    /// the per-operation entry point — every read, scan, insert, update and
    /// delete resolves its table here.
    #[inline]
    pub fn table_in<'g>(&self, id: TableId, guard: &'g Guard) -> Result<&'g Table> {
        self.tables
            .get_in(id.0 as usize, guard)
            .ok_or(MmdbError::TableNotFound(id))
    }

    /// Look up a table, returning an owned handle (an `Arc` clone; still
    /// lock-free). Cold-path variant for callers that need to hold the table
    /// across epoch boundaries (GC recycling, diagnostics).
    pub fn table(&self, id: TableId) -> Result<Arc<Table>> {
        self.tables
            .get(id.0 as usize)
            .ok_or(MmdbError::TableNotFound(id))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Bulk-load committed rows into a table, bypassing concurrency control.
    /// Intended for initial database population (workload setup) before any
    /// transactions run.
    pub fn populate<I>(&self, table_id: TableId, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Row>,
    {
        let table = self.table(table_id)?;
        let ts = self.clock.next_timestamp();
        let guard = epoch::pin();
        let mut n = 0;
        for row in rows {
            let version = table.make_committed_version(ts, row)?;
            table.link_version(version, &guard);
            n += 1;
        }
        if n > 0 {
            table.note_write(ts);
        }
        EngineStats::add(&self.stats.versions_created, n as u64);
        Ok(n)
    }

    /// Enqueue an obsolete version for collection.
    pub fn enqueue_garbage(&self, item: GcItem) {
        self.gc.push(item);
    }

    /// Run one bounded garbage-collection step: examine up to `limit` queued
    /// items, reclaim the ones whose end timestamp lies below the visibility
    /// watermark, and requeue the rest. Returns the number reclaimed.
    ///
    /// Any thread may call this at any time (cooperative collection); unlinks
    /// are serialized per table via the table's GC lock.
    pub fn collect_garbage(&self, limit: usize) -> usize {
        let budget = limit.min(self.gc.len());
        if budget == 0 {
            return 0;
        }
        // Versions are reclaimable when every registered transaction began
        // after their retirement timestamp. With no active transactions,
        // everything already queued is reclaimable.
        //
        // The watermark is computed race-free in three ordered steps:
        // 1. the pending-begin check catches transactions that drew a begin
        //    timestamp but have not registered yet;
        // 2. `sweep_floor` (the clock *before* the sweep) bounds the begin
        //    timestamp of any transaction that registers into an
        //    already-visited shard while the sweep runs — the sweep can miss
        //    it, but its begin is necessarily >= this value;
        // 3. the shard sweep covers everything registered before the sweep
        //    reached its shard.
        // Skipping any one of these lets the collector reclaim a version a
        // live snapshot still needs (observed as reads returning None under
        // the concurrency stress tests).
        let watermark = if self.txns.has_pending_begins() {
            Timestamp::ZERO
        } else {
            let sweep_floor = self.clock.now();
            match self.txns.min_active_begin() {
                Some(m) => m.min(sweep_floor),
                None => sweep_floor,
            }
        };
        let guard = epoch::pin();
        let mut reclaimed = 0;
        let mut requeue = Vec::new();
        for _ in 0..budget {
            let Some(item) = self.gc.pop() else { break };
            if item.reclaimable_at < watermark {
                if let Ok(table) = self.table(item.table) {
                    let shared = item.version.as_shared(&guard);
                    {
                        let _gc_lock = table.gc_guard();
                        table.unlink_version(shared, &guard);
                    }
                    // The version is unreachable from every index and no
                    // active transaction can still hold an interest in it
                    // (watermark rule); the epoch machinery delays what
                    // happens next until all current readers unpin. Instead
                    // of freeing it we feed it back to the table's version
                    // pool, so steady-state writes reuse the allocation
                    // (`Table::make_version_with`). The closure captures the
                    // table `Arc` (keeping the pool alive) and the raw
                    // address — small enough for the epoch layer's inline
                    // deferred storage, so this defers without allocating.
                    let raw = shared.as_raw() as usize;
                    // SAFETY: unlinked above; `recycle_version`'s contract
                    // (exclusive, past the grace period) holds when the
                    // deferred closure runs.
                    unsafe {
                        guard.defer_unchecked(move || {
                            table.recycle_version(raw as *mut crate::version::Version);
                        });
                    }
                    reclaimed += 1;
                }
            } else {
                requeue.push(item);
            }
        }
        for item in requeue {
            self.gc.push(item);
        }
        if reclaimed > 0 {
            EngineStats::add(&self.stats.versions_collected, reclaimed as u64);
        }
        EngineStats::bump(&self.stats.gc_passes);
        reclaimed
    }
}

impl std::fmt::Debug for MvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvStore")
            .field("tables", &self.table_count())
            .field("active_txns", &self.txns.len())
            .field("gc_pending", &self.gc.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MemoryLogger;
    use crate::table::VersionPtr;
    use mmdb_common::ids::{IndexId, Timestamp, TxnId};
    use mmdb_common::isolation::{ConcurrencyMode, IsolationLevel};
    use mmdb_common::row::rowbuf;
    use mmdb_common::word::{BeginWord, EndWord};

    fn store_with_table(rows: u64) -> (MvStore, TableId) {
        let store = MvStore::new(Arc::new(MemoryLogger::new()));
        let t = store.create_table(TableSpec::keyed_u64("t", 128)).unwrap();
        store
            .populate(t, (0..rows).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        (store, t)
    }

    #[test]
    fn create_and_populate() {
        let (store, t) = store_with_table(100);
        assert_eq!(store.table_count(), 1);
        let table = store.table(t).unwrap();
        assert_eq!(table.version_count(), 100);
        assert!(store.table(TableId(7)).is_err());
        let guard = epoch::pin();
        let hits: Vec<_> = table.candidates(IndexId(0), 42, &guard).unwrap().collect();
        assert_eq!(hits.len(), 1);
        assert!(matches!(hits[0].begin_word(), BeginWord::Timestamp(_)));
        assert!(hits[0].end_word().is_latest());
    }

    #[test]
    fn gc_respects_watermark() {
        let (store, t) = store_with_table(10);
        let table = store.table(t).unwrap();

        // Simulate an update: retire version for key 3 at timestamp `retire_ts`.
        let guard = epoch::pin();
        let old = {
            let mut it = table.candidates(IndexId(0), 3, &guard).unwrap();
            VersionPtr::from_shared(crossbeam::epoch::Shared::from(
                it.next().unwrap() as *const _
            ))
        };
        let retire_ts = store.clock().next_timestamp();
        old.get().set_end(EndWord::Timestamp(retire_ts));
        store.enqueue_garbage(GcItem {
            table: t,
            version: old,
            reclaimable_at: retire_ts,
        });

        // An "active" transaction that began before retirement blocks collection.
        let blocker = crate::txn_table::TxnHandle::new(
            TxnId(999),
            Timestamp(retire_ts.raw() - 1),
            ConcurrencyMode::Optimistic,
            IsolationLevel::Serializable,
        );
        store.txns().register(Arc::clone(&blocker));
        assert_eq!(store.collect_garbage(16), 0);
        assert_eq!(store.gc_queue().len(), 1, "item must be requeued");
        assert_eq!(table.version_count(), 10);

        // Once the blocker goes away (and a newer transaction exists), the
        // version is reclaimed.
        store.txns().remove(TxnId(999));
        let newer = crate::txn_table::TxnHandle::new(
            TxnId(1000),
            store.clock().next_timestamp(),
            ConcurrencyMode::Optimistic,
            IsolationLevel::Serializable,
        );
        store.txns().register(newer);
        assert_eq!(store.collect_garbage(16), 1);
        assert_eq!(store.gc_queue().len(), 0);
        assert_eq!(table.version_count(), 9);
        assert_eq!(store.stats().snapshot().versions_collected, 1);
    }

    #[test]
    fn gc_with_no_active_transactions_reclaims_everything_queued() {
        let (store, t) = store_with_table(5);
        let table = store.table(t).unwrap();
        let guard = epoch::pin();
        for key in 0..5u64 {
            let ptr = {
                let mut it = table.candidates(IndexId(0), key, &guard).unwrap();
                VersionPtr::from_shared(crossbeam::epoch::Shared::from(
                    it.next().unwrap() as *const _
                ))
            };
            let ts = store.clock().next_timestamp();
            ptr.get().set_end(EndWord::Timestamp(ts));
            store.enqueue_garbage(GcItem {
                table: t,
                version: ptr,
                reclaimable_at: ts,
            });
        }
        // Bounded step: only collect 2 at a time.
        assert_eq!(store.collect_garbage(2), 2);
        assert_eq!(store.collect_garbage(16), 3);
        assert_eq!(table.version_count(), 0);
    }

    #[test]
    fn table_in_is_a_lock_free_published_slice_load() {
        let (store, t) = store_with_table(4);
        let guard = epoch::pin();
        let table = store.table_in(t, &guard).unwrap();
        assert_eq!(table.id(), t);
        assert!(store.table_in(TableId(9), &guard).is_err());
        // The borrow survives later catalog publications (append-only).
        let t2 = store.create_table(TableSpec::keyed_u64("t2", 8)).unwrap();
        assert_eq!(table.id(), t);
        assert_eq!(store.table_in(t2, &guard).unwrap().id(), t2);
    }

    /// Acceptance criterion of the lock-free catalog: `create_table` racing
    /// readers must never make an already-published table unreachable, and
    /// readers never block (they run under nothing but an epoch pin).
    #[test]
    fn create_table_races_lock_free_readers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = Arc::new(MvStore::default());
        let first = store.create_table(TableSpec::keyed_u64("t0", 8)).unwrap();
        store
            .populate(first, (0..4u64).map(|k| rowbuf::keyed_row(k, 16, 1)))
            .unwrap();
        let published = AtomicUsize::new(1);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let store = Arc::clone(&store);
                let published = &published;
                scope.spawn(move || loop {
                    let n = published.load(Ordering::Acquire);
                    let guard = epoch::pin();
                    // Every table published so far must resolve, with its
                    // contents reachable.
                    for id in 0..n as u32 {
                        let table = store
                            .table_in(TableId(id), &guard)
                            .expect("published tables never disappear");
                        assert_eq!(table.id(), TableId(id));
                    }
                    assert_eq!(
                        store
                            .table_in(first, &guard)
                            .unwrap()
                            .candidates(IndexId(0), 2, &guard)
                            .unwrap()
                            .count(),
                        1
                    );
                    if n >= 200 {
                        break;
                    }
                });
            }
            {
                let store = Arc::clone(&store);
                let published = &published;
                scope.spawn(move || {
                    for i in 1..200usize {
                        let id = store
                            .create_table(TableSpec::keyed_u64(format!("t{i}"), 8))
                            .unwrap();
                        assert_eq!(id, TableId(i as u32));
                        published.store(i + 1, Ordering::Release);
                    }
                    published.store(200, Ordering::Release);
                });
            }
        });
        assert_eq!(store.table_count(), 200);
    }

    #[test]
    fn gc_recycles_versions_into_the_table_pool() {
        let (store, t) = store_with_table(8);
        let table = store.table(t).unwrap();
        let guard = epoch::pin();
        for key in 0..8u64 {
            let ptr = {
                let mut it = table.candidates(IndexId(0), key, &guard).unwrap();
                VersionPtr::from_shared(crossbeam::epoch::Shared::from(
                    it.next().unwrap() as *const _
                ))
            };
            let ts = store.clock().next_timestamp();
            ptr.get().set_end(EndWord::Timestamp(ts));
            store.enqueue_garbage(GcItem {
                table: t,
                version: ptr,
                reclaimable_at: ts,
            });
        }
        assert_eq!(store.collect_garbage(16), 8);
        drop(guard);
        // Recycling is epoch-deferred; pin/unpin until a zero-pin crossing
        // has drained it (concurrent tests may hold pins of their own).
        for _ in 0..100_000 {
            drop(epoch::pin());
            if table.pooled_versions() == 8 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(
            table.pooled_versions(),
            8,
            "reclaimed versions feed the table's pool instead of the allocator"
        );
        // And the pool is consumed by new version creation.
        let keys = table.keys_of(&rowbuf::keyed_row(100, 16, 1)).unwrap();
        let v = table
            .make_version_with(TxnId(77), rowbuf::keyed_row(100, 16, 1), &keys)
            .unwrap();
        assert_eq!(table.pooled_versions(), 7);
        assert_eq!(v.begin_word().as_txn(), Some(TxnId(77)));
        assert!(v.end_word().is_latest());
        assert_eq!(v.index_key(0), 100);
        table.link_version(v, &epoch::pin());
    }

    #[test]
    fn populate_validates_rows() {
        let store = MvStore::default();
        let t = store.create_table(TableSpec::keyed_u64("t", 8)).unwrap();
        let bad = Row::from(vec![1u8, 2]);
        assert!(store.populate(t, vec![bad]).is_err());
    }
}
