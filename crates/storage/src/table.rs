//! Tables: a named collection of versions reachable through one or more
//! latch-free hash indexes.
//!
//! There is no direct access to records except through an index (§2.1). A
//! table therefore consists only of its index structures; the versions
//! themselves are heap allocations threaded through every index chain.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crossbeam::epoch::{Guard, Owned, Shared};
use parking_lot::Mutex;

use mmdb_common::error::{MmdbError, Result};
use mmdb_common::ids::{IndexId, Key, TableId, Timestamp};
use mmdb_common::row::{KeyScratch, Row, TableSpec};

use mmdb_index::chain::BucketIter;
use mmdb_index::ordered::RangeIter;
use mmdb_index::{BucketLockTable, HashIndex, OrderedIndex, RangeLockTable};

use crate::version::Version;

/// A stable, `Send + Sync` pointer to a [`Version`].
///
/// Transactions keep these in their read/write/scan sets. The pointer stays
/// valid for as long as the version has not been reclaimed by the garbage
/// collector, and the collector only reclaims versions that (a) have a
/// committed end timestamp older than the begin timestamp of every active
/// transaction and (b) have been unlinked from every index. Both conditions
/// guarantee no live transaction still holds an interest in the version, so
/// dereferencing through a [`VersionPtr`] held by an active transaction is
/// sound. See `gc.rs` for the watermark computation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct VersionPtr(*const Version);

// SAFETY: Version is Send + Sync and the reclamation protocol above
// guarantees the pointee outlives every transaction that stored the pointer.
unsafe impl Send for VersionPtr {}
unsafe impl Sync for VersionPtr {}

impl VersionPtr {
    /// Wrap a shared pointer obtained under an epoch guard.
    pub fn from_shared(shared: Shared<'_, Version>) -> VersionPtr {
        VersionPtr(shared.as_raw())
    }

    /// Reconstruct an epoch `Shared` (for unlinking / deferred destruction).
    pub fn as_shared<'g>(&self, _guard: &'g Guard) -> Shared<'g, Version> {
        Shared::from(self.0)
    }

    /// Dereference. Sound per the reclamation protocol described on the type.
    #[inline]
    pub fn get(&self) -> &Version {
        unsafe { &*self.0 }
    }

    /// Raw address (used as a map key for dedup).
    #[inline]
    pub fn addr(&self) -> usize {
        self.0 as usize
    }
}

/// Upper bound on recycled versions kept per table. Reclaimed versions
/// beyond this are freed normally, so the pool cannot pin more than a
/// bounded amount of memory per table while still covering steady-state
/// write rates (the pool only needs to absorb the versions in flight between
/// GC passes).
const VERSION_POOL_CAP: usize = 8_192;

/// One index of a table: latch-free hash (equality probes) or latch-free
/// skip list (equality and range probes). Both thread the same intrusive
/// per-slot next-pointer of the shared version allocations, so a version is
/// linked into every index of its table at once.
pub enum TableIndex {
    /// A hash index (the paper's only kind, §2.1).
    Hash(HashIndex<Version>),
    /// An ordered index (skip list) serving inclusive range predicates.
    Ordered(OrderedIndex<Version>),
}

impl TableIndex {
    /// The intrusive next-pointer slot this index threads through.
    #[inline]
    pub fn slot(&self) -> usize {
        match self {
            TableIndex::Hash(h) => h.slot(),
            TableIndex::Ordered(o) => o.slot(),
        }
    }

    /// Whether this index supports range predicates.
    #[inline]
    pub fn is_ordered(&self) -> bool {
        matches!(self, TableIndex::Ordered(_))
    }

    fn insert<'g>(&self, node: Shared<'g, Version>, guard: &'g Guard) {
        match self {
            TableIndex::Hash(h) => h.insert(node, guard),
            TableIndex::Ordered(o) => o.insert(node, guard),
        }
    }

    fn unlink<'g>(&self, target: Shared<'g, Version>, guard: &'g Guard) -> bool {
        match self {
            TableIndex::Hash(h) => h.unlink(target, guard),
            TableIndex::Ordered(o) => o.unlink(target, guard),
        }
    }

    fn iter_key<'g>(&self, key: Key, guard: &'g Guard) -> KeyIter<'g> {
        match self {
            TableIndex::Hash(h) => KeyIter::Hash(h.iter_key(key, guard)),
            TableIndex::Ordered(o) => KeyIter::Ordered(o.iter_key(key, guard)),
        }
    }

    fn iter_all<'a, 'g: 'a>(&'a self, guard: &'g Guard) -> ScanIter<'a, 'g> {
        match self {
            TableIndex::Hash(h) => ScanIter::Hash {
                index: h,
                next_bucket: 1,
                inner: h.iter_bucket(0, guard),
                guard,
            },
            TableIndex::Ordered(o) => ScanIter::Ordered(o.iter_all(guard)),
        }
    }

    fn drain_exclusive<'g>(&self, guard: &'g Guard) -> Vec<Shared<'g, Version>> {
        match self {
            TableIndex::Hash(h) => h.drain_exclusive(guard),
            TableIndex::Ordered(o) => o.drain_exclusive(guard),
        }
    }
}

/// Iterator over one index key's candidate versions (either index kind).
enum KeyIter<'g> {
    Hash(BucketIter<'g, Version>),
    Ordered(RangeIter<'g, Version>),
}

impl<'g> Iterator for KeyIter<'g> {
    type Item = Shared<'g, Version>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            KeyIter::Hash(it) => it.next(),
            KeyIter::Ordered(it) => it.next(),
        }
    }
}

/// Iterator over every version of an index (either kind).
enum ScanIter<'a, 'g> {
    Hash {
        index: &'a HashIndex<Version>,
        next_bucket: usize,
        inner: BucketIter<'g, Version>,
        guard: &'g Guard,
    },
    Ordered(RangeIter<'g, Version>),
}

impl<'a, 'g> Iterator for ScanIter<'a, 'g> {
    type Item = Shared<'g, Version>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ScanIter::Hash {
                index,
                next_bucket,
                inner,
                guard,
            } => loop {
                if let Some(item) = inner.next() {
                    return Some(item);
                }
                if *next_bucket >= index.bucket_count() {
                    return None;
                }
                *inner = index.iter_bucket(*next_bucket, guard);
                *next_bucket += 1;
            },
            ScanIter::Ordered(it) => it.next(),
        }
    }
}

/// A table: spec + one latch-free index (hash or ordered), one bucket-lock
/// table and one range-lock table per declared index.
pub struct Table {
    id: TableId,
    spec: TableSpec,
    indexes: Vec<TableIndex>,
    bucket_locks: Vec<BucketLockTable>,
    /// Range locks, meaningful only for ordered indexes (hash slots keep an
    /// empty placeholder so the vectors stay slot-aligned).
    range_locks: Vec<RangeLockTable>,
    /// Serializes garbage-collection unlinks on this table (see the
    /// concurrency contract of [`HashIndex::unlink`]).
    gc_lock: Mutex<()>,
    /// Recycled version allocations (see [`Table::recycle_version`]): the
    /// garbage collector feeds reclaimed versions back here through the
    /// epoch machinery, and [`Table::make_version_with`] reuses them so a
    /// warmed write path allocates no version headers. The critical section
    /// is a push/pop on a capacity-retaining `Vec`; entries are exclusively
    /// owned spares (unlinked, epoch-drained, payload dropped — nobody else
    /// can reach them).
    pool: Mutex<Vec<PooledVersion>>,
    /// Monotone dirty watermark: the highest commit timestamp that created,
    /// superseded or deleted a version in this table ([`Table::note_write`],
    /// fired by the commit pipeline after the end timestamp is drawn and
    /// before the transaction publishes `Committed`, and by bulk
    /// population). A *delta* checkpoint at snapshot `R` with parent
    /// snapshot `P` skips the whole table when `dirty_ts() < P` — see the
    /// quiescing contract on `MvEngine::checkpoint_delta` for why that read
    /// is race-free.
    dirty_ts: AtomicU64,
}

/// An exclusively owned spare version allocation held by a table's recycle
/// pool. Wrapping the raw pointer here (instead of `unsafe impl Send/Sync`
/// on `Table` itself) keeps the table on auto-derived thread-safety for all
/// its other fields.
struct PooledVersion(*mut Version);

// SAFETY: a pooled version is an exclusively owned spare allocation (see
// the pool field docs); `Version` itself is `Send + Sync`.
unsafe impl Send for PooledVersion {}

impl Table {
    /// Create a table from its spec.
    pub fn new(id: TableId, spec: TableSpec) -> Result<Table> {
        if spec.indexes.is_empty() {
            return Err(MmdbError::Internal("a table needs at least one index"));
        }
        let indexes = spec
            .indexes
            .iter()
            .enumerate()
            .map(|(slot, idx)| {
                if idx.ordered {
                    TableIndex::Ordered(OrderedIndex::new(slot))
                } else {
                    TableIndex::Hash(HashIndex::new(slot, idx.buckets.max(1)))
                }
            })
            .collect();
        let bucket_locks = spec
            .indexes
            .iter()
            .map(|idx| BucketLockTable::new(if idx.ordered { 1 } else { idx.buckets.max(1) }))
            .collect();
        let range_locks = spec.indexes.iter().map(|_| RangeLockTable::new()).collect();
        Ok(Table {
            id,
            spec,
            indexes,
            bucket_locks,
            range_locks,
            gc_lock: Mutex::new(()),
            pool: Mutex::new(Vec::new()),
            dirty_ts: AtomicU64::new(0),
        })
    }

    /// Table identifier.
    #[inline]
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Raise the dirty watermark to `ts` (a committing transaction's end
    /// timestamp, or a bulk-population timestamp). Monotone; `SeqCst` so the
    /// checkpointer's quiesce-then-read protocol observes every bump made
    /// before the writer published its final state.
    #[inline]
    pub fn note_write(&self, ts: Timestamp) {
        if self.dirty_ts.load(AtomicOrdering::SeqCst) < ts.raw() {
            self.dirty_ts.fetch_max(ts.raw(), AtomicOrdering::SeqCst);
        }
    }

    /// The dirty watermark: the highest commit timestamp known to have
    /// changed this table (0 if never written).
    #[inline]
    pub fn dirty_ts(&self) -> Timestamp {
        Timestamp(self.dirty_ts.load(AtomicOrdering::SeqCst))
    }

    /// Table spec (indexes, key extractors).
    #[inline]
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Number of indexes.
    #[inline]
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Resolve an index id, or error.
    fn index(&self, index: IndexId) -> Result<&TableIndex> {
        self.indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))
    }

    /// Whether an index is ordered (serves range predicates).
    pub fn is_ordered(&self, index: IndexId) -> Result<bool> {
        Ok(self.index(index)?.is_ordered())
    }

    /// The bucket-lock table of a *hash* index (pessimistic phantom
    /// protection at bucket granularity, §4.1.2). Ordered indexes have no
    /// buckets; their scans are protected by [`Table::range_locks`] instead,
    /// and asking for their bucket locks is an engine bug.
    pub fn bucket_locks(&self, index: IndexId) -> Result<&BucketLockTable> {
        if self.index(index)?.is_ordered() {
            return Err(MmdbError::Internal(
                "bucket locks requested for an ordered index (use range locks)",
            ));
        }
        self.bucket_locks
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))
    }

    /// The range-lock table of an *ordered* index (pessimistic phantom
    /// protection at predicate granularity). Errors with
    /// [`MmdbError::IndexNotOrdered`] for hash indexes, whose scans lock
    /// buckets instead.
    pub fn range_locks(&self, index: IndexId) -> Result<&RangeLockTable> {
        if !self.index(index)?.is_ordered() {
            return Err(MmdbError::IndexNotOrdered(self.id, index));
        }
        self.range_locks
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))
    }

    /// Extract the key of `row` under every index of this table into
    /// `scratch` (index order). Allocation-free after warmup — this is the
    /// write path's extractor; every engine caller goes through it.
    #[inline]
    pub fn keys_into(&self, row: &[u8], scratch: &mut KeyScratch) -> Result<()> {
        self.spec.keys_into(row, scratch)
    }

    /// Extract the key of `row` under every index of this table (index
    /// order). Thin test/compat wrapper over [`Table::keys_into`] — it
    /// allocates a fresh `Vec` per call, which is exactly what the hot write
    /// path avoids.
    pub fn keys_of(&self, row: &[u8]) -> Result<Vec<Key>> {
        let mut scratch = KeyScratch::new();
        self.keys_into(row, &mut scratch)?;
        Ok(scratch.into_vec())
    }

    /// Extract the key of `row` under one index.
    pub fn key_of(&self, index: IndexId, row: &[u8]) -> Result<Key> {
        self.spec
            .indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?
            .key
            .key_of(row)
    }

    /// Whether an index was declared unique.
    pub fn is_unique(&self, index: IndexId) -> Result<bool> {
        Ok(self
            .spec
            .indexes
            .get(index.0 as usize)
            .ok_or(MmdbError::IndexNotFound(self.id, index))?
            .unique)
    }

    /// Bucket that `key` hashes to in `index` (hash indexes only: an ordered
    /// index has no buckets, and asking is an engine bug).
    pub fn bucket_of(&self, index: IndexId, key: Key) -> Result<usize> {
        match self.index(index)? {
            TableIndex::Hash(h) => Ok(h.bucket_of_key(key)),
            TableIndex::Ordered(_) => Err(MmdbError::Internal(
                "bucket_of requested for an ordered index",
            )),
        }
    }

    /// Obtain a version for `row` whose index keys the caller has already
    /// extracted (via [`Table::keys_into`] — extraction happens once per
    /// write, not once per consumer). Reuses a recycled version allocation
    /// when the pool has one, so a warmed write path allocates nothing here.
    pub fn make_version_with(
        &self,
        creator: mmdb_common::ids::TxnId,
        row: Row,
        keys: &[Key],
    ) -> Result<Owned<Version>> {
        if keys.len() != self.indexes.len() {
            return Err(MmdbError::Internal("key count does not match the spec"));
        }
        // Pop in its own scope so the pool guard does not extend across the
        // reset (if-let scrutinee temporaries live for the whole body).
        let recycled = self.pool.lock().pop();
        if let Some(spare) = recycled {
            // SAFETY: pool entries are exclusively owned spare allocations
            // of this table (same index count), originally created by
            // `Owned::new`.
            let mut recycled = unsafe { Owned::from_raw(spare.0) };
            recycled.reset(creator, row, keys);
            Ok(recycled)
        } else {
            Ok(Owned::new(Version::new(creator, row, keys)))
        }
    }

    /// Allocate a version for `row` (keys extracted per the spec). Compat
    /// wrapper over [`Table::make_version_with`] for callers without a key
    /// scratch.
    pub fn make_version(
        &self,
        creator: mmdb_common::ids::TxnId,
        row: Row,
    ) -> Result<Owned<Version>> {
        let keys = self.keys_of(&row)?;
        self.make_version_with(creator, row, &keys)
    }

    /// Allocate an already-committed version for `row` (bulk loading).
    pub fn make_committed_version(
        &self,
        begin: mmdb_common::ids::Timestamp,
        row: Row,
    ) -> Result<Owned<Version>> {
        let keys = self.keys_of(&row)?;
        Ok(Owned::new(Version::new_committed(begin, row, &keys)))
    }

    /// Return a reclaimed version allocation to the pool (or free it when
    /// the pool is full).
    ///
    /// # Safety
    /// `raw` must be an exclusively owned version of **this** table: unlinked
    /// from every index and past its epoch grace period (the garbage
    /// collector defers this call through the epoch machinery), and never
    /// recycled twice.
    pub unsafe fn recycle_version(&self, raw: *mut Version) {
        // SAFETY: exclusive ownership per the caller contract. Drop the
        // payload now — a pooled spare must not pin its last row's bytes
        // until reuse (only the header boxes are worth keeping).
        unsafe { (*raw).clear_payload() };
        let mut pool = self.pool.lock();
        if pool.len() < VERSION_POOL_CAP {
            pool.push(PooledVersion(raw));
        } else {
            drop(pool);
            // SAFETY: exclusive ownership per the caller contract.
            drop(unsafe { Box::from_raw(raw) });
        }
    }

    /// Number of recycled version allocations currently pooled (diagnostic).
    pub fn pooled_versions(&self) -> usize {
        self.pool.lock().len()
    }

    /// Link a version into every index of the table and return a stable
    /// pointer to it.
    pub fn link_version(&self, version: Owned<Version>, guard: &Guard) -> VersionPtr {
        let shared = version.into_shared(guard);
        for index in &self.indexes {
            index.insert(shared, guard);
        }
        VersionPtr::from_shared(shared)
    }

    /// Iterate over every version in the bucket `key` hashes to under
    /// `index`, filtered down to versions whose key actually equals `key`
    /// (the paper's "check predicate" step for the search predicate).
    pub fn candidates<'a, 'g: 'a>(
        &'a self,
        index: IndexId,
        key: Key,
        guard: &'g Guard,
    ) -> Result<impl Iterator<Item = &'g Version> + 'a> {
        let idx = self.index(index)?;
        let slot = idx.slot();
        Ok(idx
            .iter_key(key, guard)
            .map(|shared| unsafe { shared.deref() })
            .filter(move |v| v.index_key(slot) == key))
    }

    /// Iterate over every version whose key under `index` lies in the
    /// inclusive range `[lo, hi]`, as stable [`VersionPtr`]s in ascending key
    /// order. Requires an ordered index; hash indexes cannot serve range
    /// predicates.
    ///
    /// As with [`Table::candidates`], the caller still checks visibility per
    /// version; unlike a hash bucket there are no collision false-positives
    /// to filter out.
    pub fn range_candidate_ptrs<'a, 'g: 'a>(
        &'a self,
        index: IndexId,
        lo: Key,
        hi: Key,
        guard: &'g Guard,
    ) -> Result<impl Iterator<Item = VersionPtr> + 'a> {
        match self.index(index)? {
            TableIndex::Ordered(o) => Ok(o.iter_range(lo, hi, guard).map(VersionPtr::from_shared)),
            TableIndex::Hash(_) => Err(MmdbError::IndexNotOrdered(self.id, index)),
        }
    }

    /// Like [`Table::candidates`], but yield stable [`VersionPtr`]s directly
    /// under the caller's epoch guard. This is the hot-path variant: callers
    /// that stage candidates in a reusable buffer (see `TxnScratch` in
    /// `mmdb-core`) extend it straight from this iterator instead of
    /// collecting `&Version` references and converting them afterwards.
    pub fn candidate_ptrs<'a, 'g: 'a>(
        &'a self,
        index: IndexId,
        key: Key,
        guard: &'g Guard,
    ) -> Result<impl Iterator<Item = VersionPtr> + 'a> {
        let idx = self.index(index)?;
        let slot = idx.slot();
        Ok(idx
            .iter_key(key, guard)
            .filter(move |shared| unsafe { shared.deref() }.index_key(slot) == key)
            .map(VersionPtr::from_shared))
    }

    /// Iterate over every version in the table via `index` (full scan).
    pub fn scan_versions<'a, 'g: 'a>(
        &'a self,
        index: IndexId,
        guard: &'g Guard,
    ) -> Result<impl Iterator<Item = &'g Version> + 'a> {
        let idx = self.index(index)?;
        Ok(idx.iter_all(guard).map(|shared| unsafe { shared.deref() }))
    }

    /// Unlink `version` from every index. Must only be called by the garbage
    /// collector while holding [`Table::gc_guard`]. Returns true if the
    /// version was found in (and removed from) the primary index.
    pub fn unlink_version<'g>(&self, version: Shared<'g, Version>, guard: &'g Guard) -> bool {
        let mut removed_primary = false;
        for (slot, index) in self.indexes.iter().enumerate() {
            let removed = index.unlink(version, guard);
            if slot == 0 {
                removed_primary = removed;
            }
        }
        removed_primary
    }

    /// Acquire the per-table garbage-collection lock (serializes unlinks).
    pub fn gc_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.gc_lock.lock()
    }

    /// Number of versions currently linked in the primary index (diagnostic;
    /// walks every chain).
    pub fn version_count(&self) -> usize {
        let guard = crossbeam::epoch::pin();
        self.indexes[0].iter_all(&guard).count()
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        // Exclusive access: free every version still linked. Versions that
        // were unlinked earlier are owned by the epoch collector already.
        let guard = crossbeam::epoch::pin();
        let drained = self.indexes[0].drain_exclusive(&guard);
        for shared in drained {
            unsafe {
                drop(shared.into_owned());
            }
        }
        // Pooled versions are unlinked spares owned by the table.
        for spare in self.pool.get_mut().drain(..) {
            unsafe {
                drop(Box::from_raw(spare.0));
            }
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.spec.name)
            .field("indexes", &self.indexes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::epoch;
    use mmdb_common::ids::{Timestamp, TxnId};
    use mmdb_common::row::{rowbuf, IndexSpec, KeySpec};

    fn two_index_spec() -> TableSpec {
        TableSpec::keyed_u64("accounts", 64).with_index(IndexSpec {
            name: "by_fill".into(),
            key: KeySpec::BytesAt { offset: 8, len: 1 },
            buckets: 16,
            unique: false,
            ordered: false,
        })
    }

    #[test]
    fn link_and_lookup_through_both_indexes() {
        let table = Table::new(TableId(0), two_index_spec()).unwrap();
        let guard = epoch::pin();
        for k in 0..20u64 {
            let row = rowbuf::keyed_row(k, 16, (k % 4) as u8);
            let v = table.make_committed_version(Timestamp(1), row).unwrap();
            table.link_version(v, &guard);
        }
        // Primary lookups.
        for k in 0..20u64 {
            let hits: Vec<_> = table.candidates(IndexId(0), k, &guard).unwrap().collect();
            assert_eq!(hits.len(), 1);
            assert_eq!(rowbuf::key_of(hits[0].data()), k);
        }
        // Secondary: fill byte 2 → keys 2, 6, 10, 14, 18.
        let fill_key = mmdb_common::hash::hash_bytes(&[2u8]);
        let hits: Vec<_> = table
            .candidates(IndexId(1), fill_key, &guard)
            .unwrap()
            .collect();
        assert_eq!(hits.len(), 5);
        // Full scan sees everything.
        assert_eq!(table.scan_versions(IndexId(0), &guard).unwrap().count(), 20);
        assert_eq!(table.version_count(), 20);
    }

    #[test]
    fn candidate_ptrs_matches_candidates() {
        let table = Table::new(TableId(0), two_index_spec()).unwrap();
        let guard = epoch::pin();
        for k in 0..10u64 {
            let row = rowbuf::keyed_row(k, 16, (k % 2) as u8);
            let v = table.make_committed_version(Timestamp(1), row).unwrap();
            table.link_version(v, &guard);
        }
        let by_ref: Vec<usize> = table
            .candidates(IndexId(1), mmdb_common::hash::hash_bytes(&[1u8]), &guard)
            .unwrap()
            .map(|v| v as *const Version as usize)
            .collect();
        let by_ptr: Vec<usize> = table
            .candidate_ptrs(IndexId(1), mmdb_common::hash::hash_bytes(&[1u8]), &guard)
            .unwrap()
            .map(|p| p.addr())
            .collect();
        assert_eq!(by_ref, by_ptr);
        assert_eq!(by_ptr.len(), 5);
    }

    #[test]
    fn keys_of_matches_spec_order() {
        let table = Table::new(TableId(3), two_index_spec()).unwrap();
        let row = rowbuf::keyed_row(9, 16, 7);
        let keys = table.keys_of(&row).unwrap();
        assert_eq!(keys[0], 9);
        assert_eq!(keys[1], mmdb_common::hash::hash_bytes(&[7u8]));
        assert_eq!(table.key_of(IndexId(0), &row).unwrap(), 9);
        assert!(table.key_of(IndexId(5), &row).is_err());
        assert!(table.is_unique(IndexId(0)).unwrap());
        assert!(!table.is_unique(IndexId(1)).unwrap());
    }

    #[test]
    fn unlink_removes_from_every_index() {
        let table = Table::new(TableId(0), two_index_spec()).unwrap();
        let guard = epoch::pin();
        let ptr = table.link_version(
            table
                .make_committed_version(Timestamp(1), rowbuf::keyed_row(5, 16, 1))
                .unwrap(),
            &guard,
        );
        table.link_version(
            table
                .make_committed_version(Timestamp(1), rowbuf::keyed_row(6, 16, 1))
                .unwrap(),
            &guard,
        );
        {
            let _g = table.gc_guard();
            assert!(table.unlink_version(ptr.as_shared(&guard), &guard));
        }
        assert_eq!(table.candidates(IndexId(0), 5, &guard).unwrap().count(), 0);
        let fill_key = mmdb_common::hash::hash_bytes(&[1u8]);
        assert_eq!(
            table
                .candidates(IndexId(1), fill_key, &guard)
                .unwrap()
                .count(),
            1
        );
        // The unlinked allocation still has to be freed exactly once.
        unsafe { guard.defer_destroy(ptr.as_shared(&guard)) };
    }

    fn ordered_spec() -> TableSpec {
        TableSpec::keyed_u64("ordered_accounts", 64)
            .with_index(IndexSpec::ordered_u64("pk_ordered", 0))
    }

    #[test]
    fn ordered_index_serves_ranges_and_equality() {
        let table = Table::new(TableId(0), ordered_spec()).unwrap();
        let guard = epoch::pin();
        for k in [40u64, 10, 30, 50, 20] {
            let v = table
                .make_committed_version(Timestamp(1), rowbuf::keyed_row(k, 16, 0))
                .unwrap();
            table.link_version(v, &guard);
        }
        assert!(!table.is_ordered(IndexId(0)).unwrap());
        assert!(table.is_ordered(IndexId(1)).unwrap());

        // Range probes come back in ascending key order, inclusive bounds.
        let keys: Vec<u64> = table
            .range_candidate_ptrs(IndexId(1), 20, 40, &guard)
            .unwrap()
            .map(|p| rowbuf::key_of(p.get().data()))
            .collect();
        assert_eq!(keys, vec![20, 30, 40]);

        // Equality probes work through the same dispatch.
        assert_eq!(table.candidates(IndexId(1), 30, &guard).unwrap().count(), 1);
        // Full scans via the ordered index see everything, sorted.
        let all: Vec<u64> = table
            .scan_versions(IndexId(1), &guard)
            .unwrap()
            .map(|v| rowbuf::key_of(v.data()))
            .collect();
        assert_eq!(all, vec![10, 20, 30, 40, 50]);

        // Hash indexes refuse range predicates; ordered indexes have no
        // buckets or bucket locks, but do have range locks.
        assert!(matches!(
            table.range_candidate_ptrs(IndexId(0), 0, 9, &guard),
            Err(MmdbError::IndexNotOrdered(_, _))
        ));
        assert!(table.bucket_of(IndexId(1), 7).is_err());
        assert!(table.bucket_locks(IndexId(1)).is_err());
        assert!(matches!(
            table.range_locks(IndexId(0)),
            Err(MmdbError::IndexNotOrdered(_, _))
        ));
        assert!(table.range_locks(IndexId(1)).is_ok());
    }

    #[test]
    fn ordered_index_unlink_through_gc_path() {
        let table = Table::new(TableId(0), ordered_spec()).unwrap();
        let guard = epoch::pin();
        let mut ptrs = Vec::new();
        for k in 0..6u64 {
            let v = table
                .make_committed_version(Timestamp(1), rowbuf::keyed_row(k, 16, 0))
                .unwrap();
            ptrs.push(table.link_version(v, &guard));
        }
        {
            let _g = table.gc_guard();
            assert!(table.unlink_version(ptrs[3].as_shared(&guard), &guard));
        }
        let keys: Vec<u64> = table
            .range_candidate_ptrs(IndexId(1), 0, 10, &guard)
            .unwrap()
            .map(|p| rowbuf::key_of(p.get().data()))
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 4, 5]);
        assert_eq!(table.candidates(IndexId(0), 3, &guard).unwrap().count(), 0);
        unsafe { guard.defer_destroy(ptrs[3].as_shared(&guard)) };
    }

    #[test]
    fn version_ptr_roundtrip() {
        let table = Table::new(TableId(0), TableSpec::keyed_u64("t", 8)).unwrap();
        let guard = epoch::pin();
        let ptr = table.link_version(
            table
                .make_version(TxnId(1), rowbuf::keyed_row(1, 16, 0))
                .unwrap(),
            &guard,
        );
        assert_eq!(rowbuf::key_of(ptr.get().data()), 1);
        assert_eq!(ptr.as_shared(&guard).as_raw() as usize, ptr.addr());
    }

    #[test]
    fn rejects_table_without_indexes() {
        let spec = TableSpec {
            name: "empty".into(),
            indexes: vec![],
        };
        assert!(Table::new(TableId(0), spec).is_err());
    }

    #[test]
    fn row_not_matching_spec_is_rejected() {
        let table = Table::new(TableId(0), TableSpec::keyed_u64("t", 8)).unwrap();
        let short = Row::from(vec![1u8, 2, 3]);
        assert!(matches!(
            table.keys_of(&short),
            Err(MmdbError::RowTooShort { .. })
        ));
        assert!(table.make_version(TxnId(1), short).is_err());
    }
}
